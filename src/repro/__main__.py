"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``demo``
    Run the quickstart pipeline end to end on a small synthetic city
    and print the results (deploy -> ingest -> query vs exact).
    ``--trace out.json`` exports the run's span tree as Chrome
    trace-viewer JSON (with ``--shards N`` the trace carries one
    swimlane per shard-worker pid, grafted from the workers);
    ``--metrics out.prom`` dumps the metrics registry in Prometheus
    text format; ``--flight out.json`` dumps the always-on query
    flight recorder.
``monitor``
    Run a query workload while sampling fleet telemetry (time series,
    SLO burn, sensor health, EXPLAIN).  ``--shards N`` monitors the
    scatter-gather engine with per-stage latency breakdown;
    ``--flight out.json`` dumps the flight recorder's recent and
    slow-query records (promotion threshold ``--slow-ms``).
``bench-report``
    Aggregate the committed ``benchmarks/BENCH_*.json`` files into a
    ``BENCH_trend.json`` history plus a markdown/HTML trend report
    with a per-cell regression verdict (``--check`` is the CI gate;
    ``--write`` appends a snapshot).
``info``
    Print the library version and the available selectors, stores and
    city generators.

``demo`` and ``monitor`` accept ``--profile DIR``: a continuous
sampling profiler attributes stacks to the open tracer spans and
writes a collapsed-stack file plus speedscope JSON (with ``--shards``
one flamegraph covers the parent and every shard worker).
``city``
    Generate a synthetic road network and save it in the JSON map
    interchange format (loadable with ``repro.mobility.load_road_network``).

All output is routed through :mod:`repro.obs.logging`; ``--verbose``
adds ``key=value`` debug records, ``--quiet`` suppresses everything
below WARNING.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

import numpy as np

from repro.obs import logging as obs_logging

log = obs_logging.get_logger("cli")


def _cmd_info(args: argparse.Namespace) -> int:
    import repro
    from repro.core.config import FrameworkConfig

    log.info(f"repro {repro.__version__} — in-network spatiotemporal "
             "range queries (EDBT 2024 reproduction)")
    log.info(f"  selectors : {', '.join(FrameworkConfig._SELECTORS)}")
    log.info(f"  stores    : {', '.join(FrameworkConfig._STORES)}")
    log.info("  cities    : grid, radial, organic")
    log.info("  docs      : README.md, DESIGN.md, EXPERIMENTS.md")
    return 0


def _cmd_demo(args: argparse.Namespace) -> int:
    from repro import FrameworkConfig, InNetworkFramework
    from repro.geometry import BBox
    from repro.mobility import organic_city
    from repro.obs import Instrumentation, MetricsRegistry, kv, set_registry
    from repro.trajectories import WorkloadConfig, generate_workload

    instrumented = bool(args.trace or args.metrics or args.profile)
    if instrumented:
        # A fresh registry so the dump reflects this run only.
        set_registry(MetricsRegistry())
        obs = Instrumentation.on(provenance=True)
    else:
        obs = None
    profile_hz = args.profile_hz if args.profile else 0.0

    rng = np.random.default_rng(args.seed)
    road = organic_city(blocks=args.blocks, rng=rng)
    framework = InNetworkFramework.from_road_graph(road, instrumentation=obs)
    domain = framework.domain
    log.info(f"city: {domain.junction_count} junctions, "
             f"{domain.block_count} blocks")

    budget = max(int(domain.block_count * args.fraction), 2)
    network = framework.deploy(
        FrameworkConfig(selector=args.selector, budget=budget,
                        store=args.store, planner=args.planner,
                        shards=args.shards, seed=args.seed,
                        slow_query_s=args.slow_ms / 1e3,
                        streaming=args.stream,
                        compact_every=args.compact_every,
                        compress=args.compress,
                        tick_bits=args.tick_bits,
                        sketch_bins=args.sketch_bins,
                        profile_hz=profile_hz,
                        profile_memory=args.profile_memory)
    )
    log.info(f"deployed: {len(network.sensors)} sensors "
             f"({network.size_fraction:.1%}), {len(network.walls)} walls, "
             f"{network.region_count} regions")
    log.debug("deploy %s", kv(selector=args.selector, budget=budget,
                              regions=network.region_count))

    workload = generate_workload(
        domain,
        WorkloadConfig(n_trips=args.trips, horizon_days=1.0,
                       mean_dwell=3600.0, seed=args.seed),
    )
    if args.stream:
        from repro.errors import QueryError
        from repro.geometry import BBox as _BBox
        from repro.trajectories import all_events

        events = sorted(all_events(domain, workload.trips),
                        key=lambda event: event.t)
        monitor = framework.monitor()
        watch = _BBox.from_center(domain.bounds.center,
                                  domain.bounds.width * 0.45,
                                  domain.bounds.height * 0.45)
        try:
            monitor.add_region("center", watch)
        except QueryError:
            monitor = None
        batch = max(args.compact_every // 2, 1)
        n_events = 0
        windows = 0
        for start in range(0, len(events), batch):
            n_events += framework.ingest_events(events[start:start + batch])
            windows += 1
        store = framework.streaming_store
        log.info(f"streamed: {n_events} crossing events over {windows} "
                 f"arrival windows ({store.observed_total} observed)")
        log.info(f"stream layout: tail {store.tail_events} events, "
                 f"{store.block_count} blocks x {store.block_events} "
                 f"events, {store.compactions} compactions, "
                 f"{store.block_merges} merges, "
                 f"generation {store.generation}")
        if monitor is not None:
            live = monitor.count("center")
            exact_live = store.resync(monitor, events[-1].t)["center"]
            log.info(f"standing query 'center': live count {live:.0f} "
                     f"(exact resync {exact_live:.0f})")
    else:
        n_events = framework.ingest_trips(workload.trips)
        log.info(f"ingested: {n_events} crossing events")

    injector = None
    if args.faults > 0:
        from repro.network import FaultConfig

        injector = framework.fault_injector(
            FaultConfig(seed=args.seed,
                        sensor_failure_rate=args.faults,
                        drop_rate=args.faults / 2)
        )
        log.info(f"faults: {args.faults:.0%} sensor failure, "
                 f"{args.faults / 2:.0%} message drop "
                 f"({len(injector.crashed)} sensors down)")

    if args.shards > 1 and injector is None:
        sharded = framework.engine()
        layout = sharded.describe()
        log.info(f"sharded: {layout['shards']} districts over "
                 f"{layout['workers']} workers, events/shard "
                 f"{layout.get('events_per_shard')}")

    box = BBox.from_center(domain.bounds.center,
                           domain.bounds.width * 0.45,
                           domain.bounds.height * 0.45)
    t2 = 18 * 3600.0
    approx = framework.query(box, 0.0, t2, faults=injector,
                             max_error=args.max_error)
    exact = framework.query_exact(box, 0.0, t2)
    if approx.missed:
        log.info("query: lower bound missed (increase --fraction)")
    else:
        error = (abs(approx.value - exact.value) / exact.value
                 if exact.value else 0.0)
        log.info(f"query @18:00 — estimate {approx.value:.0f}, "
                 f"exact {exact.value:.0f} (err {error:.1%}); "
                 f"{approx.nodes_accessed} sensors contacted vs "
                 f"{exact.nodes_accessed} flooded")
        if approx.degradation is not None:
            d = approx.degradation
            if d.strategy == "sketch":
                log.info(f"sketch: served from the count summary, "
                         f"0 sensors contacted (error bound "
                         f"±{d.error_bound:.0f} <= --max-error "
                         f"{args.max_error:g})")
            else:
                log.info(f"degraded: {len(d.skipped_sensors)} sensors "
                         f"skipped, "
                         f"{d.lost_walls}/{d.boundary_walls} walls lost "
                         f"(error bound ±{d.error_bound:.0f}, "
                         f"{d.detours} detours, "
                         f"{d.server_stitches} stitches)")
        if approx.provenance is not None:
            log.debug("query provenance %s", kv(
                junctions=approx.provenance.junction_count,
                regions=len(approx.provenance.region_ids),
                boundary=approx.provenance.boundary_length,
            ))
    log.info(f"storage: {framework.storage_bytes} bytes ({args.store}"
             f"{', compressed' if args.compress else ''})")
    if args.storage:
        report = framework.storage_report()
        for store_report in report["stores"]:
            log.info(f"  {store_report['store']}: "
                     f"{store_report['total_bytes']} bytes over "
                     f"{store_report['events']} events")
            for name, nbytes in sorted(
                store_report["components"].items()
            ):
                log.info(f"    {name:<16} {nbytes:>10} bytes")
        log.info(f"  total: {report['total_bytes']} bytes")

    profiler = framework.profiler
    if profiler is not None:
        profiler.stop()  # flush before export; close() is a no-op then
        paths = profiler.write(args.profile)
        table = profiler.table
        log.info(f"profile: {table.total} samples over {len(table)} "
                 f"stacks @{profiler.hz:g}Hz -> "
                 f"{paths['speedscope']}")
        for row in table.top_rows(5):
            log.debug("profile top %s", kv(
                span=row["span_path"], frame=row["frame"],
                self_ms=round(row["self_s"] * 1e3, 2),
                share=f"{row['share']:.0%}",
            ))
    if obs is not None:
        if args.trace:
            import json as _json

            from repro.obs import overlay_counters

            trace = obs.tracer.to_chrome_trace()
            if profiler is not None:
                # Counter tracks share the tracer's perf_counter origin
                # so they overlay the span swimlanes on one time axis.
                overlay_counters(trace, profiler, origin=obs.tracer.origin)
            with open(args.trace, "w") as handle:
                _json.dump(trace, handle, indent=1)
            log.info(f"trace: wrote {args.trace}")
            log.debug("span tree:\n%s", obs.tracer.format_tree())
        if args.metrics:
            with open(args.metrics, "w") as handle:
                handle.write(obs.metrics.to_prometheus())
            log.info(f"metrics: wrote {args.metrics}")
    if args.flight:
        flight = framework.flight_log()
        flight.dump(args.flight)
        log.info(f"flight: wrote {args.flight} ({flight.total} records, "
                 f"{flight.slow_total} slow)")
    framework.close()
    return 0


def _cmd_monitor(args: argparse.Namespace) -> int:
    import json

    from repro import FrameworkConfig, InNetworkFramework
    from repro.evaluation.workloads import (
        QueryWorkloadConfig,
        generate_queries,
    )
    from repro.mobility import organic_city
    from repro.obs import (
        AlertLog,
        Instrumentation,
        MetricsRegistry,
        NULL_TRACER,
        TimeSeriesRecorder,
        default_slos,
        evaluate_slos,
        fleet_health,
        set_registry,
    )
    from repro.obs.dashboard import render_dashboard
    from repro.trajectories import WorkloadConfig, generate_workload

    # A fresh registry so the telemetry reflects this run only; the
    # null tracer keeps the hot path span-free (the recorder samples
    # counters, it does not need spans) — unless the profiler is on,
    # which needs live spans to attribute samples to.
    registry = MetricsRegistry()
    set_registry(registry)
    from repro.obs import Tracer as _Tracer

    tracer = _Tracer() if args.profile else NULL_TRACER
    obs = Instrumentation(
        tracer=tracer, metrics=registry, provenance=True
    )

    rng = np.random.default_rng(args.seed)
    road = organic_city(blocks=args.blocks, rng=rng)
    framework = InNetworkFramework.from_road_graph(road, instrumentation=obs)
    domain = framework.domain
    budget = max(int(domain.block_count * args.fraction), 2)
    network = framework.deploy(
        FrameworkConfig(selector=args.selector, budget=budget,
                        store=args.store, planner=args.planner,
                        shards=args.shards, seed=args.seed,
                        slow_query_s=args.slow_ms / 1e3,
                        compress=args.compress,
                        tick_bits=args.tick_bits,
                        profile_hz=args.profile_hz if args.profile else 0.0)
    )
    workload = generate_workload(
        domain,
        WorkloadConfig(n_trips=args.trips, horizon_days=1.0,
                       mean_dwell=3600.0, seed=args.seed),
    )
    n_events = framework.ingest_trips(workload.trips)
    log.info(f"fleet: {len(network.sensors)} sensors "
             f"({network.size_fraction:.1%}), {n_events} events ingested")

    injector = None
    if args.faults > 0 and args.shards == 1:
        from repro.network import FaultConfig

        injector = framework.fault_injector(
            FaultConfig(seed=args.seed,
                        sensor_failure_rate=args.faults,
                        drop_rate=args.faults / 2)
        )
        log.info(f"faults: {args.faults:.0%} sensor crash, "
                 f"{args.faults / 2:.0%} message drop "
                 f"({len(injector.crashed)} sensors down)")
    elif args.shards > 1:
        log.info(f"sharded: monitoring the {args.shards}-district "
                 "scatter-gather engine (fault injection disabled)")
    engine = framework.engine(
        faults=injector, dispatch_strategy=args.strategy
    )

    queries = generate_queries(
        domain,
        workload.horizon,
        QueryWorkloadConfig(n_queries=args.queries,
                            area_fraction=args.area, seed=args.seed),
    )
    recorder = TimeSeriesRecorder(registry)
    slos = default_slos()
    alert_log = AlertLog()
    live = sys.stderr.isatty()

    recorder.sample()
    if engine.simulator is not None:
        engine.simulator.probe_fleet()
    sample_round = 0
    for i, query in enumerate(queries, 1):
        engine.execute(query)
        if i % max(args.sample_every, 1) and i != len(queries):
            continue
        sample_round += 1
        if (
            engine.simulator is not None
            and sample_round % max(args.probe_every, 1) == 0
        ):
            engine.simulator.probe_fleet()
        sample = recorder.sample()
        statuses = evaluate_slos(slos, recorder)
        for alert in alert_log.observe(sample.t, statuses):
            if live:
                print(file=sys.stderr)
            log.warning(alert.format())
        availability = statuses[0]
        p95 = sample.quantiles.get("repro_query_latency_seconds:p95")
        p95_txt = f"{p95 * 1e3:.2f}ms" if p95 and p95 == p95 else "-"
        line = (
            f"[{i}/{len(queries)}] availability "
            f"{availability.compliance:.1%} (burn "
            f"{availability.burn_rate:.1f}x)  p95 {p95_txt}  "
            f"alerts {len(alert_log)}"
        )
        if live:
            print(f"\r\x1b[2K{line}", end="", file=sys.stderr, flush=True)
        else:
            log.info(line)
    if live:
        print(file=sys.stderr)

    statuses = evaluate_slos(slos, recorder)
    health = fleet_health(registry, known_sensors=network.sensors)
    explain = engine.explain(queries[0])
    flight = framework.flight_log()
    profiler = framework.profiler
    if profiler is not None:
        profiler.stop()  # flush before export; close() is a no-op then
        paths = profiler.write(args.profile)
        table = profiler.table
        log.info(f"profile: {table.total} samples over {len(table)} "
                 f"stacks @{profiler.hz:g}Hz -> {paths['speedscope']}")

    log.info(health.format_report())
    for status in statuses:
        state = "OK" if status.ok else "VIOLATED"
        log.info(f"slo {status.name}: {status.compliance:.2%} vs "
                 f"{status.objective:.0%} ({state}, burn "
                 f"{status.burn_rate:.1f}x)")
    log.info(alert_log.format())
    log.info(f"sample plan:\n{explain.format()}")
    if flight.slow_total:
        slow_lines = "\n".join(f"  {line}" for line in flight.format_slow())
        log.info(f"slow queries (> {flight.slow_threshold_s * 1e3:g}ms):\n"
                 f"{slow_lines}")

    if args.html:
        meta = {
            "city blocks": domain.block_count,
            "sensors": len(network.sensors),
            "events": n_events,
            "queries": len(queries),
            "fault rate": f"{args.faults:.0%}",
            "dispatch": args.strategy,
            "planner": engine.planner_in_use,
            "samples": len(recorder),
        }
        page = render_dashboard(
            title="repro fleet monitor",
            meta=meta,
            recorder=recorder,
            statuses=statuses,
            alerts=alert_log.alerts,
            health=health,
            explain_text=explain.format(),
            flight=flight,
            storage=framework.storage_report(),
            profile=profiler.table if profiler is not None else None,
        )
        with open(args.html, "w") as handle:
            handle.write(page)
        log.info(f"dashboard: wrote {args.html}")
    if args.json:
        payload = {
            "timeseries": recorder.to_json(),
            "slos": [status.as_dict() for status in statuses],
            "alerts": [alert.__dict__ for alert in alert_log.alerts],
            "health": health.as_dict(),
            "explain": explain.as_dict(),
            "flight": flight.as_dict(),
        }
        if profiler is not None:
            payload["profile"] = profiler.table.as_dict()
        with open(args.json, "w") as handle:
            json.dump(payload, handle, indent=1)
        log.info(f"telemetry: wrote {args.json}")
    if args.flight:
        flight.dump(args.flight)
        log.info(f"flight: wrote {args.flight} ({flight.total} records, "
                 f"{flight.slow_total} slow)")

    if not args.smoke:
        return 0

    # --smoke: assert the acceptance invariants of the telemetry stack.
    failures = []
    if injector is not None:
        crashed = set(injector.crashed)
        failed = set(health.failed_sensors)
        if not crashed <= failed:
            failures.append(
                f"health missed crashed sensors: {sorted(crashed - failed)}"
            )
        availability = statuses[0]
        if availability.budget_used <= 0:
            failures.append(
                "availability SLO burned no budget under faults"
            )
    if flight.total == 0:
        failures.append("flight recorder saw no queries")
    if len(flight) > flight.capacity:
        failures.append(
            f"flight ring overflowed: {len(flight)} > {flight.capacity}"
        )
    reference_engine = framework.engine(sharded=False)
    reference = reference_engine.execute(queries[0])
    plan = reference_engine.explain(queries[0])
    mismatches = [
        name
        for name, got, want in (
            ("regions", plan.region_ids, reference.regions),
            ("boundary", plan.boundary_length,
             reference.provenance.boundary_length),
            ("sensors", plan.sensors_accessed, reference.nodes_accessed),
            ("edges", plan.edges_accessed, reference.edges_accessed),
            ("value", plan.value, reference.value),
        )
        if got != want
    ]
    if mismatches:
        failures.append(
            f"explain disagrees with execute on: {', '.join(mismatches)}"
        )
    for failure in failures:
        log.error(f"smoke: {failure}")
    if failures:
        return 1
    log.info("smoke: health, SLO burn and EXPLAIN invariants hold")
    return 0


def _cmd_bench_report(args: argparse.Namespace) -> int:
    import json

    from repro.evaluation.benchtrend import (
        build_trend,
        render_html,
        render_markdown,
    )

    trend_path = (
        args.trend
        if args.trend is not None
        else args.bench_dir / "BENCH_trend.json"
    )
    report = build_trend(
        args.bench_dir,
        trend_path,
        tolerance=args.tolerance,
        write=args.write,
    )
    if args.check and not report["cells"]:
        # A wrong --bench-dir must not read as "no regressions".
        log.error(f"bench-report: no BENCH_*.json cells found under "
                  f"{args.bench_dir} — nothing to gate")
        return 1
    print(render_markdown(report))
    if args.markdown is not None:
        args.markdown.parent.mkdir(parents=True, exist_ok=True)
        args.markdown.write_text(render_markdown(report) + "\n")
        log.info(f"bench-report: wrote {args.markdown}")
    if args.html is not None:
        args.html.parent.mkdir(parents=True, exist_ok=True)
        args.html.write_text(render_html(report))
        log.info(f"bench-report: wrote {args.html}")
    if args.json is not None:
        args.json.parent.mkdir(parents=True, exist_ok=True)
        with open(args.json, "w") as handle:
            json.dump(report, handle, indent=1, sort_keys=True)
        log.info(f"bench-report: wrote {args.json}")
    if args.write:
        log.info(f"bench-report: snapshot #{report['snapshot_count']} "
                 f"-> {trend_path}")
    if args.check and report["regressed"]:
        log.error(f"bench-report: {len(report['regressed'])} cell(s) "
                  f"regressed beyond {args.tolerance:.0%}: "
                  + ", ".join(report["regressed"]))
        return 1
    return 0


def _cmd_city(args: argparse.Namespace) -> int:
    from repro.mobility import (
        grid_city,
        organic_city,
        radial_city,
        save_road_network,
    )

    rng = np.random.default_rng(args.seed)
    if args.kind == "grid":
        side = max(int(round(np.sqrt(args.blocks))) + 1, 3)
        graph = grid_city(rows=side, cols=side, rng=rng)
    elif args.kind == "radial":
        spokes = max(int(np.sqrt(args.blocks * 2)), 4)
        graph = radial_city(rings=max(args.blocks // spokes, 2),
                            spokes=spokes, rng=rng)
    else:
        graph = organic_city(blocks=args.blocks, rng=rng)
    save_road_network(graph, args.output)
    log.info(f"wrote {args.kind} city ({graph.node_count} nodes, "
             f"{graph.edge_count} edges) to {args.output}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="In-network spatiotemporal range queries "
                    "(EDBT 2024 reproduction)",
    )
    verbosity = parser.add_mutually_exclusive_group()
    verbosity.add_argument(
        "--verbose", "-v", action="store_true",
        help="debug output with key=value detail records",
    )
    verbosity.add_argument(
        "--quiet", action="store_true",
        help="suppress everything below WARNING",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("info", help="library capabilities").set_defaults(
        handler=_cmd_info
    )

    demo = commands.add_parser("demo", help="end-to-end demo pipeline")
    demo.add_argument("--blocks", type=int, default=200)
    demo.add_argument("--trips", type=int, default=3000)
    demo.add_argument("--fraction", type=float, default=0.25,
                      help="sensor budget as a fraction of blocks")
    demo.add_argument("--selector", default="quadtree",
                      choices=["uniform", "systematic", "kdtree",
                               "quadtree", "stratified"])
    demo.add_argument("--store", default="exact",
                      choices=["exact", "linear", "polynomial",
                               "piecewise", "histogram"])
    demo.add_argument("--planner", default="auto",
                      choices=["auto", "compiled", "python"],
                      help="query resolution pipeline: compiled CSR "
                           "indexes or the reference python path "
                           "(auto compiles when the store supports it)")
    demo.add_argument("--shards", type=int, default=1,
                      help="district shards for scatter-gather querying "
                           "(>1 enables the sharded engine)")
    demo.add_argument("--seed", type=int, default=7)
    demo.add_argument("--faults", type=float, default=0.0, metavar="P",
                      help="inject faults: P is the sensor crash rate "
                           "(P/2 becomes the per-message drop rate); "
                           "the query then runs fault-tolerantly and "
                           "reports its degradation bound")
    demo.add_argument("--trace", metavar="PATH", default=None,
                      help="write Chrome trace-viewer JSON of the run")
    demo.add_argument("--metrics", metavar="PATH", default=None,
                      help="write the metrics registry in Prometheus "
                           "text format")
    demo.add_argument("--flight", metavar="PATH", default=None,
                      help="dump the always-on query flight recorder "
                           "as JSON")
    demo.add_argument("--slow-ms", type=float, default=100.0,
                      help="flight-recorder slow-query promotion "
                           "threshold in milliseconds")
    demo.add_argument("--profile", metavar="DIR", default=None,
                      help="continuous sampling profiler: write "
                           "profile.collapsed + profile.speedscope.json "
                           "(span-attributed flamegraph; with --shards "
                           "the worker samples nest under their "
                           "worker.run spans) into DIR")
    demo.add_argument("--profile-hz", type=float, default=97.0,
                      help="sampler rate for --profile (samples/s)")
    demo.add_argument("--profile-memory", action="store_true",
                      help="also keep tracemalloc per-span peak "
                           "watermarks (heavier; needs --profile)")
    demo.add_argument("--stream", action="store_true",
                      help="streaming ingestion: feed events in arrival "
                           "windows through the LSM-style store "
                           "(incremental index maintenance + a standing "
                           "count monitor) instead of one batch build")
    demo.add_argument("--compact-every", type=int, default=1024,
                      help="streaming tail size that triggers a "
                           "compaction (with --stream)")
    demo.add_argument("--compress", action="store_true",
                      help="succinct storage tier: delta-encoded, "
                           "bit-packed timestamp columns (~4x smaller, "
                           "byte-identical answers)")
    demo.add_argument("--tick-bits", type=int, default=10,
                      help="timestamp quantization for --compress: "
                           "2**tick_bits ticks per second (0-20)")
    demo.add_argument("--sketch-bins", type=int, default=0,
                      help="build an error-bounded per-edge count "
                           "sketch with this many time bins (0 "
                           "disables the sketch tier)")
    demo.add_argument("--max-error", type=float, default=None,
                      help="absolute count-error tolerance: serve the "
                           "demo query from the sketch when its bound "
                           "fits (needs --sketch-bins)")
    demo.add_argument("--storage", action="store_true",
                      help="print the per-component storage breakdown "
                           "of the deployed store(s)")
    demo.set_defaults(handler=_cmd_demo)

    monitor = commands.add_parser(
        "monitor",
        help="run a query workload while sampling fleet telemetry: "
             "time series, SLO burn, per-sensor health, query EXPLAIN",
    )
    monitor.add_argument("--blocks", type=int, default=200)
    monitor.add_argument("--trips", type=int, default=3000)
    monitor.add_argument("--fraction", type=float, default=0.25,
                         help="sensor budget as a fraction of blocks")
    monitor.add_argument("--selector", default="quadtree",
                         choices=["uniform", "systematic", "kdtree",
                                  "quadtree", "stratified"])
    monitor.add_argument("--store", default="exact",
                         choices=["exact", "linear", "polynomial",
                                  "piecewise", "histogram"])
    monitor.add_argument("--planner", default="auto",
                         choices=["auto", "compiled", "python"])
    monitor.add_argument("--shards", type=int, default=1,
                         help="district shards for scatter-gather "
                              "querying (>1 enables the sharded engine; "
                              "implies --faults 0)")
    monitor.add_argument("--seed", type=int, default=7)
    monitor.add_argument("--faults", type=float, default=0.1, metavar="P",
                         help="sensor crash rate (P/2 becomes the "
                              "per-message drop rate); 0 disables "
                              "fault injection")
    monitor.add_argument("--strategy", default="perimeter_walk",
                         choices=["perimeter_walk", "server_fanout"])
    monitor.add_argument("--queries", type=int, default=120,
                         help="queries in the monitored workload")
    monitor.add_argument("--area", type=float, default=0.15,
                         help="query area as a fraction of the domain")
    monitor.add_argument("--sample-every", type=int, default=10,
                         help="recorder tick every N queries")
    monitor.add_argument("--probe-every", type=int, default=5,
                         help="fleet health-probe sweep every N ticks")
    monitor.add_argument("--html", metavar="PATH", default=None,
                         help="write the self-contained HTML dashboard")
    monitor.add_argument("--json", metavar="PATH", default=None,
                         help="write the telemetry (series, SLOs, "
                              "health, EXPLAIN, flight log) as JSON")
    monitor.add_argument("--flight", metavar="PATH", default=None,
                         help="dump the query flight recorder as JSON")
    monitor.add_argument("--slow-ms", type=float, default=100.0,
                         help="flight-recorder slow-query promotion "
                              "threshold in milliseconds")
    monitor.add_argument("--profile", metavar="DIR", default=None,
                         help="continuous sampling profiler: write "
                              "profile.collapsed + profile.speedscope"
                              ".json into DIR; the dashboard gains a "
                              "top-frames panel")
    monitor.add_argument("--profile-hz", type=float, default=97.0,
                         help="sampler rate for --profile (samples/s)")
    monitor.add_argument("--compress", action="store_true",
                         help="succinct storage tier (compressed "
                              "timestamp columns); the dashboard gains "
                              "a storage panel")
    monitor.add_argument("--tick-bits", type=int, default=10,
                         help="timestamp quantization for --compress: "
                              "2**tick_bits ticks per second (0-20)")
    monitor.add_argument("--smoke", action="store_true",
                         help="assert the telemetry invariants (crashed "
                              "sensors identified, SLO burn under "
                              "faults, EXPLAIN consistency) and exit "
                              "non-zero on failure")
    monitor.set_defaults(handler=_cmd_monitor)

    from pathlib import Path

    from repro.evaluation.benchtrend import DEFAULT_TOLERANCE

    bench_report = commands.add_parser(
        "bench-report",
        help="aggregate the committed benchmarks/BENCH_*.json files "
             "into a BENCH_trend.json history + trend report with "
             "per-cell regression verdicts",
    )
    bench_report.add_argument("--bench-dir", type=Path,
                              default=Path("benchmarks"),
                              help="directory holding BENCH_*.json "
                                   "(default: ./benchmarks)")
    bench_report.add_argument("--trend", type=Path, default=None,
                              help="trend history file (default: "
                                   "<bench-dir>/BENCH_trend.json)")
    bench_report.add_argument("--tolerance", type=float,
                              default=DEFAULT_TOLERANCE,
                              help="relative worsening tolerated before "
                                   "a cell counts as regressed "
                                   "(default %(default)s)")
    bench_report.add_argument("--write", action="store_true",
                              help="append the current cells as a new "
                                   "trend snapshot")
    bench_report.add_argument("--check", action="store_true",
                              help="exit 1 if any tracked cell regressed "
                                   "vs the last snapshot")
    bench_report.add_argument("--markdown", type=Path, default=None,
                              help="write the markdown report here")
    bench_report.add_argument("--html", type=Path, default=None,
                              help="write the HTML report here")
    bench_report.add_argument("--json", type=Path, default=None,
                              help="write the full verdicts object here")
    bench_report.set_defaults(handler=_cmd_bench_report)

    city = commands.add_parser("city", help="generate a synthetic city map")
    city.add_argument("output", help="output JSON path")
    city.add_argument("--kind", default="organic",
                      choices=["grid", "radial", "organic"])
    city.add_argument("--blocks", type=int, default=150)
    city.add_argument("--seed", type=int, default=0)
    city.set_defaults(handler=_cmd_city)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    verbosity = 1 if args.verbose else (-1 if args.quiet else 0)
    obs_logging.configure(verbosity)
    return args.handler(args)


if __name__ == "__main__":
    sys.exit(main())
