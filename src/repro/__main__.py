"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``demo``
    Run the quickstart pipeline end to end on a small synthetic city
    and print the results (deploy -> ingest -> query vs exact).
    ``--trace out.json`` exports the run's span tree as Chrome
    trace-viewer JSON; ``--metrics out.prom`` dumps the metrics
    registry in Prometheus text format.
``info``
    Print the library version and the available selectors, stores and
    city generators.
``city``
    Generate a synthetic road network and save it in the JSON map
    interchange format (loadable with ``repro.mobility.load_road_network``).

All output is routed through :mod:`repro.obs.logging`; ``--verbose``
adds ``key=value`` debug records, ``--quiet`` suppresses everything
below WARNING.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

import numpy as np

from repro.obs import logging as obs_logging

log = obs_logging.get_logger("cli")


def _cmd_info(args: argparse.Namespace) -> int:
    import repro
    from repro.core.config import FrameworkConfig

    log.info(f"repro {repro.__version__} — in-network spatiotemporal "
             "range queries (EDBT 2024 reproduction)")
    log.info(f"  selectors : {', '.join(FrameworkConfig._SELECTORS)}")
    log.info(f"  stores    : {', '.join(FrameworkConfig._STORES)}")
    log.info("  cities    : grid, radial, organic")
    log.info("  docs      : README.md, DESIGN.md, EXPERIMENTS.md")
    return 0


def _cmd_demo(args: argparse.Namespace) -> int:
    from repro import FrameworkConfig, InNetworkFramework
    from repro.geometry import BBox
    from repro.mobility import organic_city
    from repro.obs import Instrumentation, MetricsRegistry, kv, set_registry
    from repro.trajectories import WorkloadConfig, generate_workload

    instrumented = bool(args.trace or args.metrics)
    if instrumented:
        # A fresh registry so the dump reflects this run only.
        set_registry(MetricsRegistry())
        obs = Instrumentation.on(provenance=True)
    else:
        obs = None

    rng = np.random.default_rng(args.seed)
    road = organic_city(blocks=args.blocks, rng=rng)
    framework = InNetworkFramework.from_road_graph(road, instrumentation=obs)
    domain = framework.domain
    log.info(f"city: {domain.junction_count} junctions, "
             f"{domain.block_count} blocks")

    budget = max(int(domain.block_count * args.fraction), 2)
    network = framework.deploy(
        FrameworkConfig(selector=args.selector, budget=budget,
                        store=args.store, planner=args.planner,
                        seed=args.seed)
    )
    log.info(f"deployed: {len(network.sensors)} sensors "
             f"({network.size_fraction:.1%}), {len(network.walls)} walls, "
             f"{network.region_count} regions")
    log.debug("deploy %s", kv(selector=args.selector, budget=budget,
                              regions=network.region_count))

    workload = generate_workload(
        domain,
        WorkloadConfig(n_trips=args.trips, horizon_days=1.0,
                       mean_dwell=3600.0, seed=args.seed),
    )
    n_events = framework.ingest_trips(workload.trips)
    log.info(f"ingested: {n_events} crossing events")

    injector = None
    if args.faults > 0:
        from repro.network import FaultConfig

        injector = framework.fault_injector(
            FaultConfig(seed=args.seed,
                        sensor_failure_rate=args.faults,
                        drop_rate=args.faults / 2)
        )
        log.info(f"faults: {args.faults:.0%} sensor failure, "
                 f"{args.faults / 2:.0%} message drop "
                 f"({len(injector.crashed)} sensors down)")

    box = BBox.from_center(domain.bounds.center,
                           domain.bounds.width * 0.45,
                           domain.bounds.height * 0.45)
    t2 = 18 * 3600.0
    approx = framework.query(box, 0.0, t2, faults=injector)
    exact = framework.query_exact(box, 0.0, t2)
    if approx.missed:
        log.info("query: lower bound missed (increase --fraction)")
    else:
        error = (abs(approx.value - exact.value) / exact.value
                 if exact.value else 0.0)
        log.info(f"query @18:00 — estimate {approx.value:.0f}, "
                 f"exact {exact.value:.0f} (err {error:.1%}); "
                 f"{approx.nodes_accessed} sensors contacted vs "
                 f"{exact.nodes_accessed} flooded")
        if approx.degradation is not None:
            d = approx.degradation
            log.info(f"degraded: {len(d.skipped_sensors)} sensors skipped, "
                     f"{d.lost_walls}/{d.boundary_walls} walls lost "
                     f"(error bound ±{d.error_bound:.0f}, "
                     f"{d.detours} detours, {d.server_stitches} stitches)")
        if approx.provenance is not None:
            log.debug("query provenance %s", kv(
                junctions=approx.provenance.junction_count,
                regions=len(approx.provenance.region_ids),
                boundary=approx.provenance.boundary_length,
            ))
    log.info(f"storage: {framework.storage_bytes} bytes ({args.store})")

    if obs is not None:
        if args.trace:
            obs.tracer.export_chrome(args.trace)
            log.info(f"trace: wrote {args.trace}")
            log.debug("span tree:\n%s", obs.tracer.format_tree())
        if args.metrics:
            with open(args.metrics, "w") as handle:
                handle.write(obs.metrics.to_prometheus())
            log.info(f"metrics: wrote {args.metrics}")
    return 0


def _cmd_city(args: argparse.Namespace) -> int:
    from repro.mobility import (
        grid_city,
        organic_city,
        radial_city,
        save_road_network,
    )

    rng = np.random.default_rng(args.seed)
    if args.kind == "grid":
        side = max(int(round(np.sqrt(args.blocks))) + 1, 3)
        graph = grid_city(rows=side, cols=side, rng=rng)
    elif args.kind == "radial":
        spokes = max(int(np.sqrt(args.blocks * 2)), 4)
        graph = radial_city(rings=max(args.blocks // spokes, 2),
                            spokes=spokes, rng=rng)
    else:
        graph = organic_city(blocks=args.blocks, rng=rng)
    save_road_network(graph, args.output)
    log.info(f"wrote {args.kind} city ({graph.node_count} nodes, "
             f"{graph.edge_count} edges) to {args.output}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="In-network spatiotemporal range queries "
                    "(EDBT 2024 reproduction)",
    )
    verbosity = parser.add_mutually_exclusive_group()
    verbosity.add_argument(
        "--verbose", "-v", action="store_true",
        help="debug output with key=value detail records",
    )
    verbosity.add_argument(
        "--quiet", action="store_true",
        help="suppress everything below WARNING",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("info", help="library capabilities").set_defaults(
        handler=_cmd_info
    )

    demo = commands.add_parser("demo", help="end-to-end demo pipeline")
    demo.add_argument("--blocks", type=int, default=200)
    demo.add_argument("--trips", type=int, default=3000)
    demo.add_argument("--fraction", type=float, default=0.25,
                      help="sensor budget as a fraction of blocks")
    demo.add_argument("--selector", default="quadtree",
                      choices=["uniform", "systematic", "kdtree",
                               "quadtree", "stratified"])
    demo.add_argument("--store", default="exact",
                      choices=["exact", "linear", "polynomial",
                               "piecewise", "histogram"])
    demo.add_argument("--planner", default="auto",
                      choices=["auto", "compiled", "python"],
                      help="query resolution pipeline: compiled CSR "
                           "indexes or the reference python path "
                           "(auto compiles when the store supports it)")
    demo.add_argument("--seed", type=int, default=7)
    demo.add_argument("--faults", type=float, default=0.0, metavar="P",
                      help="inject faults: P is the sensor crash rate "
                           "(P/2 becomes the per-message drop rate); "
                           "the query then runs fault-tolerantly and "
                           "reports its degradation bound")
    demo.add_argument("--trace", metavar="PATH", default=None,
                      help="write Chrome trace-viewer JSON of the run")
    demo.add_argument("--metrics", metavar="PATH", default=None,
                      help="write the metrics registry in Prometheus "
                           "text format")
    demo.set_defaults(handler=_cmd_demo)

    city = commands.add_parser("city", help="generate a synthetic city map")
    city.add_argument("output", help="output JSON path")
    city.add_argument("--kind", default="organic",
                      choices=["grid", "radial", "organic"])
    city.add_argument("--blocks", type=int, default=150)
    city.add_argument("--seed", type=int, default=0)
    city.set_defaults(handler=_cmd_city)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    verbosity = 1 if args.verbose else (-1 if args.quiet else 0)
    obs_logging.configure(verbosity)
    return args.handler(args)


if __name__ == "__main__":
    sys.exit(main())
