"""Shared-memory numpy array packing (the sharded engine's transport).

The sharded query engine gives every worker process its own
:class:`~repro.forms.CompiledTrackingForm` slice.  Pickling the CSR
arrays through the pool would copy megabytes per worker; instead the
parent packs each shard's arrays *once* into a
:mod:`multiprocessing.shared_memory` segment and ships only a tiny
JSON-safe **descriptor** — segment name plus per-array ``(dtype,
shape, offset)`` — which workers resolve into zero-copy numpy views.

Layout: one segment per logical bundle, arrays laid out back to back
at 64-byte-aligned offsets.  The parent owns the segment lifecycle
(:meth:`SharedArrayBundle.close` unlinks); workers attach read-only
views and close their local mapping when done.  Attached views keep
the mapping alive through the ``base`` chain, but holders should keep
the returned handle anyway — see :func:`attach_arrays`.

Nothing here knows about forms or columns; those classes layer their
own ``shm_pack`` / ``shm_attach`` on top of this module.
"""

from __future__ import annotations

import os
import secrets
from multiprocessing import shared_memory
from typing import Any, Dict, Mapping, Tuple

import numpy as np

#: Prefix of every segment this library creates; the leak tests (and a
#: desperate operator) can find stragglers under ``/dev/shm`` by it.
SEGMENT_PREFIX = "repro-shm"

#: Offset alignment inside a segment; 64 covers every numpy dtype and
#: keeps arrays cache-line aligned.
_ALIGN = 64


def _aligned(offset: int) -> int:
    return (offset + _ALIGN - 1) & ~(_ALIGN - 1)


def segment_name(hint: str = "") -> str:
    """A unique segment name: prefix, pid, random token, and hint."""
    token = secrets.token_hex(4)
    suffix = f"-{hint}" if hint else ""
    return f"{SEGMENT_PREFIX}-{os.getpid()}-{token}{suffix}"


def pack_arrays(
    arrays: Mapping[str, np.ndarray], hint: str = ""
) -> Tuple[shared_memory.SharedMemory, Dict[str, Any]]:
    """Copy named arrays into one fresh shared-memory segment.

    Returns the owning :class:`SharedMemory` handle (the caller must
    eventually ``close()`` **and** ``unlink()`` it — see
    :func:`destroy_segment`) and the JSON-safe descriptor that
    :func:`attach_arrays` resolves in another process.
    """
    layout: Dict[str, Tuple[str, Tuple[int, ...], int]] = {}
    cursor = 0
    contiguous: Dict[str, np.ndarray] = {}
    for key, array in arrays.items():
        array = np.ascontiguousarray(array)
        contiguous[key] = array
        cursor = _aligned(cursor)
        layout[key] = (array.dtype.str, array.shape, cursor)
        cursor += array.nbytes
    # A zero-byte segment is not representable; keep one spare byte.
    shm = shared_memory.SharedMemory(
        name=segment_name(hint), create=True, size=max(cursor, 1)
    )
    for key, array in contiguous.items():
        dtype_str, shape, offset = layout[key]
        view = np.ndarray(
            array.shape, dtype=array.dtype, buffer=shm.buf, offset=offset
        )
        view[...] = array
    descriptor = {
        "segment": shm.name,
        "arrays": {
            key: [dtype_str, list(shape), offset]
            for key, (dtype_str, shape, offset) in layout.items()
        },
    }
    return shm, descriptor


def attach_arrays(
    descriptor: Mapping[str, Any]
) -> Tuple[shared_memory.SharedMemory, Dict[str, np.ndarray]]:
    """Zero-copy views over a descriptor's segment (no data copied).

    The returned views hold the mapping open via their ``base`` chain,
    but the :class:`SharedMemory` handle is returned too so the caller
    can ``close()`` the local mapping deterministically.  Attaching
    never registers with the resource tracker (segments are created —
    and therefore unlinked — only by the packing process).
    """
    shm = _attach_segment(descriptor["segment"])
    views: Dict[str, np.ndarray] = {}
    for key, (dtype_str, shape, offset) in descriptor["arrays"].items():
        views[key] = np.ndarray(
            tuple(shape), dtype=np.dtype(dtype_str), buffer=shm.buf,
            offset=offset,
        )
    return shm, views


def _attach_segment(name: str) -> shared_memory.SharedMemory:
    try:
        # Python >= 3.13: opt out of resource-tracker bookkeeping for
        # the attach side explicitly.
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:
        return shared_memory.SharedMemory(name=name)


def destroy_segment(shm: shared_memory.SharedMemory) -> None:
    """Close and unlink an *owned* segment, tolerating repeats.

    Safe to call more than once and from ``atexit``/finalizers: a
    segment already unlinked (e.g. by an earlier explicit ``close()``)
    is ignored.
    """
    try:
        shm.close()
    except Exception:
        pass
    try:
        shm.unlink()
    except FileNotFoundError:
        pass
    except Exception:
        pass
