"""Query-oblivious sensor samplers (§4.3, Fig. 4a-c).

- :class:`UniformSelector` — equal-probability (or weighted) sampling;
  biased toward dense areas because dense areas have more candidates.
- :class:`SystematicSelector` — a virtual grid over the domain, one
  pick per cell; spatially even coverage.
- :class:`StratifiedSelector` — per-district allocation proportional to
  district area (or any weight the strata carry).
"""

from __future__ import annotations

import math
from typing import List

import numpy as np

from ..errors import SelectionError
from ..geometry import BBox
from ..mobility import Strata
from .base import Selector, SensorCandidates


class UniformSelector(Selector):
    """Uniform (optionally weighted) random sampling without replacement."""

    name = "uniform"

    def select(
        self, candidates: SensorCandidates, m: int, rng: np.random.Generator
    ) -> List:
        self._validate_budget(candidates, m)
        probabilities = candidates.probabilities()
        indices = rng.choice(
            len(candidates), size=m, replace=False, p=probabilities
        )
        return [candidates.ids[i] for i in sorted(indices)]


class SystematicSelector(Selector):
    """Virtual-grid systematic sampling (one node per grid cell).

    ``pick`` chooses the node closest to the cell centre (``"center"``)
    or a random node of the cell (``"random"``).  Cells without
    candidates stay empty; the pick list is padded/trimmed to exactly
    ``m`` with uniform picks.
    """

    name = "systematic"

    def __init__(self, pick: str = "center") -> None:
        if pick not in ("center", "random"):
            raise SelectionError("pick must be 'center' or 'random'")
        self.pick = pick

    def select(
        self, candidates: SensorCandidates, m: int, rng: np.random.Generator
    ) -> List:
        self._validate_budget(candidates, m)
        box = BBox.from_points(candidates.positions)
        aspect = box.width / box.height if box.height > 0 else 1.0
        rows = max(int(round(math.sqrt(m / max(aspect, 1e-9)))), 1)
        cols = max(int(math.ceil(m / rows)), 1)

        cell_w = box.width / cols if box.width > 0 else 1.0
        cell_h = box.height / rows if box.height > 0 else 1.0
        cells: dict = {}
        for index, (x, y) in enumerate(candidates.positions):
            cx = min(int((x - box.min_x) / cell_w), cols - 1) if cell_w else 0
            cy = min(int((y - box.min_y) / cell_h), rows - 1) if cell_h else 0
            cells.setdefault((cx, cy), []).append(index)

        chosen: List = []
        for (cx, cy), members in sorted(cells.items()):
            if self.pick == "random":
                winner = members[int(rng.integers(0, len(members)))]
            else:
                centre = (
                    box.min_x + (cx + 0.5) * cell_w,
                    box.min_y + (cy + 0.5) * cell_h,
                )
                winner = min(
                    members,
                    key=lambda i: (
                        (candidates.positions[i][0] - centre[0]) ** 2
                        + (candidates.positions[i][1] - centre[1]) ** 2
                    ),
                )
            chosen.append(candidates.ids[winner])
        return self._pad_or_trim(chosen, candidates, m, rng)


class StratifiedSelector(Selector):
    """Stratified sampling over districts (§4.3, Fig. 4c).

    Allocation per stratum is proportional to the stratum weight (area
    by default), rounded largest-remainder so the total is exactly
    ``m``; sampling within a stratum is uniform.
    """

    name = "stratified"

    def __init__(self, strata: Strata) -> None:
        self.strata = strata

    def select(
        self, candidates: SensorCandidates, m: int, rng: np.random.Generator
    ) -> List:
        self._validate_budget(candidates, m)
        groups = self.strata.groups([tuple(p) for p in candidates.positions])
        occupied = sorted(groups)
        weights = np.array(
            [self.strata.area_weights[s] for s in occupied], dtype=float
        )
        weights /= weights.sum()

        allocation = self._largest_remainder(
            weights, [len(groups[s]) for s in occupied], m
        )
        chosen: List = []
        for stratum, quota in zip(occupied, allocation):
            if quota == 0:
                continue
            members = groups[stratum]
            picks = rng.choice(len(members), size=quota, replace=False)
            chosen.extend(candidates.ids[members[i]] for i in sorted(picks))
        return self._pad_or_trim(chosen, candidates, m, rng)

    @staticmethod
    def _largest_remainder(
        weights: np.ndarray, capacities: List[int], m: int
    ) -> List[int]:
        """Proportional integer allocation capped by stratum capacity."""
        ideal = weights * m
        allocation = np.minimum(np.floor(ideal).astype(int), capacities)
        remaining = m - int(allocation.sum())
        if remaining > 0:
            remainders = ideal - np.floor(ideal)
            order = np.argsort(-remainders)
            for index in order:
                if remaining == 0:
                    break
                if allocation[index] < capacities[index]:
                    allocation[index] += 1
                    remaining -= 1
            # Capacity-saturated strata may still leave a deficit;
            # spill round-robin into any stratum with room.
            index = 0
            while remaining > 0 and index < len(allocation) * 2:
                slot = index % len(allocation)
                if allocation[slot] < capacities[slot]:
                    allocation[slot] += 1
                    remaining -= 1
                index += 1
        return allocation.tolist()
