"""Common interface for sensor-selection algorithms (§4.3-4.4).

Candidates are the nodes of the sensing graph ``G`` — one per city
block (interior face of the mobility graph) — identified by their dual
node id and carrying a 2-D position.  A selector picks ``m`` of them as
*communication sensors*; §4.5 then connects the picks into the sampled
graph ``G~``.

Weights support the query-adaptive variant of the samplers mentioned in
§4.3 ("use the number of times each node appeared in previous queries
as the weight").
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..errors import SelectionError
from ..mobility import MobilityDomain


@dataclass(frozen=True)
class SensorCandidates:
    """The selectable sensor population.

    ``ids[i]`` is the dual node (block) id at ``positions[i]``;
    ``weights`` (optional, non-negative) bias probabilistic selectors.
    """

    ids: tuple
    positions: np.ndarray
    weights: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        if len(self.ids) == 0:
            raise SelectionError("no sensor candidates")
        if self.positions.shape != (len(self.ids), 2):
            raise SelectionError("positions must be (n, 2)")
        if self.weights is not None:
            if self.weights.shape != (len(self.ids),):
                raise SelectionError("weights must be (n,)")
            if np.any(self.weights < 0):
                raise SelectionError("weights must be non-negative")

    @classmethod
    def from_domain(
        cls,
        domain: MobilityDomain,
        weights: Optional[np.ndarray] = None,
    ) -> "SensorCandidates":
        """All interior dual nodes of the domain's sensing graph."""
        ids = tuple(domain.dual.interior_nodes)
        positions = np.array(
            [domain.dual.position(node) for node in ids], dtype=float
        )
        return cls(ids=ids, positions=positions, weights=weights)

    def __len__(self) -> int:
        return len(self.ids)

    def probabilities(self) -> np.ndarray:
        """Normalised selection probabilities (uniform when unweighted)."""
        if self.weights is None:
            return np.full(len(self.ids), 1.0 / len(self.ids))
        total = float(self.weights.sum())
        if total <= 0:
            raise SelectionError("weights sum to zero")
        return self.weights / total


class Selector(abc.ABC):
    """A sensor-selection strategy.

    Subclasses must be deterministic given the supplied random
    generator, and must return exactly ``m`` distinct candidate ids.
    """

    #: Short name used in experiment tables.
    name: str = "selector"

    @abc.abstractmethod
    def select(
        self,
        candidates: SensorCandidates,
        m: int,
        rng: np.random.Generator,
    ) -> List:
        """Pick ``m`` candidate ids."""

    def _validate_budget(self, candidates: SensorCandidates, m: int) -> None:
        if m < 1:
            raise SelectionError(f"{self.name}: budget m={m} must be >= 1")
        if m > len(candidates):
            raise SelectionError(
                f"{self.name}: budget m={m} exceeds the "
                f"{len(candidates)} candidates"
            )

    @staticmethod
    def _pad_or_trim(
        chosen: List, candidates: SensorCandidates, m: int, rng: np.random.Generator
    ) -> List:
        """Adjust a near-m pick to exactly m (used by grid-based pickers
        whose natural cell counts rarely equal the budget exactly)."""
        chosen = list(dict.fromkeys(chosen))
        if len(chosen) > m:
            keep = rng.choice(len(chosen), size=m, replace=False)
            return [chosen[i] for i in sorted(keep)]
        if len(chosen) < m:
            pool = [c for c in candidates.ids if c not in set(chosen)]
            extra = rng.choice(len(pool), size=m - len(chosen), replace=False)
            chosen.extend(pool[i] for i in sorted(extra))
        return chosen
