"""Sensor selection: query-oblivious sampling (§4.3) and
query-adaptive submodular maximization (§4.4)."""

from .adaptive import query_frequency_weights, weighted_candidates
from .base import Selector, SensorCandidates
from .hierarchical import KDTreeSelector, QuadTreeSelector
from .regions import Atom, overlap_atoms
from .samplers import StratifiedSelector, SystematicSelector, UniformSelector
from .submodular import SubmodularPlan, SubmodularSelector, lazy_greedy_select

__all__ = [
    "Atom",
    "KDTreeSelector",
    "QuadTreeSelector",
    "Selector",
    "SensorCandidates",
    "StratifiedSelector",
    "SubmodularPlan",
    "SubmodularSelector",
    "SystematicSelector",
    "UniformSelector",
    "lazy_greedy_select",
    "overlap_atoms",
    "query_frequency_weights",
    "weighted_candidates",
]
