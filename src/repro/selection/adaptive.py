"""Query-adaptive candidate weights for the oblivious samplers.

§4.3, closing paragraph: *"we can include non-uniformity by using
different weights for each node. For example, if we were to make our
sampling methods query adaptive, we can use the number of times each
node appeared in previous queries as the weight."*

:func:`query_frequency_weights` turns a historical query workload into
per-block weights: a block is "in" a query when any of the junctions of
its surrounding faces fall inside the query region, and its weight is
the number of historical queries that touched it (plus a smoothing
floor so unqueried blocks stay selectable).
"""

from __future__ import annotations

from typing import Dict, Iterable, Sequence, Set

import numpy as np

from ..errors import SelectionError
from ..mobility import MobilityDomain
from ..planar import NodeId
from .base import SensorCandidates


def query_frequency_weights(
    domain: MobilityDomain,
    query_regions: Sequence[Set[NodeId]],
    smoothing: float = 0.5,
) -> np.ndarray:
    """Per-block weights = historical query hit counts + smoothing.

    Returned in the order of ``SensorCandidates.from_domain(domain)``
    (the domain's interior dual nodes).
    """
    if not query_regions:
        raise SelectionError("need at least one historical query region")
    if smoothing < 0:
        raise SelectionError("smoothing must be non-negative")

    # Map each junction to its incident blocks once.
    junction_blocks: Dict[NodeId, Set[int]] = {}
    outer = domain.dual.outer_node
    for junction in domain.junctions:
        blocks: Set[int] = set()
        for neighbour in domain.graph.neighbors(junction):
            left, right = domain.dual.faces_of_primal_edge(junction, neighbour)
            blocks.update(b for b in (left, right) if b != outer)
        junction_blocks[junction] = blocks

    hits: Dict[int, int] = {}
    for region in query_regions:
        touched: Set[int] = set()
        for junction in region:
            touched |= junction_blocks.get(junction, set())
        for block in touched:
            hits[block] = hits.get(block, 0) + 1

    order = domain.dual.interior_nodes
    return np.array(
        [hits.get(block, 0) + smoothing for block in order], dtype=float
    )


def weighted_candidates(
    domain: MobilityDomain,
    query_regions: Sequence[Set[NodeId]],
    smoothing: float = 0.5,
) -> SensorCandidates:
    """Sensor candidates carrying query-frequency weights."""
    return SensorCandidates.from_domain(
        domain,
        weights=query_frequency_weights(domain, query_regions, smoothing),
    )
