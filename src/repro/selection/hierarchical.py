"""Hierarchical space-partition sampling: kd-tree and QuadTree (§4.3).

Both build a hierarchy over the candidate positions, refining until
there are ``m`` leaves, then pick one representative per leaf — which
blends the density-following behaviour of uniform sampling (leaves are
smaller where candidates are dense) with the even spatial coverage of
systematic sampling.

The refinement is *largest-leaf-first* so exactly ``m`` non-empty
leaves exist when it stops; no pad/trim lottery is needed in the common
case.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import List, Tuple

import numpy as np

from ..errors import SelectionError
from .base import Selector, SensorCandidates


@dataclass(order=True)
class _Leaf:
    """Heap entry: biggest population first, deterministic tiebreak."""

    sort_key: Tuple[int, int]
    indices: np.ndarray = field(compare=False)
    bounds: Tuple[float, float, float, float] = field(compare=False)
    depth: int = field(compare=False, default=0)


class _HierarchicalSelector(Selector):
    """Shared refine-then-pick skeleton for kd-tree and QuadTree."""

    def __init__(self, pick: str = "random") -> None:
        if pick not in ("center", "random"):
            raise SelectionError("pick must be 'center' or 'random'")
        self.pick = pick

    def select(
        self, candidates: SensorCandidates, m: int, rng: np.random.Generator
    ) -> List:
        self._validate_budget(candidates, m)
        positions = candidates.positions
        min_x, min_y = positions.min(axis=0)
        max_x, max_y = positions.max(axis=0)
        root = _Leaf(
            sort_key=(-len(positions), 0),
            indices=np.arange(len(positions)),
            bounds=(min_x, min_y, max_x, max_y),
            depth=0,
        )
        heap: List[_Leaf] = [root]
        serial = 1
        while len(heap) < m:
            leaf = heapq.heappop(heap)
            children = self._split(leaf, positions)
            children = [c for c in children if len(c.indices)]
            if len(children) <= 1:
                # Unsplittable (duplicate coordinates); keep as-is and
                # stop refining this branch.
                leaf.sort_key = (0, leaf.sort_key[1])
                heapq.heappush(heap, leaf)
                if all(entry.sort_key[0] == 0 for entry in heap):
                    break
                continue
            for child in children:
                child.sort_key = (
                    -len(child.indices) if len(child.indices) > 1 else 0,
                    serial,
                )
                serial += 1
                heapq.heappush(heap, child)

        chosen: List = []
        for leaf in heap:
            chosen.append(candidates.ids[self._pick_one(leaf, positions, rng)])
        return self._pad_or_trim(chosen, candidates, m, rng)

    def _pick_one(
        self, leaf: _Leaf, positions: np.ndarray, rng: np.random.Generator
    ) -> int:
        members = leaf.indices
        if self.pick == "random":
            return int(members[int(rng.integers(0, len(members)))])
        cx = (leaf.bounds[0] + leaf.bounds[2]) / 2.0
        cy = (leaf.bounds[1] + leaf.bounds[3]) / 2.0
        offsets = positions[members] - np.array([cx, cy])
        return int(members[int(np.argmin((offsets**2).sum(axis=1)))])

    def _split(self, leaf: _Leaf, positions: np.ndarray) -> List[_Leaf]:
        raise NotImplementedError


class KDTreeSelector(_HierarchicalSelector):
    """Median split on the alternating (wider) axis (Fig. 4d)."""

    name = "kdtree"

    def _split(self, leaf: _Leaf, positions: np.ndarray) -> List[_Leaf]:
        min_x, min_y, max_x, max_y = leaf.bounds
        axis = 0 if (max_x - min_x) >= (max_y - min_y) else 1
        values = positions[leaf.indices, axis]
        median = float(np.median(values))
        left_mask = values <= median
        if left_mask.all() or not left_mask.any():
            # Degenerate median (duplicates): strict split instead.
            left_mask = values < median
            if not left_mask.any():
                return [leaf]
        left = leaf.indices[left_mask]
        right = leaf.indices[~left_mask]
        if axis == 0:
            bounds_left = (min_x, min_y, median, max_y)
            bounds_right = (median, min_y, max_x, max_y)
        else:
            bounds_left = (min_x, min_y, max_x, median)
            bounds_right = (min_x, median, max_x, max_y)
        return [
            _Leaf((0, 0), left, bounds_left, leaf.depth + 1),
            _Leaf((0, 0), right, bounds_right, leaf.depth + 1),
        ]


class QuadTreeSelector(_HierarchicalSelector):
    """Quarter split at the cell midpoint (Fig. 4e)."""

    name = "quadtree"

    def _split(self, leaf: _Leaf, positions: np.ndarray) -> List[_Leaf]:
        min_x, min_y, max_x, max_y = leaf.bounds
        mid_x = (min_x + max_x) / 2.0
        mid_y = (min_y + max_y) / 2.0
        if max_x - min_x <= 1e-12 and max_y - min_y <= 1e-12:
            return [leaf]
        xs = positions[leaf.indices, 0]
        ys = positions[leaf.indices, 1]
        quadrants = [
            ((xs <= mid_x) & (ys <= mid_y), (min_x, min_y, mid_x, mid_y)),
            ((xs > mid_x) & (ys <= mid_y), (mid_x, min_y, max_x, mid_y)),
            ((xs <= mid_x) & (ys > mid_y), (min_x, mid_y, mid_x, max_y)),
            ((xs > mid_x) & (ys > mid_y), (mid_x, mid_y, max_x, max_y)),
        ]
        return [
            _Leaf((0, 0), leaf.indices[mask], bounds, leaf.depth + 1)
            for mask, bounds in quadrants
        ]
