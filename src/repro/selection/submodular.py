"""Query-adaptive sensor selection via submodular maximization (§4.4).

Implements the cost-benefit greedy of Eq. 4 with CELF-style lazy
evaluation (Leskovec et al., KDD'07 — the paper's reference [27]): the
marginal gain of a candidate can only shrink as the selection grows, so
stale heap entries are refreshed on demand instead of re-evaluating the
whole ground set each round.  The greedy carries the classic
``(1 - 1/e)/2`` approximation guarantee under a knapsack cost.

The selector picks overlap atoms of the historical query workload
(:mod:`repro.selection.regions`) maximizing Eq. 6's utility per unit
cost, then materialises their boundaries as sensing walls.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Callable, FrozenSet, Hashable, List, Sequence, Set, Tuple, TypeVar

import numpy as np

from ..errors import SelectionError
from ..mobility import MobilityDomain
from ..planar import NodeId
from .base import Selector, SensorCandidates
from .regions import Atom, overlap_atoms

T = TypeVar("T", bound=Hashable)


def lazy_greedy_select(
    elements: Sequence[T],
    gain: Callable[[T, Tuple[T, ...]], float],
    cost: Callable[[T, Tuple[T, ...]], float],
    budget: float,
    use_ratio: bool = True,
) -> List[T]:
    """Lazy (CELF) cost-benefit greedy maximization under a budget.

    ``gain`` and ``cost`` receive the candidate and the tuple of already
    selected elements and must return the *marginal* gain/cost.  With
    ``use_ratio`` the candidates are ranked by gain per unit cost
    (Eq. 4), otherwise by raw gain (Eq. 2).  Elements whose marginal
    cost no longer fits the remaining budget are skipped; selection
    stops when nothing fits or every gain is zero.
    """
    if budget <= 0:
        raise SelectionError("budget must be positive")

    selected: List[T] = []
    spent = 0.0
    # Heap entries: (-score, insertion order, element, round evaluated)
    counter = itertools.count()
    heap: List[Tuple[float, int, T, int]] = []
    for element in elements:
        g = gain(element, ())
        c = cost(element, ())
        score = _score(g, c, use_ratio)
        heapq.heappush(heap, (-score, next(counter), element, 0))

    current_round = 0
    while heap:
        neg_score, _, element, evaluated_at = heapq.heappop(heap)
        if -neg_score <= 0:
            break
        state = tuple(selected)
        if evaluated_at < current_round:
            g = gain(element, state)
            c = cost(element, state)
            score = _score(g, c, use_ratio)
            heapq.heappush(
                heap, (-score, next(counter), element, current_round)
            )
            continue
        c = cost(element, state)
        if spent + c > budget:
            continue  # cannot afford; drop permanently
        g = gain(element, state)
        if g <= 0:
            continue
        selected.append(element)
        spent += c
        current_round += 1
    return selected


def _score(gain_value: float, cost_value: float, use_ratio: bool) -> float:
    if not use_ratio:
        return gain_value
    if cost_value <= 0:
        return float("inf") if gain_value > 0 else 0.0
    return gain_value / cost_value


@dataclass
class SubmodularPlan:
    """The full outcome of query-adaptive selection."""

    atoms: List[Atom]
    sensors: List[int]
    walls: Set[Tuple[NodeId, NodeId]]


class SubmodularSelector(Selector):
    """Query-adaptive selection from historical query regions (§4.4).

    The budget ``m`` counts *communication sensors*: the blocks (dual
    nodes) incident to the selected atoms' boundary walls — the same
    unit the query-oblivious samplers use, so sweeps are comparable.
    """

    name = "submodular"

    def __init__(
        self,
        domain: MobilityDomain,
        query_history: Sequence[Set[NodeId]],
    ) -> None:
        if not query_history:
            raise SelectionError("submodular selection needs query history")
        self.domain = domain
        self.query_history = [set(region) for region in query_history]
        self._query_weights = [len(region) for region in self.query_history]
        self._atoms = overlap_atoms(domain, self.query_history)

    # ------------------------------------------------------------------
    def plan(self, budget: int, budget_unit: str = "sensors") -> SubmodularPlan:
        """Select atoms under a budget and materialise their walls.

        ``budget_unit`` is ``"sensors"`` (marginal cost = new incident
        communication blocks) or ``"edges"`` (marginal cost = new wall
        edges, the paper's ``c(σ) = |∂σ|`` of Eq. 5).  Edge budgets are
        the fair unit when comparing against sampled graphs, whose
        ``m`` communication sensors monitor many routed wall edges
        each.
        """
        if budget < 1:
            raise SelectionError("budget must be >= 1")
        if budget_unit not in ("sensors", "edges"):
            raise SelectionError(f"unknown budget unit {budget_unit!r}")

        def sensors_of(walls: Set[Tuple[NodeId, NodeId]]) -> Set[int]:
            blocks: Set[int] = set()
            for u, v in walls:
                blocks.update(self._wall_blocks(u, v))
            return blocks

        def marginal_cost(atom: Atom, state: Tuple[Atom, ...]) -> float:
            existing_walls: Set[Tuple[NodeId, NodeId]] = set()
            for chosen in state:
                existing_walls.update(chosen.boundary)
            new_walls = set(atom.boundary) - existing_walls
            if budget_unit == "edges":
                return max(len(new_walls), 1)
            existing_blocks: Set[int] = set()
            for wall in existing_walls:
                existing_blocks.update(self._wall_blocks(*wall))
            new_blocks: Set[int] = set()
            for wall in new_walls:
                new_blocks.update(self._wall_blocks(*wall))
            return max(len(new_blocks - existing_blocks), 1)

        def marginal_gain(atom: Atom, state: Tuple[Atom, ...]) -> float:
            if atom in state:
                return 0.0
            return atom.utility(self._query_weights)

        chosen = lazy_greedy_select(
            self._atoms,
            gain=marginal_gain,
            cost=marginal_cost,
            budget=float(budget),
            use_ratio=True,
        )
        walls: Set[Tuple[NodeId, NodeId]] = set()
        for atom in chosen:
            walls.update(atom.boundary)
        sensors = sorted(sensors_of(walls))
        return SubmodularPlan(atoms=chosen, sensors=sensors, walls=walls)

    def _wall_blocks(self, u: NodeId, v: NodeId) -> Set[int]:
        """Blocks (dual nodes) incident to a wall edge; EXT edges touch
        only the blocks around their rim junction."""
        domain = self.domain
        if u == "__ext__" or v == "__ext__":
            junction = v if u == "__ext__" else u
            blocks: Set[int] = set()
            for neighbour in domain.graph.neighbors(junction):
                left, right = domain.dual.faces_of_primal_edge(junction, neighbour)
                for block in (left, right):
                    if block != domain.dual.outer_node:
                        blocks.add(block)
            return blocks
        left, right = domain.dual.faces_of_primal_edge(u, v)
        return {
            block
            for block in (left, right)
            if block != domain.dual.outer_node
        }

    # ------------------------------------------------------------------
    def select(
        self,
        candidates: SensorCandidates,
        m: int,
        rng: np.random.Generator,
    ) -> List:
        """Selector-interface view: the sensors of :meth:`plan`."""
        del candidates, rng  # selection is deterministic given history
        return list(self.plan(m).sensors)[:m]
