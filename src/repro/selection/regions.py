"""Maximal disjoint regions (atoms) of a historical query workload.

§4.4.2: overlapping historical query regions are "maximally
partitioned" into disjoint pieces before selection — Fig. 5 shows two
overlapping rectangles split into three disjoint regions.  With query
regions represented as junction sets, the atoms are simply the groups
of junctions sharing the same *containment signature* (the subset of
queries that contain them), split further into connected components so
each atom is a contiguous cell complex.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Sequence, Set, Tuple

from ..errors import SelectionError
from ..mobility import EXT, MobilityDomain
from ..planar import NodeId, canonical_edge


@dataclass(frozen=True)
class Atom:
    """A maximal disjoint sub-region of the query arrangement.

    ``queries`` are the indices of the historical queries that fully
    contain the atom; ``boundary`` is ``∂σ`` — the canonical sensing
    edges (including EXT geofence edges) crossing the atom's border,
    whose count is the paper's cost ``c(σ) = |∂σ|`` (Eq. 5).
    """

    junctions: FrozenSet[NodeId]
    queries: FrozenSet[int]
    boundary: FrozenSet[Tuple[NodeId, NodeId]]

    @property
    def weight(self) -> int:
        """``ω(σ)``: the number of cells (junction faces) in the atom."""
        return len(self.junctions)

    @property
    def cost(self) -> int:
        """``c(σ) = |∂σ|`` (Eq. 5)."""
        return len(self.boundary)

    def utility(self, query_weights: Sequence[int]) -> float:
        """Eq. 6: ``f(σ) = Σ_{Q ⊇ σ} ω(σ) / ω(Q)``."""
        return sum(
            self.weight / query_weights[q] for q in self.queries if query_weights[q]
        )


def overlap_atoms(
    domain: MobilityDomain, query_regions: Sequence[Set[NodeId]]
) -> List[Atom]:
    """Partition the union of query regions into contiguous atoms.

    Junctions outside every query are discarded (they can never improve
    coverage of the historical workload).  Each signature class is
    split into connected components of the road graph so atoms are
    contiguous cell complexes, as required for the boundary cost to be
    meaningful.
    """
    if not query_regions:
        raise SelectionError("query-adaptive selection needs historical queries")
    signature: Dict[NodeId, Set[int]] = {}
    for q_index, region in enumerate(query_regions):
        if EXT in region:
            raise SelectionError("query regions cannot contain EXT")
        for junction in region:
            signature.setdefault(junction, set()).add(q_index)

    # Group junctions by signature, then split into connected pieces.
    by_signature: Dict[FrozenSet[int], Set[NodeId]] = {}
    for junction, queries in signature.items():
        by_signature.setdefault(frozenset(queries), set()).add(junction)

    atoms: List[Atom] = []
    for queries, junctions in by_signature.items():
        for piece in _connected_pieces(domain, junctions):
            atoms.append(
                Atom(
                    junctions=frozenset(piece),
                    queries=queries,
                    boundary=frozenset(_boundary_edges(domain, piece)),
                )
            )
    return atoms


def _connected_pieces(
    domain: MobilityDomain, junctions: Set[NodeId]
) -> List[Set[NodeId]]:
    remaining = set(junctions)
    pieces: List[Set[NodeId]] = []
    while remaining:
        start = next(iter(remaining))
        seen = {start}
        stack = [start]
        while stack:
            node = stack.pop()
            for neighbour in domain.graph.neighbors(node):
                if neighbour in remaining and neighbour not in seen:
                    seen.add(neighbour)
                    stack.append(neighbour)
        pieces.append(seen)
        remaining -= seen
    return pieces


def _boundary_edges(
    domain: MobilityDomain, junctions: Set[NodeId]
) -> Set[Tuple[NodeId, NodeId]]:
    edges: Set[Tuple[NodeId, NodeId]] = set()
    for tail, head in domain.inward_boundary_edges(junctions):
        edges.add(canonical_edge(tail, head))
    return edges
