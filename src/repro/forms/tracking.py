"""Timestamped tracking forms (§4.7.2-4.7.4, Eq. 8, Theorems 4.2/4.3).

The tracking form ``γ`` extends the snapshot counters with the full
sequence of crossing timestamps per directed edge: ``γ⁺((u,v))`` is the
ordered multiset of times at which an object crossed toward ``v``.
Counting events up to (or between) query timestamps and integrating
around a region boundary answers static and transient spatiotemporal
range count queries without ever storing object identifiers.

Timestamps are kept sorted lazily: ingestion usually appends in global
time order (cheap), out-of-order appends flip a dirty flag and trigger
one sort at the next read.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Tuple

from ..errors import QueryError
from .snapshot import DirectedEdge, NodeId, _canonical


class _EventSeries:
    """A lazily-sorted list of crossing timestamps for one direction."""

    __slots__ = ("_times", "_dirty")

    def __init__(self) -> None:
        self._times: List[float] = []
        self._dirty = False

    def append(self, t: float) -> None:
        if self._times and t < self._times[-1]:
            self._dirty = True
        self._times.append(t)

    def _ensure_sorted(self) -> None:
        if self._dirty:
            self._times.sort()
            self._dirty = False

    def count_until(self, t: float) -> int:
        """Events with timestamp ``<= t`` (counts are right-continuous)."""
        self._ensure_sorted()
        return bisect.bisect_right(self._times, t)

    def count_between(self, t1: float, t2: float) -> int:
        """Events with timestamp in ``(t1, t2]``."""
        self._ensure_sorted()
        return bisect.bisect_right(self._times, t2) - bisect.bisect_right(
            self._times, t1
        )

    def timestamps(self) -> List[float]:
        self._ensure_sorted()
        return list(self._times)

    def __len__(self) -> int:
        return len(self._times)


@dataclass
class TrackingForm:
    """Per-edge γ⁺/γ⁻ timestamp sequences (Eq. 8) with exact counting.

    This is the *exact* store; :mod:`repro.models` provides drop-in
    replacements that answer the same ``count_entering`` interface from
    constant-size regression models.
    """

    _series: Dict[DirectedEdge, Tuple[_EventSeries, _EventSeries]] = field(
        default_factory=dict
    )
    #: Bumped by every :meth:`record`; stamps the aggregate caches so
    #: ``total_events``/``storage_profile`` don't rescan a store that
    #: has not changed (Fig. 11e rebuilds the CDF repeatedly).
    _generation: int = field(default=0, repr=False, compare=False)
    _total_events_cache: Tuple[int, int] = field(
        default=(-1, 0), repr=False, compare=False
    )
    _storage_profile_cache: Tuple[int, Tuple[int, ...]] = field(
        default=(-1, ()), repr=False, compare=False
    )

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def record(self, u: NodeId, v: NodeId, t: float) -> None:
        """Record an object crossing toward ``v`` at time ``t`` (Eq. 8)."""
        key, forward = _canonical((u, v))
        pair = self._series.get(key)
        if pair is None:
            pair = (_EventSeries(), _EventSeries())
            self._series[key] = pair
        pair[0 if forward else 1].append(float(t))
        self._generation += 1

    # ------------------------------------------------------------------
    # Count function C(γ(e), t) and its range form (§4.7.3-4.7.4)
    # ------------------------------------------------------------------
    def count_entering(self, edge: DirectedEdge, t: float) -> float:
        """``C(γ⁺(e), t)``: crossings in the direction of ``edge`` to time t."""
        key, forward = _canonical(edge)
        pair = self._series.get(key)
        if pair is None:
            return 0
        return pair[0 if forward else 1].count_until(t)

    def count_leaving(self, edge: DirectedEdge, t: float) -> float:
        """``C(γ⁻(e), t)``: crossings against the direction of ``edge``."""
        return self.count_entering((edge[1], edge[0]), t)

    def net_until(self, edge: DirectedEdge, t: float) -> float:
        """``C(γ⁺(e), t) - C(γ⁻(e), t)`` — the integrand of Theorem 4.2."""
        return self.count_entering(edge, t) - self.count_leaving(edge, t)

    def net_between(self, edge: DirectedEdge, t1: float, t2: float) -> float:
        """Range form of the integrand (Theorem 4.3), events in (t1, t2]."""
        if t2 < t1:
            raise QueryError(f"inverted time interval [{t1}, {t2}]")
        return self.net_until(edge, t2) - self.net_until(edge, t1)

    # ------------------------------------------------------------------
    # Region integration
    # ------------------------------------------------------------------
    def integrate_until(
        self, edges: Iterable[DirectedEdge], t: float
    ) -> float:
        """Theorem 4.2: objects inside the region at time ``t``.

        ``edges`` is the region's boundary chain, each directed edge
        oriented inward (head side inside the region).
        """
        return sum(self.net_until(edge, t) for edge in edges)

    def integrate_between(
        self, edges: Iterable[DirectedEdge], t1: float, t2: float
    ) -> float:
        """Theorem 4.3: net change of objects inside during ``(t1, t2]``.

        Negative values mean more objects left than entered.
        """
        return sum(self.net_between(edge, t1, t2) for edge in edges)

    # ------------------------------------------------------------------
    # Introspection / storage accounting (Fig. 11e)
    # ------------------------------------------------------------------
    def edges(self) -> Iterator[DirectedEdge]:
        """Canonical undirected edges that have recorded crossings."""
        return iter(self._series)

    def timestamps(self, edge: DirectedEdge) -> Tuple[List[float], List[float]]:
        """``(γ⁺, γ⁻)`` timestamp lists for the given directed edge."""
        key, forward = _canonical(edge)
        pair = self._series.get(key)
        if pair is None:
            return ([], [])
        plus, minus = pair if forward else (pair[1], pair[0])
        return (plus.timestamps(), minus.timestamps())

    def event_count(self, edge: DirectedEdge) -> int:
        """Total stored timestamps (both directions) for an edge."""
        key, _ = _canonical(edge)
        pair = self._series.get(key)
        if pair is None:
            return 0
        return len(pair[0]) + len(pair[1])

    @property
    def total_events(self) -> int:
        generation, cached = self._total_events_cache
        if generation != self._generation:
            cached = sum(
                len(p[0]) + len(p[1]) for p in self._series.values()
            )
            self._total_events_cache = (self._generation, cached)
        return cached

    @property
    def edge_count(self) -> int:
        return len(self._series)

    def storage_profile(self) -> List[int]:
        """Per-edge stored timestamp counts (the Fig. 11e CDF input)."""
        generation, cached = self._storage_profile_cache
        if generation != self._generation:
            cached = tuple(
                sorted(
                    len(pair[0]) + len(pair[1])
                    for pair in self._series.values()
                )
            )
            self._storage_profile_cache = (self._generation, cached)
        return list(cached)

    def storage_report(self) -> dict:
        """Bytes-per-component accounting in the unified store schema
        (nominal 8 bytes per stored timestamp, the paper's storage
        model — this store keeps Python lists, not packed columns)."""
        events = self.total_events
        return {
            "store": type(self).__name__,
            "events": int(events),
            "total_bytes": int(events) * 8,
            "components": {"timestamps": int(events) * 8},
        }
