"""Error-bounded per-edge count sketches (the approximate fast tier).

:class:`EdgeCountSketch` summarises an event stream as, per directed
canonical edge, the **net** crossing count accumulated through each
touched time bin plus the bin's total activity.  A boundary-chain
range count is then answered from bin boundaries alone — no timestamp
decode, no chain compilation — with a rigorous error bound: the only
uncertainty is the order of events inside the partial bin containing
the query time, and each of those events moves the net count by at
most one, so

    |exact - estimate| <= activity(partial bin)          (static)
    |exact - estimate| <= activity(t1 bin) + activity(t2 bin)
                                                         (transient)

The bound *always* contains the exact answer (it is a worst-case
count, not a probabilistic tail), which is what lets the query engine
serve a sketch answer whenever the caller's ``max_error`` tolerance
admits it and silently fall back to the exact compiled path when not.
Sketch answers ride the existing :class:`~repro.query.QueryDegradation`
machinery with ``strategy="sketch"`` so observability (degradation
metrics, flight records) needs no new plumbing.

Storage is a CSR over *touched* ``(edge, bin)`` pairs only — about
ten bytes per pair — so coarse bins make the sketch hundreds of times
smaller than even the compressed exact tier.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Tuple

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..trajectories import EventColumns

#: Default number of time bins across the observed span when a caller
#: asks for a sketch without sizing it.
DEFAULT_SKETCH_BINS = 64


class EdgeCountSketch:
    """Per-edge binned net-count summary with worst-case error bounds."""

    def __init__(
        self,
        edge_offsets: np.ndarray,
        bins: np.ndarray,
        cum_net: np.ndarray,
        activity: np.ndarray,
        bin_width: float,
        n_ids: int,
    ) -> None:
        self._edge_offsets = edge_offsets  # int64, n_ids + 1
        self._bins = bins                  # int64 bin index, asc per edge
        self._cum_net = cum_net            # int32 net count through bin
        self._activity = activity          # int32 events inside bin
        self._bin_width = float(bin_width)
        self._n_ids = int(n_ids)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_columns(
        cls, columns: "EventColumns", bins: int = DEFAULT_SKETCH_BINS
    ) -> "EdgeCountSketch":
        """Build from observed event columns with ``bins`` time bins.

        ``bins`` divides the ``[0, t_max]`` span; events are assigned
        by ``floor(t / width)``, so the bin universe is sparse and
        nothing is allocated for untouched ``(edge, bin)`` pairs.
        """
        if bins < 1:
            raise ValueError("sketch bins must be >= 1")
        n_ids = len(columns.interner)
        t = np.asarray(columns.t, dtype=np.float64)
        if len(t) == 0:
            return cls(
                edge_offsets=np.zeros(n_ids + 1, dtype=np.int64),
                bins=np.empty(0, dtype=np.int64),
                cum_net=np.empty(0, dtype=np.int32),
                activity=np.empty(0, dtype=np.int32),
                bin_width=1.0,
                n_ids=n_ids,
            )
        t_max = float(t.max())
        width = (t_max / bins) if t_max > 0 else 1.0
        edge_id = np.asarray(columns.edge_id, dtype=np.int64)
        sign = np.where(
            np.asarray(columns.direction) == 0, 1, -1
        ).astype(np.int64)
        bin_of = np.floor(t / width).astype(np.int64)

        # Collapse to unique (edge, bin) pairs, summing signs and
        # counting activity per pair.
        order = np.lexsort((bin_of, edge_id))
        eid_s = edge_id[order]
        bin_s = bin_of[order]
        sign_s = sign[order]
        new_pair = np.empty(len(eid_s), dtype=bool)
        new_pair[0] = True
        new_pair[1:] = (eid_s[1:] != eid_s[:-1]) | (bin_s[1:] != bin_s[:-1])
        pair_idx = np.cumsum(new_pair) - 1
        n_pairs = int(pair_idx[-1]) + 1
        net = np.bincount(
            pair_idx, weights=sign_s, minlength=n_pairs
        ).astype(np.int64)
        activity = np.bincount(pair_idx, minlength=n_pairs).astype(np.int32)
        pair_eid = eid_s[new_pair]
        pair_bin = bin_s[new_pair]

        # Per-edge cumulative net through each bin: global cumsum minus
        # the running total at each edge's first pair.
        running = np.cumsum(net)
        edge_counts = np.bincount(pair_eid, minlength=n_ids)
        edge_offsets = np.concatenate(
            ([0], np.cumsum(edge_counts))
        ).astype(np.int64)
        base = np.repeat(
            running[edge_offsets[:-1][edge_counts > 0]] -
            net[edge_offsets[:-1][edge_counts > 0]],
            edge_counts[edge_counts > 0],
        )
        cum_net = (running - base).astype(np.int32)
        return cls(
            edge_offsets=edge_offsets,
            bins=pair_bin,
            cum_net=cum_net,
            activity=activity,
            bin_width=width,
            n_ids=n_ids,
        )

    # ------------------------------------------------------------------
    # Chain estimation
    # ------------------------------------------------------------------
    def _edge_until(self, eid: int, t: float) -> Tuple[int, int]:
        """(estimate, bound) of one edge's net count up to ``t``."""
        if eid < 0 or eid >= self._n_ids:
            return 0, 0
        lo = int(self._edge_offsets[eid])
        hi = int(self._edge_offsets[eid + 1])
        if lo == hi:
            return 0, 0
        q = int(np.floor(t / self._bin_width))
        seg = self._bins[lo:hi]
        idx = int(np.searchsorted(seg, q, side="left"))
        estimate = int(self._cum_net[lo + idx - 1]) if idx > 0 else 0
        bound = 0
        if idx < hi - lo and int(seg[idx]) == q:
            bound = int(self._activity[lo + idx])
        return estimate, bound

    def estimate_until_ids(
        self, wall_ids: np.ndarray, signs: np.ndarray, t: float
    ) -> Tuple[int, int]:
        """Chain static count estimate: Σ sign · edge estimate.

        Returns ``(estimate, bound)`` with the worst-case guarantee
        ``|exact - estimate| <= bound``.
        """
        estimate = 0
        bound = 0
        for eid, sign in zip(wall_ids, signs):
            e, b = self._edge_until(int(eid), t)
            estimate += int(sign) * e
            bound += b
        return estimate, bound

    def estimate_between_ids(
        self, wall_ids: np.ndarray, signs: np.ndarray, t1: float, t2: float
    ) -> Tuple[int, int]:
        """Chain transient count estimate over ``(t1, t2]``."""
        e1, b1 = self.estimate_until_ids(wall_ids, signs, t1)
        e2, b2 = self.estimate_until_ids(wall_ids, signs, t2)
        return e2 - e1, b1 + b2

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def bin_width(self) -> float:
        """Seconds per time bin."""
        return self._bin_width

    @property
    def pair_count(self) -> int:
        """Touched ``(edge, bin)`` pairs stored."""
        return len(self._bins)

    @property
    def activity(self) -> np.ndarray:
        """Events per touched ``(edge, bin)`` pair — each entry is the
        worst-case error bound a query cut inside that bin reports."""
        return self._activity

    def storage_report(self) -> dict:
        """Unified bytes-per-component schema (see compiled form)."""
        components = {
            "edge_offsets": int(self._edge_offsets.nbytes),
            "bins": int(self._bins.nbytes),
            "cum_net": int(self._cum_net.nbytes),
            "activity": int(self._activity.nbytes),
        }
        return {
            "store": type(self).__name__,
            "events": int(self._activity.sum()) if len(self._activity) else 0,
            "total_bytes": int(sum(components.values())),
            "components": components,
        }

    def __repr__(self) -> str:
        return (
            f"EdgeCountSketch(pairs={self.pair_count}, "
            f"bin_width={self._bin_width:.3g})"
        )
