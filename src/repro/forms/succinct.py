"""Succinct (delta + bit-packed) tracking forms — the compressed tier.

:class:`CompressedTrackingForm` stores the same per-edge crossing
timestamp multisets as :class:`~repro.forms.compiled.CompiledTrackingForm`
but roughly 4× smaller: per (edge, direction) segment the first
timestamp's **tick** (a dyadic fixed-point integer, see
:func:`quantize_times`) is kept as a 64-bit frame-of-reference head and
the remaining values as consecutive non-negative deltas, chunked into
blocks of :data:`DEFAULT_BLOCK` deltas, each block bit-packed at the
width of its largest delta.  A block of identical timestamps packs to
**zero** payload bits (width 0), so heavy-duplicate edges are nearly
free.

Reads decode lazily per CSR slice: :meth:`CompressedTrackingForm.
_segment_ids` inflates exactly one edge's segment (kept in a small
LRU), and boundary compilation concatenates per-wall decodes — there
is never a full-column materialisation on the query path.  Everything
above the two storage hooks (searchsorted counting, merged prefix-sum
chains, the boundary LRU, metrics) is inherited from the compiled
form unchanged, which is what makes compressed answers byte-identical
to uncompressed ones built from the same quantized columns.

Exactness contract: timestamps must be quantized **once at the ingest
boundary** (``EventColumns.quantized`` / ``quantize_times``).  A
quantized value is ``k * 2**-tick_bits`` with integer ``k`` — exactly
representable in float64 — so ``decode(encode(t)) == t`` bit-for-bit
and the compressed form is a lossless store of the quantized multiset.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import TYPE_CHECKING, List, Tuple

import numpy as np

from .compiled import (
    DEFAULT_BOUNDARY_CACHE_SIZE,
    CompiledTrackingForm,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..planar import EdgeInterner

#: Default timestamp resolution: ``2**tick_bits`` ticks per second.
#: 0 — whole seconds — is where trajectory workloads sit (sub-second
#: crossing precision is below GPS noise) and clears the 4× floor.
DEFAULT_TICK_BITS = 0

#: Deltas per bit-packed block.  32 measured best at DEFAULT scale:
#: small enough that one large gap only inflates 32 deltas' width,
#: large enough that the per-block width byte stays amortised.
DEFAULT_BLOCK = 32

#: Decoded-segment LRU cap (segments, not bytes).  Sized for the
#: working set of a figure battery's distinct boundary walls.
DEFAULT_DECODE_CACHE_SIZE = 2048

_EMPTY = np.empty(0, dtype=np.float64)
_EMPTY_U8 = np.empty(0, dtype=np.uint8)


def quantize_times(t: np.ndarray, tick_bits: int = DEFAULT_TICK_BITS):
    """Snap timestamps to the dyadic grid ``k * 2**-tick_bits``.

    Monotone (preserves sort order) and idempotent; the result is a
    float64 array every value of which round-trips exactly through the
    integer tick encoding.
    """
    scale = float(2.0 ** tick_bits)
    return np.round(np.asarray(t, dtype=np.float64) * scale) / scale


def _pack_deltas(deltas: np.ndarray, width: int) -> np.ndarray:
    """Bit-pack non-negative int64 deltas at ``width`` bits, MSB first."""
    if width == 0:
        return _EMPTY_U8
    shifts = np.arange(width - 1, -1, -1, dtype=np.int64)
    bits = ((deltas[:, None] >> shifts) & 1).astype(np.uint8)
    return np.packbits(bits.ravel())


def _unpack_deltas(buf: np.ndarray, n: int, width: int) -> np.ndarray:
    """Inverse of :func:`_pack_deltas` for ``n`` deltas."""
    if width == 0:
        return np.zeros(n, dtype=np.int64)
    bits = np.unpackbits(buf, count=n * width).reshape(n, width)
    weights = np.left_shift(
        np.int64(1), np.arange(width - 1, -1, -1, dtype=np.int64)
    )
    return bits @ weights


class _DirectionBlocks:
    """One direction's compressed column (heads/widths/payload)."""

    __slots__ = ("heads", "widths", "payload")

    def __init__(self, heads, widths, payload) -> None:
        self.heads = heads    # int64, one per nonempty segment
        self.widths = widths  # uint8, one per block
        self.payload = payload  # uint8 packed delta bits

    @property
    def nbytes(self) -> int:
        return int(
            self.heads.nbytes + self.widths.nbytes + self.payload.nbytes
        )


def _encode_direction(
    values: np.ndarray, offsets: np.ndarray, tick_bits: int, block: int
) -> _DirectionBlocks:
    """Compress one direction's CSR column into delta blocks."""
    scale = float(2.0 ** tick_bits)
    ticks = np.rint(np.asarray(values, dtype=np.float64) * scale).astype(
        np.int64
    )
    counts = np.diff(offsets)
    nonempty = np.flatnonzero(counts)
    heads = np.empty(len(nonempty), dtype=np.int64)
    widths: List[int] = []
    chunks: List[np.ndarray] = []
    for rank, eid in enumerate(nonempty):
        lo = int(offsets[eid])
        hi = int(offsets[eid + 1])
        heads[rank] = ticks[lo]
        deltas = np.diff(ticks[lo:hi])
        for start in range(0, len(deltas), block):
            chunk = deltas[start:start + block]
            width = int(chunk.max()).bit_length()
            widths.append(width)
            if width:
                chunks.append(_pack_deltas(chunk, width))
    payload = np.concatenate(chunks) if chunks else _EMPTY_U8
    return _DirectionBlocks(
        heads=heads,
        widths=np.asarray(widths, dtype=np.uint8),
        payload=payload,
    )


def _derive_index(
    offsets: np.ndarray, widths: np.ndarray, block: int
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Derived decode index: all cheap functions of offsets + widths.

    Returns ``(rank, block_starts, byte_starts)`` — per-edge rank of
    its nonempty segment (-1 if empty), per-segment index of its first
    block in ``widths``, and per-block byte offset into the payload.
    Recomputed at construction *and* shm attach time, so none of it is
    stored or shipped: the compressed wire format is just offsets,
    heads, widths and payload.
    """
    counts = np.diff(offsets)
    nonempty = counts > 0
    rank = np.cumsum(nonempty, dtype=np.int64) - 1
    rank[~nonempty] = -1
    # Delta stream of a segment of length L has L-1 entries.
    n_deltas = (counts[nonempty] - 1).astype(np.int64)
    n_blocks = -(-n_deltas // block)
    block_starts = np.concatenate(
        ([0], np.cumsum(n_blocks))
    ).astype(np.int64)
    total_blocks = int(block_starts[-1])
    blk_len = np.full(total_blocks, block, dtype=np.int64)
    has = n_blocks > 0
    last = block_starts[1:][has] - 1
    blk_len[last] = n_deltas[has] - (n_blocks[has] - 1) * block
    nbytes = (blk_len * widths.astype(np.int64) + 7) // 8
    byte_starts = np.concatenate(([0], np.cumsum(nbytes))).astype(np.int64)
    return rank, block_starts, byte_starts


class CompressedTrackingForm(CompiledTrackingForm):
    """Delta-encoded, bit-packed drop-in for the compiled form.

    The public query surface (``count_*``, ``net_*``,
    ``integrate_*``, ``compile_boundary_ids``, shm interop) is the
    parent's; only the two raw-storage hooks (:meth:`_segment_ids`,
    :meth:`_direction_slices`), construction, append and shm layout
    differ.
    """

    def __init__(
        self,
        interner: "EdgeInterner",
        edge_id: np.ndarray,
        direction: np.ndarray,
        t: np.ndarray,
        boundary_cache_size: int = DEFAULT_BOUNDARY_CACHE_SIZE,
        tick_bits: int = DEFAULT_TICK_BITS,
        block: int = DEFAULT_BLOCK,
    ) -> None:
        """Compile and compress columnar events.

        ``t`` must already lie on the ``tick_bits`` dyadic grid
        (callers quantize once at ingest); values are snapped here as
        a belt-and-braces measure so a stray un-quantized call cannot
        silently desynchronise the tick decode.
        """
        t = quantize_times(t, tick_bits)
        super().__init__(
            interner, edge_id, direction, t,
            boundary_cache_size=boundary_cache_size,
        )
        self._tick_bits = int(tick_bits)
        self._block = int(block)
        self._compress_in_place()

    # ------------------------------------------------------------------
    # Construction / mutation
    # ------------------------------------------------------------------
    def _compress_in_place(self) -> None:
        """Replace the parent's raw columns with compressed blocks."""
        blocks: List[_DirectionBlocks] = []
        offsets32: List[np.ndarray] = []
        for d in (0, 1):
            blocks.append(
                _encode_direction(
                    self._values[d], self._offsets[d],
                    self._tick_bits, self._block,
                )
            )
            offsets32.append(self._offsets[d].astype(np.int32))
        self._blocks = (blocks[0], blocks[1])
        self._offsets = (offsets32[0], offsets32[1])
        del self._values  # the point of the exercise
        self._init_decode_state()

    def _init_decode_state(self) -> None:
        ranks = []
        block_starts = []
        byte_starts = []
        for d in (0, 1):
            rank, starts, bstarts = _derive_index(
                self._offsets[d], self._blocks[d].widths, self._block
            )
            ranks.append(rank)
            block_starts.append(starts)
            byte_starts.append(bstarts)
        self._seg_rank = (ranks[0], ranks[1])
        self._block_starts = (block_starts[0], block_starts[1])
        self._byte_starts = (byte_starts[0], byte_starts[1])
        #: Decoded segments, LRU keyed ``(d, eid)``.
        self._decoded: "OrderedDict[Tuple[int, int], np.ndarray]" = (
            OrderedDict()
        )

    def append_events(
        self,
        edge_id: np.ndarray,
        direction: np.ndarray,
        t: np.ndarray,
    ) -> int:
        """Merge new events: decode, lexsort-merge, re-encode.

        Same contract as the parent (boundary cache cleared,
        generation bumped); streaming compaction batches appends so
        the full decode/re-encode cycle amortises.
        """
        t = quantize_times(np.asarray(t, dtype=np.float64), self._tick_bits)
        n_new = len(t)
        if n_new == 0:
            return 0
        # Rebuild the transient raw columns the parent merge expects,
        # run it, then re-compress.
        self._values = (
            self._direction_values(0), self._direction_values(1)
        )
        self._offsets = (
            self._offsets[0].astype(np.int64),
            self._offsets[1].astype(np.int64),
        )
        merged = super().append_events(edge_id, direction, t)
        self._compress_in_place()
        return merged

    # ------------------------------------------------------------------
    # Storage hooks (the only read-path overrides)
    # ------------------------------------------------------------------
    def _decode_segment(self, eid: int, d: int) -> np.ndarray:
        offsets = self._offsets[d]
        length = int(offsets[eid + 1]) - int(offsets[eid])
        if length == 0:
            return _EMPTY
        blocks = self._blocks[d]
        rank = int(self._seg_rank[d][eid])
        ticks = np.empty(length, dtype=np.int64)
        ticks[0] = blocks.heads[rank]
        n_deltas = length - 1
        if n_deltas:
            block_i = int(self._block_starts[d][rank])
            byte_starts = self._byte_starts[d]
            out = 1
            for start in range(0, n_deltas, self._block):
                n = min(self._block, n_deltas - start)
                width = int(blocks.widths[block_i])
                if width:
                    pos = int(byte_starts[block_i])
                    nbytes = (n * width + 7) // 8
                    ticks[out:out + n] = _unpack_deltas(
                        blocks.payload[pos:pos + nbytes], n, width
                    )
                else:
                    ticks[out:out + n] = 0
                block_i += 1
                out += n
            np.cumsum(ticks, out=ticks)
        return ticks * float(2.0 ** -self._tick_bits)

    def _segment_ids(self, eid: int, d: int) -> np.ndarray:
        key = (d, eid)
        cached = self._decoded.get(key)
        if cached is not None:
            self._decoded.move_to_end(key)
            return cached
        segment = self._decode_segment(eid, d)
        if len(segment):
            self._decoded[key] = segment
            while len(self._decoded) > DEFAULT_DECODE_CACHE_SIZE:
                self._decoded.popitem(last=False)
        return segment

    def _direction_slices(
        self, wall_ids: np.ndarray, d: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        offsets = self._offsets[d]
        lens = (
            offsets[wall_ids + 1] - offsets[wall_ids]
        ).astype(np.int64)
        if not int(lens.sum()):
            return _EMPTY, lens
        parts = [
            self._segment_ids(int(eid), d)
            for eid in wall_ids[lens > 0]
        ]
        return np.concatenate(parts), lens

    def _direction_values(self, d: int) -> np.ndarray:
        counts = np.diff(self._offsets[d])
        nonempty = np.flatnonzero(counts)
        if not len(nonempty):
            return _EMPTY
        return np.concatenate(
            [self._decode_segment(int(eid), d) for eid in nonempty]
        )

    # ------------------------------------------------------------------
    # Shared-memory interop
    # ------------------------------------------------------------------
    def shm_pack(self, hint: str = "form"):
        """Pack the *compressed* arrays — the whole reason sharded
        workers can attach a ~4× smaller segment zero-copy."""
        from .. import shm as shm_mod

        arrays = {}
        for d in (0, 1):
            arrays[f"offsets{d}"] = self._offsets[d]
            arrays[f"heads{d}"] = self._blocks[d].heads
            arrays[f"widths{d}"] = self._blocks[d].widths
            arrays[f"payload{d}"] = self._blocks[d].payload
        handle, descriptor = shm_mod.pack_arrays(arrays, hint=hint)
        descriptor["n_ids"] = int(self._n_ids)
        descriptor["form"] = "compressed"
        descriptor["tick_bits"] = self._tick_bits
        descriptor["block"] = self._block
        return handle, descriptor

    @classmethod
    def shm_attach(
        cls,
        descriptor,
        interner: "EdgeInterner",
        boundary_cache_size: int = DEFAULT_BOUNDARY_CACHE_SIZE,
    ) -> "CompressedTrackingForm":
        """Zero-copy compressed form over a :meth:`shm_pack` segment."""
        from .. import shm as shm_mod

        handle, views = shm_mod.attach_arrays(descriptor)
        form = cls.__new__(cls)
        form._interner = interner
        form._n_ids = int(descriptor["n_ids"])
        form._tick_bits = int(descriptor["tick_bits"])
        form._block = int(descriptor["block"])
        form._offsets = (views["offsets0"], views["offsets1"])
        form._blocks = (
            _DirectionBlocks(
                views["heads0"], views["widths0"], views["payload0"]
            ),
            _DirectionBlocks(
                views["heads1"], views["widths1"], views["payload1"]
            ),
        )
        form._init_runtime_state(boundary_cache_size)
        form._init_decode_state()
        form._shm_handle = handle
        return form

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def tick_bits(self) -> int:
        """Timestamp resolution: ``2**tick_bits`` ticks per second."""
        return self._tick_bits

    def _storage_components(self) -> dict:
        return {
            "offsets": int(
                self._offsets[0].nbytes + self._offsets[1].nbytes
            ),
            "heads": int(
                self._blocks[0].heads.nbytes + self._blocks[1].heads.nbytes
            ),
            "block_widths": int(
                self._blocks[0].widths.nbytes
                + self._blocks[1].widths.nbytes
            ),
            "payload": int(
                self._blocks[0].payload.nbytes
                + self._blocks[1].payload.nbytes
            ),
        }

    def __repr__(self) -> str:
        report = self.storage_report()
        return (
            f"CompressedTrackingForm(edges={self.edge_count}, "
            f"events={self.total_events}, "
            f"bytes={report['total_bytes']}, "
            f"tick_bits={self._tick_bits})"
        )
