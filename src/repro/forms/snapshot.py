"""Snapshot differential 1-forms (§4.7.1, Eq. 7, Theorem 4.1).

A differential 1-form assigns a real value to every *directed* edge with
the antisymmetry ``ξ(-e) = -ξ(e)``.  The paper tracks movements with a
*pair* of monotone counters per directed edge — ``ξ⁺`` (crossings that
enter the face to the left of the edge) and ``ξ⁻`` (crossings that leave
it) — whose difference is a proper antisymmetric form.  Integrating that
difference along the boundary chain of a region yields the number of
objects currently inside (Theorem 4.1), and the two-counter split is
what makes repeated exits/re-entries cancel instead of double counting.

Direction convention used across the library: the directed edge
``(u, v)`` denotes the crossing direction *toward* ``v`` — for the
sensing dual edge of a primal (road) edge ``{u, v}`` this is "entering
the sensing face around junction ``v``".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, Iterable, Iterator, Tuple

from ..errors import QueryError

NodeId = Hashable
DirectedEdge = Tuple[NodeId, NodeId]


def _canonical(edge: DirectedEdge) -> Tuple[DirectedEdge, bool]:
    """Canonical storage key and whether ``edge`` matches its direction."""
    u, v = edge
    ku = (type(u).__name__, repr(u))
    kv = (type(v).__name__, repr(v))
    if ku <= kv:
        return ((u, v), True)
    return ((v, u), False)


@dataclass
class DifferentialForm:
    """A plain antisymmetric 1-form: ``ξ(-e) = -ξ(e)``.

    Stores one signed value per undirected edge, exposed with the sign
    resolved by query direction.  Useful on its own for flow-style
    quantities; the counting machinery uses :class:`SnapshotForm`.
    """

    _values: Dict[DirectedEdge, float] = field(default_factory=dict)

    def set(self, edge: DirectedEdge, value: float) -> None:
        key, forward = _canonical(edge)
        self._values[key] = value if forward else -value

    def add(self, edge: DirectedEdge, value: float) -> None:
        key, forward = _canonical(edge)
        self._values[key] = self._values.get(key, 0.0) + (
            value if forward else -value
        )

    def __call__(self, edge: DirectedEdge) -> float:
        key, forward = _canonical(edge)
        value = self._values.get(key, 0.0)
        return value if forward else -value

    def integrate(self, chain: Iterable[Tuple[DirectedEdge, int]]) -> float:
        """Integrate along a 1-chain of ``(directed edge, weight)``."""
        return sum(weight * self(edge) for edge, weight in chain)

    def support(self) -> Iterator[DirectedEdge]:
        """Canonical edges carrying a non-zero value."""
        return (edge for edge, value in self._values.items() if value != 0.0)


@dataclass
class SnapshotForm:
    """The ξ⁺/ξ⁻ crossing-counter pair of Eq. 7, without timestamps.

    ``record(u, v)`` registers one object crossing the sensing edge of
    ``{u, v}`` in the direction toward ``v``.  ``xi_plus((u, v))`` then
    reads the total crossings toward ``v``, ``xi_minus((u, v))`` the
    total toward ``u``, and ``net`` their antisymmetric difference.
    """

    _counts: Dict[DirectedEdge, Tuple[int, int]] = field(default_factory=dict)

    def record(self, u: NodeId, v: NodeId, count: int = 1) -> None:
        """Record ``count`` crossings in direction ``u -> v`` (Eq. 7)."""
        if count < 0:
            raise QueryError("crossing counts cannot be negative")
        key, forward = _canonical((u, v))
        fwd, bwd = self._counts.get(key, (0, 0))
        if forward:
            self._counts[key] = (fwd + count, bwd)
        else:
            self._counts[key] = (fwd, bwd + count)

    def xi_plus(self, edge: DirectedEdge) -> int:
        """Crossings in the direction of ``edge`` (entering its head)."""
        key, forward = _canonical(edge)
        fwd, bwd = self._counts.get(key, (0, 0))
        return fwd if forward else bwd

    def xi_minus(self, edge: DirectedEdge) -> int:
        """Crossings against the direction of ``edge``."""
        return self.xi_plus((edge[1], edge[0]))

    def net(self, edge: DirectedEdge) -> int:
        """``ξ⁺(e) - ξ⁻(e)``; antisymmetric in the edge direction."""
        return self.xi_plus(edge) - self.xi_minus(edge)

    def integrate(self, chain: Iterable[Tuple[DirectedEdge, int]]) -> int:
        """Theorem 4.1: objects inside the region bounded by ``chain``.

        ``chain`` yields ``(directed edge, weight)`` pairs oriented so
        that the region lies at the head side of each edge (the
        convention produced by :func:`repro.planar.region_boundary`
        after orientation resolution, or directly by the query engine).
        """
        return sum(weight * self.net(edge) for edge, weight in chain)

    def integrate_edges(self, edges: Iterable[DirectedEdge]) -> int:
        """Integrate a chain whose weights are all +1."""
        return sum(self.net(edge) for edge in edges)

    @property
    def edge_count(self) -> int:
        """Number of undirected edges that have seen any crossing."""
        return len(self._counts)

    @property
    def total_crossings(self) -> int:
        return sum(f + b for f, b in self._counts.values())
