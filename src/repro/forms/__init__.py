"""Discrete differential forms for distinct counting (system S3).

Implements §4.7 of the paper: snapshot forms (Eq. 7 / Theorem 4.1),
timestamped tracking forms (Eq. 8 / Theorems 4.2-4.3), the count
function interface shared with the learned models, and an optional
differential-privacy wrapper.
"""

from .calculus import (
    circulation,
    coboundary,
    face_divergence,
    integrate_potential,
    is_exact,
)
from .compiled import CompiledTrackingForm
from .countfn import DirectedEdge, EdgeCountStore, static_count, transient_count
from .privacy import LaplaceNoisyStore
from .sketch import EdgeCountSketch
from .snapshot import DifferentialForm, SnapshotForm
from .succinct import CompressedTrackingForm, quantize_times
from .tracking import TrackingForm

__all__ = [
    "CompiledTrackingForm",
    "CompressedTrackingForm",
    "DifferentialForm",
    "DirectedEdge",
    "EdgeCountSketch",
    "EdgeCountStore",
    "LaplaceNoisyStore",
    "SnapshotForm",
    "TrackingForm",
    "circulation",
    "coboundary",
    "face_divergence",
    "integrate_potential",
    "is_exact",
    "quantize_times",
    "static_count",
    "transient_count",
]
