"""Discrete exterior calculus on planar cell complexes (§3.4).

Completes the algebraic-topology background the paper builds on:

- 0-forms (functions on nodes), 1-forms (functions on directed edges);
- the coboundary operator ``d`` taking 0-forms to 1-forms
  (``(df)(u, v) = f(v) - f(u)``);
- the discrete Stokes identity: the integral of any *exact* 1-form
  ``df`` around the boundary of any region vanishes — which is the
  formal reason the paper's crossing counts are consistent: the
  occupancy field is a 0-form on faces and its changes are measured
  exactly by the dual 1-form on the edges crossed.

These operators act on :class:`~repro.forms.DifferentialForm` and plain
node-indexed dictionaries, independent of the counting machinery; they
are used by tests to certify the chain/boundary algebra and exposed for
downstream analytical use (potentials, circulation decomposition).
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Optional, Tuple

from ..errors import GraphStructureError
from ..planar import PlanarGraph
from .snapshot import DifferentialForm

NodeId = Hashable
DirectedEdge = Tuple[NodeId, NodeId]


def coboundary(
    graph: PlanarGraph, potential: Dict[NodeId, float]
) -> DifferentialForm:
    """The exact 1-form ``df`` of a node potential ``f``.

    ``(df)(u, v) = f(v) - f(u)`` for every edge of the graph; missing
    nodes in ``potential`` default to 0.
    """
    form = DifferentialForm()
    for u, v in graph.edges():
        form.set((u, v), potential.get(v, 0.0) - potential.get(u, 0.0))
    return form


def circulation(
    form: DifferentialForm, cycle: Iterable[NodeId]
) -> float:
    """Integral of a 1-form around a closed node walk.

    ``cycle`` lists the nodes of the walk; the closing edge back to the
    first node is implicit.  Exact forms circulate to zero (Stokes).
    """
    nodes = list(cycle)
    if len(nodes) < 2:
        return 0.0
    total = 0.0
    n = len(nodes)
    for index in range(n):
        total += form((nodes[index], nodes[(index + 1) % n]))
    return total


def is_exact(
    graph: PlanarGraph,
    form: DifferentialForm,
    tolerance: float = 1e-9,
) -> bool:
    """True when the 1-form is the coboundary of some node potential.

    Checks path-independence by integrating along a spanning tree to
    build the candidate potential, then verifying every non-tree edge.
    Only defined for connected graphs.
    """
    nodes = list(graph.nodes())
    if not nodes:
        return True
    if not graph.is_connected():
        raise GraphStructureError("is_exact requires a connected graph")
    potential = integrate_potential(graph, form, root=nodes[0])
    for u, v in graph.edges():
        expected = potential[v] - potential[u]
        if abs(form((u, v)) - expected) > tolerance:
            return False
    return True


def integrate_potential(
    graph: PlanarGraph,
    form: DifferentialForm,
    root: Optional[NodeId] = None,
) -> Dict[NodeId, float]:
    """A node potential whose coboundary matches the form on a spanning
    tree (the discrete antiderivative, fixed to 0 at ``root``).

    For exact forms this is *the* potential (up to the constant); for
    inexact forms it is a best-effort tree integral.
    """
    nodes = list(graph.nodes())
    if not nodes:
        return {}
    start = root if root is not None else nodes[0]
    if start not in graph:
        raise GraphStructureError(f"unknown root {start!r}")
    potential: Dict[NodeId, float] = {start: 0.0}
    stack: List[NodeId] = [start]
    while stack:
        node = stack.pop()
        for neighbour in graph.neighbors(node):
            if neighbour in potential:
                continue
            potential[neighbour] = potential[node] + form((node, neighbour))
            stack.append(neighbour)
    return potential


def face_divergence(
    graph: PlanarGraph, form: DifferentialForm
) -> Dict[int, float]:
    """Net outflux of a 1-form through each interior face boundary.

    For the paper's net crossing form this is the per-face occupancy
    *deficit* (entries minus exits, negated); for an exact form every
    value is zero (Stokes again, face by face).
    """
    from ..planar import trace_faces

    faces = trace_faces(graph)
    result: Dict[int, float] = {}
    for face in faces.interior_faces:
        total = 0.0
        for u, v in face.boundary_edges():
            total += form((u, v))
        result[face.id] = total
    return result
