"""Compiled (columnar/CSR) tracking forms (Eq. 8, vectorised).

:class:`CompiledTrackingForm` stores the same information as
:class:`~repro.forms.tracking.TrackingForm` — the ordered multiset of
crossing timestamps per directed edge — but in two CSR-style contiguous
array pairs (sorted ``values`` + per-edge ``offsets``, one pair per
direction) addressed by interned edge ids.  Counting is a single
``np.searchsorted`` over one contiguous segment instead of a dict hit +
``bisect`` per call, and boundary integration compiles each chain once
into a merged, sign-weighted, prefix-summed timestamp series so that
``integrate_until``/``integrate_between`` over an entire boundary are
answered by **one** binary search (Theorems 4.2/4.3 in O(log n) after
the first touch).

Counts are bit-identical to ``TrackingForm``: both stores resolve the
direction through the same canonicalisation and count with
right-continuous ``<= t`` semantics on the same ``float64`` timestamps.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import TYPE_CHECKING, Iterable, Iterator, List, Sequence, Tuple

import numpy as np

from ..errors import QueryError
from ..obs import get_registry
from .snapshot import DirectedEdge, _canonical

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..planar import EdgeInterner


#: Default cap of the compiled-boundary LRU cache.  Generous: the
#: standard figure batteries compile a few hundred distinct chains, but
#: ad-hoc workloads with unbounded distinct rectangles must not grow
#: the cache without limit.
DEFAULT_BOUNDARY_CACHE_SIZE = 4096


class CompiledTrackingForm:
    """CSR-compiled γ⁺/γ⁻ timestamp store with batched integration."""

    def __init__(
        self,
        interner: "EdgeInterner",
        edge_id: np.ndarray,
        direction: np.ndarray,
        t: np.ndarray,
        boundary_cache_size: int = DEFAULT_BOUNDARY_CACHE_SIZE,
    ) -> None:
        """Compile from columnar event arrays (``t`` sorted ascending).

        ``direction`` follows the :class:`~repro.trajectories.EventColumns`
        convention: 0 = along the canonical edge orientation (γ⁺ of the
        canonical direction), 1 = against it.  ``boundary_cache_size``
        caps the compiled-boundary LRU cache (least recently integrated
        chains are evicted first; 0 disables caching entirely).
        """
        self._interner = interner
        # Number of ids frozen at compile time; the shared interner may
        # keep growing afterwards, those edges simply have no events.
        self._n_ids = len(interner)
        n_ids = self._n_ids

        edge_id = np.asarray(edge_id, dtype=np.int64)
        direction = np.asarray(direction)
        t = np.asarray(t, dtype=np.float64)

        self._values: Tuple[np.ndarray, np.ndarray]
        self._offsets: Tuple[np.ndarray, np.ndarray]
        values: List[np.ndarray] = []
        offsets: List[np.ndarray] = []
        for d in (0, 1):
            mask = direction == d
            ids_d = edge_id[mask]
            t_d = t[mask]
            # Stable sort by edge id keeps each edge's segment in the
            # original (global time) order, i.e. sorted ascending.
            order = np.argsort(ids_d, kind="stable")
            counts = np.bincount(ids_d, minlength=n_ids)
            values.append(np.ascontiguousarray(t_d[order]))
            offsets.append(
                np.concatenate(([0], np.cumsum(counts))).astype(np.int64)
            )
        self._values = (values[0], values[1])
        self._offsets = (offsets[0], offsets[1])

        self._init_runtime_state(boundary_cache_size)

    # ------------------------------------------------------------------
    # Incremental maintenance (the streaming ingest path)
    # ------------------------------------------------------------------
    @property
    def generation(self) -> int:
        """Mutation counter: bumped by every :meth:`append_events`.

        Anything keyed on this form's *contents* — planner boundary
        caches, flight-recorder digests, memoised standing counts —
        must incorporate the generation so an in-place append
        invalidates it.  Zero for forms never appended to, so static
        pipelines keep their existing cache keys.
        """
        return self._generation

    def append_events(
        self,
        edge_id: np.ndarray,
        direction: np.ndarray,
        t: np.ndarray,
    ) -> int:
        """Merge new columnar events into the CSR index in place.

        Per direction the incoming ``(edge_id, t)`` rows are merged
        with the existing grouped-by-edge sorted segments by one
        ``np.lexsort`` over the concatenated arrays — O((n+m) log(n+m))
        per call, which is why the streaming store batches appends into
        compaction-sized chunks rather than calling this per event.

        Appending **invalidates every compiled boundary chain**: the
        merged signed prefix-sum series cached in the LRU bake the
        timestamps in, so the cache is cleared and the form's
        :attr:`generation` bumped — cache keys derived from the chain
        bytes alone would otherwise serve stale integrals.  Returns the
        number of events merged.
        """
        edge_id = np.asarray(edge_id, dtype=np.int64)
        direction = np.asarray(direction)
        t = np.asarray(t, dtype=np.float64)
        n_new = len(t)
        if n_new == 0:
            return 0
        # The shared interner may have grown since compile time; widen
        # the frozen id universe to cover the incoming ids.
        n_ids = max(self._n_ids, int(edge_id.max()) + 1)

        values: List[np.ndarray] = []
        offsets: List[np.ndarray] = []
        for d in (0, 1):
            mask = direction == d
            ids_new = edge_id[mask]
            t_new = t[mask]
            old_counts = np.diff(self._offsets[d])
            ids_old = np.repeat(
                np.arange(len(old_counts), dtype=np.int64), old_counts
            )
            ids_all = np.concatenate((ids_old, ids_new))
            t_all = np.concatenate((self._values[d], t_new))
            # Group by edge id, sorted by time inside each segment —
            # exactly the compile-time CSR invariant.
            order = np.lexsort((t_all, ids_all))
            counts = np.bincount(ids_all, minlength=n_ids)
            values.append(np.ascontiguousarray(t_all[order]))
            offsets.append(
                np.concatenate(([0], np.cumsum(counts))).astype(np.int64)
            )
        self._values = (values[0], values[1])
        self._offsets = (offsets[0], offsets[1])
        self._n_ids = n_ids
        # Every cached chain embeds the old timestamp series: drop all.
        self._boundaries.clear()
        self._generation += 1
        return n_new

    def to_columns(self, interner: "EdgeInterner" = None):
        """Reconstruct the stored events as time-sorted
        :class:`~repro.trajectories.EventColumns` (streaming snapshot
        and shard-rebuild interop; the per-event order of simultaneous
        crossings is not preserved)."""
        from ..trajectories import EventColumns

        ids_parts: List[np.ndarray] = []
        dir_parts: List[np.ndarray] = []
        t_parts: List[np.ndarray] = []
        for d in (0, 1):
            counts = np.diff(self._offsets[d])
            n = int(counts.sum())
            ids_parts.append(
                np.repeat(
                    np.arange(len(counts), dtype=np.int32),
                    counts,
                )
            )
            dir_parts.append(np.full(n, d, dtype=np.int8))
            t_parts.append(self._direction_values(d))
        columns = EventColumns(
            interner=interner if interner is not None else self._interner,
            edge_id=np.concatenate(ids_parts),
            direction=np.concatenate(dir_parts),
            t=np.concatenate(t_parts),
        )
        return columns.time_sorted()

    def _init_runtime_state(self, boundary_cache_size: int) -> None:
        """Per-instance mutable state: boundary cache + metric refs.

        Shared by the compiling constructor and the zero-copy
        :meth:`shm_attach` path (which bypasses ``__init__``).
        """
        #: Compiled boundary chains, LRU-ordered (least recently used
        #: first).  Keys are either ``tuple(chain)`` of directed edges
        #: (legacy path) or the ``(wall_ids, signs)`` byte digest of an
        #: id-native chain; values are ``(times, prefix)``.
        self._boundaries: "OrderedDict[object, Tuple[np.ndarray, np.ndarray]]" = (
            OrderedDict()
        )
        self._boundary_cache_size = int(boundary_cache_size)
        #: In-place mutation counter (see :attr:`generation`).
        self._generation = 0

        # Instrument references are bound to the registry current at
        # compile time (swap the global registry before building the
        # pipeline you want measured).
        registry = get_registry()
        self._metric_searchsorted = registry.counter(
            "repro_csr_searchsorted_total",
            help="np.searchsorted calls answered by compiled forms",
        )
        self._metric_boundary_compiles = registry.counter(
            "repro_csr_boundary_cache_total",
            help="Boundary-chain compilations by cache outcome",
            outcome="compile",
        )
        self._metric_boundary_hits = registry.counter(
            "repro_csr_boundary_cache_total",
            help="Boundary-chain compilations by cache outcome",
            outcome="hit",
        )
        self._metric_boundary_evictions = registry.counter(
            "repro_csr_boundary_cache_total",
            help="Boundary-chain compilations by cache outcome",
            outcome="evict",
        )

    # ------------------------------------------------------------------
    # Alternative constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_tracking_form(
        cls, form, interner: "EdgeInterner"
    ) -> "CompiledTrackingForm":
        """Compile an existing :class:`TrackingForm` (tests, migration)."""
        ids: List[int] = []
        dirs: List[int] = []
        ts: List[float] = []
        for key in form.edges():
            eid, _ = interner.intern(*key)
            plus, minus = form.timestamps(key)
            ids.extend([eid] * (len(plus) + len(minus)))
            dirs.extend([0] * len(plus))
            dirs.extend([1] * len(minus))
            ts.extend(plus)
            ts.extend(minus)
        edge_id = np.asarray(ids, dtype=np.int64)
        direction = np.asarray(dirs, dtype=np.int8)
        t = np.asarray(ts, dtype=np.float64)
        # Per-(edge, direction) segments are already sorted; global time
        # order is not required by the CSR build.
        return cls(interner, edge_id, direction, t)

    # ------------------------------------------------------------------
    # Shared-memory interop (the sharded engine's zero-copy transport)
    # ------------------------------------------------------------------
    def shm_pack(self, hint: str = "form"):
        """Copy the compiled CSR arrays into a shared-memory segment.

        Returns ``(handle, descriptor)``.  The descriptor is JSON-safe
        — segment name, per-array ``(dtype, shape, offset)`` and the
        compile-time id universe ``n_ids`` — and another process turns
        it back into a working form with :meth:`shm_attach` without
        re-sorting anything.  The caller owns the segment: close and
        unlink it (:func:`repro.shm.destroy_segment`) once every
        attached consumer is done.
        """
        from .. import shm as shm_mod

        handle, descriptor = shm_mod.pack_arrays(
            {
                "values0": self._values[0],
                "values1": self._values[1],
                "offsets0": self._offsets[0],
                "offsets1": self._offsets[1],
            },
            hint=hint,
        )
        descriptor["n_ids"] = int(self._n_ids)
        return handle, descriptor

    @classmethod
    def shm_attach(
        cls,
        descriptor,
        interner: "EdgeInterner",
        boundary_cache_size: int = DEFAULT_BOUNDARY_CACHE_SIZE,
    ) -> "CompiledTrackingForm":
        """Zero-copy form over a :meth:`shm_pack` descriptor.

        The CSR arrays are numpy views straight into the packing
        process's segment; only the boundary cache and metric bindings
        are local.  ``n_ids`` comes from the descriptor (the packing
        form's frozen id universe), *not* from the current interner
        length — the shared interner may have grown since the pack, and
        those newer edges must keep reading as "no events" exactly as
        they do on the packing side.
        """
        from .. import shm as shm_mod

        handle, views = shm_mod.attach_arrays(descriptor)
        form = cls.__new__(cls)
        form._interner = interner
        form._n_ids = int(descriptor["n_ids"])
        form._values = (views["values0"], views["values1"])
        form._offsets = (views["offsets0"], views["offsets1"])
        form._init_runtime_state(boundary_cache_size)
        # Pin the mapping for the lifetime of the form.
        form._shm_handle = handle
        return form

    # ------------------------------------------------------------------
    # Per-edge count function C(γ(e), t) (§4.7.3)
    # ------------------------------------------------------------------
    def _segment_ids(self, eid: int, d: int) -> np.ndarray:
        """Sorted timestamp segment of one (edge id, direction).

        The single raw-storage access point of the per-edge read path:
        subclasses with a different physical layout (the succinct tier,
        :class:`~repro.forms.succinct.CompressedTrackingForm`) override
        this and :meth:`_direction_slices` instead of every caller.
        """
        lo = self._offsets[d][eid]
        hi = self._offsets[d][eid + 1]
        return self._values[d][lo:hi]

    def _direction_values(self, d: int) -> np.ndarray:
        """The full contiguous timestamp column of one direction."""
        return self._values[d]

    def _direction_slices(
        self, wall_ids: np.ndarray, d: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Gather many edges' segments of one direction at once.

        Returns ``(values, lens)`` — the concatenation of each wall's
        sorted timestamp segment (in ``wall_ids`` order) and the
        per-wall segment lengths.  This is the bulk-storage access
        point of boundary compilation; the succinct tier overrides it
        to decode straight out of compressed blocks.
        """
        offsets = self._offsets[d]
        starts = offsets[wall_ids]
        lens = (offsets[wall_ids + 1] - starts).astype(np.int64)
        total = int(lens.sum())
        if total == 0:
            return _EMPTY, lens
        shift = np.concatenate(([0], np.cumsum(lens)[:-1]))
        take = np.repeat(starts - shift, lens) + np.arange(total)
        return self._values[d][take], lens

    def _segment(self, edge: DirectedEdge, entering: bool) -> np.ndarray:
        key, forward = _canonical(edge)
        eid = self._interner.id_of_canonical(key)
        if eid < 0 or eid >= self._n_ids:
            return _EMPTY
        d = 0 if (forward == entering) else 1
        return self._segment_ids(int(eid), d)

    def count_entering(self, edge: DirectedEdge, t: float) -> int:
        """``C(γ⁺(e), t)``: crossings in the direction of ``edge`` to t."""
        segment = self._segment(edge, entering=True)
        self._metric_searchsorted.inc()
        return int(np.searchsorted(segment, t, side="right"))

    def count_leaving(self, edge: DirectedEdge, t: float) -> int:
        """``C(γ⁻(e), t)``: crossings against the direction of ``edge``."""
        segment = self._segment(edge, entering=False)
        self._metric_searchsorted.inc()
        return int(np.searchsorted(segment, t, side="right"))

    def net_until(self, edge: DirectedEdge, t: float) -> int:
        """``C(γ⁺(e), t) - C(γ⁻(e), t)`` — the Theorem 4.2 integrand."""
        return self.count_entering(edge, t) - self.count_leaving(edge, t)

    def net_between(self, edge: DirectedEdge, t1: float, t2: float) -> int:
        """Net crossings during ``(t1, t2]`` (Theorem 4.3 integrand)."""
        if t2 < t1:
            raise QueryError(f"inverted time interval [{t1}, {t2}]")
        return self.net_until(edge, t2) - self.net_until(edge, t1)

    # ------------------------------------------------------------------
    # Batched region integration
    # ------------------------------------------------------------------
    def _cache_get(self, key) -> Tuple[np.ndarray, np.ndarray]:
        compiled = self._boundaries.get(key)
        if compiled is not None:
            self._boundaries.move_to_end(key)
            self._metric_boundary_hits.inc()
        return compiled

    def _cache_put(self, key, compiled) -> None:
        self._metric_boundary_compiles.inc()
        cap = self._boundary_cache_size
        if cap <= 0:
            return
        self._boundaries[key] = compiled
        while len(self._boundaries) > cap:
            self._boundaries.popitem(last=False)
            self._metric_boundary_evictions.inc()

    @property
    def boundary_cache_size(self) -> int:
        """Configured LRU cap of the compiled-boundary cache."""
        return self._boundary_cache_size

    @property
    def boundary_cache_len(self) -> int:
        """Compiled chains currently cached."""
        return len(self._boundaries)

    @staticmethod
    def _merge_series(
        parts: List[np.ndarray], signs: List[np.ndarray]
    ) -> Tuple[np.ndarray, np.ndarray]:
        if parts:
            times = np.concatenate(parts)
            weights = np.concatenate(signs)
            order = np.argsort(times, kind="stable")
            times = times[order]
            prefix = np.concatenate(([0], np.cumsum(weights[order])))
        else:
            times = _EMPTY
            prefix = np.zeros(1, dtype=np.int64)
        return (times, prefix)

    def compile_boundary(
        self, edges: Sequence[DirectedEdge]
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Merged signed-event series of a boundary chain (cached).

        Concatenates every boundary edge's entering timestamps with
        weight +1 and leaving timestamps with weight -1, sorts by time
        and prefix-sums the weights.  ``prefix[searchsorted(times, t,
        'right')]`` is then exactly ``sum(net_until(e, t) for e in
        edges)`` — the whole chain integrates with one binary search.
        """
        key = tuple(edges)
        compiled = self._cache_get(key)
        if compiled is not None:
            return compiled
        parts: List[np.ndarray] = []
        signs: List[np.ndarray] = []
        for edge in key:
            entering = self._segment(edge, entering=True)
            leaving = self._segment(edge, entering=False)
            if len(entering):
                parts.append(entering)
                signs.append(np.ones(len(entering), dtype=np.int64))
            if len(leaving):
                parts.append(leaving)
                signs.append(-np.ones(len(leaving), dtype=np.int64))
        compiled = self._merge_series(parts, signs)
        self._cache_put(key, compiled)
        return compiled

    def compile_boundary_ids(
        self, wall_ids: np.ndarray, signs: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Id-native :meth:`compile_boundary` (cached on a byte digest).

        ``wall_ids`` are interned canonical-edge ids, ``signs`` is +1
        where the chain traverses the canonical orientation and -1
        against it.  Both are canonicalised to a fixed width (int32
        ids, int8 signs) before hashing, so the byte digest — and
        every downstream consumer of it (boundary LRU, flight digests,
        streaming chain decode) — is identical regardless of the width
        the caller's platform promoted to.  The cache key is then the
        raw bytes of both arrays — no per-edge tuple hashing — so
        repeated integrations of the same chain cost two ``tobytes``
        calls and one dict hit.
        """
        wall_ids = np.ascontiguousarray(wall_ids, dtype=np.int32)
        chain_signs = np.ascontiguousarray(signs, dtype=np.int8)
        key = (wall_ids.tobytes(), chain_signs.tobytes())
        compiled = self._cache_get(key)
        if compiled is not None:
            return compiled
        wall_ids = wall_ids.astype(np.int64)
        chain_signs = chain_signs.astype(np.int64)
        # Edges interned after compile time have no recorded events.
        known = wall_ids < self._n_ids
        if not known.all():
            wall_ids = wall_ids[known]
            chain_signs = chain_signs[known]
        parts: List[np.ndarray] = []
        weights: List[np.ndarray] = []
        for d, polarity in ((0, 1), (1, -1)):
            vals, lens = self._direction_slices(wall_ids, d)
            if not len(vals):
                continue
            parts.append(vals)
            weights.append(np.repeat(polarity * chain_signs, lens))
        compiled = self._merge_series(parts, weights)
        self._cache_put(key, compiled)
        return compiled

    def integrate_until_ids(
        self, wall_ids: np.ndarray, signs: np.ndarray, t: float
    ) -> int:
        """Theorem 4.2 over an id-native chain in one searchsorted."""
        times, prefix = self.compile_boundary_ids(wall_ids, signs)
        self._metric_searchsorted.inc()
        return int(prefix[np.searchsorted(times, t, side="right")])

    def integrate_between_ids(
        self, wall_ids: np.ndarray, signs: np.ndarray, t1: float, t2: float
    ) -> int:
        """Theorem 4.3 over an id-native chain in one searchsorted."""
        if t2 < t1:
            raise QueryError(f"inverted time interval [{t1}, {t2}]")
        times, prefix = self.compile_boundary_ids(wall_ids, signs)
        self._metric_searchsorted.inc()
        lo, hi = np.searchsorted(times, (t1, t2), side="right")
        return int(prefix[hi] - prefix[lo])

    def integrate_until(
        self, edges: Iterable[DirectedEdge], t: float
    ) -> int:
        """Theorem 4.2 over a whole boundary chain in one searchsorted."""
        times, prefix = self.compile_boundary(tuple(edges))
        self._metric_searchsorted.inc()
        return int(prefix[np.searchsorted(times, t, side="right")])

    def integrate_between(
        self, edges: Iterable[DirectedEdge], t1: float, t2: float
    ) -> int:
        """Theorem 4.3 over a whole boundary chain in one searchsorted."""
        if t2 < t1:
            raise QueryError(f"inverted time interval [{t1}, {t2}]")
        times, prefix = self.compile_boundary(tuple(edges))
        self._metric_searchsorted.inc()
        lo, hi = np.searchsorted(times, (t1, t2), side="right")
        return int(prefix[hi] - prefix[lo])

    # ------------------------------------------------------------------
    # Introspection / storage accounting (TrackingForm drop-in surface)
    # ------------------------------------------------------------------
    def _per_edge_counts(self) -> np.ndarray:
        plus = np.diff(self._offsets[0])
        minus = np.diff(self._offsets[1])
        return plus + minus

    def edges(self) -> Iterator[DirectedEdge]:
        """Canonical undirected edges that have recorded crossings."""
        edge = self._interner.edge
        for eid in np.flatnonzero(self._per_edge_counts()):
            yield edge(int(eid))

    def timestamps(
        self, edge: DirectedEdge
    ) -> Tuple[List[float], List[float]]:
        """``(γ⁺, γ⁻)`` timestamp lists for the given directed edge."""
        return (
            self._segment(edge, entering=True).tolist(),
            self._segment(edge, entering=False).tolist(),
        )

    def event_count(self, edge: DirectedEdge) -> int:
        """Total stored timestamps (both directions) for an edge."""
        return len(self._segment(edge, True)) + len(self._segment(edge, False))

    @property
    def total_events(self) -> int:
        # Offsets-based so subclasses without materialised values
        # (the succinct tier) inherit it unchanged.
        return int(self._offsets[0][-1] + self._offsets[1][-1])

    @property
    def edge_count(self) -> int:
        return int(np.count_nonzero(self._per_edge_counts()))

    def storage_profile(self) -> List[int]:
        """Per-edge stored timestamp counts (the Fig. 11e CDF input)."""
        counts = self._per_edge_counts()
        return sorted(int(c) for c in counts[counts > 0])

    def _storage_components(self) -> dict:
        return {
            "values": int(
                self._values[0].nbytes + self._values[1].nbytes
            ),
            "offsets": int(
                self._offsets[0].nbytes + self._offsets[1].nbytes
            ),
        }

    def storage_report(self) -> dict:
        """Bytes-per-component accounting in the unified store schema.

        Every store exposes the same shape — ``{"store", "events",
        "total_bytes", "components": {name: bytes}}`` — so the CLI
        ``--storage`` flag and the dashboard storage panel render any
        deployment without per-class cases.
        """
        components = self._storage_components()
        return {
            "store": type(self).__name__,
            "events": int(self.total_events),
            "total_bytes": int(sum(components.values())),
            "components": components,
        }

    def __repr__(self) -> str:
        return (
            f"CompiledTrackingForm(edges={self.edge_count}, "
            f"events={self.total_events}, "
            f"compiled_boundaries={len(self._boundaries)})"
        )


_EMPTY = np.empty(0, dtype=np.float64)
