"""The count-function interface ``C(γ(e), t)`` (§4.7.3).

Both the exact :class:`repro.forms.TrackingForm` and the learned stores
in :mod:`repro.models` implement :class:`EdgeCountStore`; the query
engine is written against this protocol so that swapping exact counting
for regression inference (§4.8) is a one-argument change.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Protocol, Tuple, runtime_checkable

DirectedEdge = Tuple[Hashable, Hashable]


@runtime_checkable
class EdgeCountStore(Protocol):
    """Anything that can answer cumulative crossing counts per edge."""

    def count_entering(self, edge: DirectedEdge, t: float) -> float:
        """``C(γ⁺(e), t)`` — crossings in the direction of ``edge`` up to t."""
        ...

    def net_until(self, edge: DirectedEdge, t: float) -> float:
        """``C(γ⁺(e), t) - C(γ⁻(e), t)``."""
        ...

    def net_between(self, edge: DirectedEdge, t1: float, t2: float) -> float:
        """Net crossings during ``(t1, t2]``."""
        ...


def static_count(
    store: EdgeCountStore, boundary: Iterable[DirectedEdge], t: float
) -> float:
    """Theorem 4.2 evaluated through any count store."""
    return sum(store.net_until(edge, t) for edge in boundary)


def transient_count(
    store: EdgeCountStore,
    boundary: Iterable[DirectedEdge],
    t1: float,
    t2: float,
) -> float:
    """Theorem 4.3 evaluated through any count store."""
    return sum(store.net_between(edge, t1, t2) for edge in boundary)
