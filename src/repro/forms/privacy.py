"""Optional differential-privacy noise hook.

The paper defers privacy guarantees to Ghosh et al. (INFOCOM 2020,
reference [20]) but explicitly notes that the framework "can be extended
using methods from [20] to include privacy guarantees".  This module
provides the simplest such extension: a wrapper around any
:class:`~repro.forms.countfn.EdgeCountStore` that adds Laplace noise to
every released per-edge count, giving edge-level ε-differential privacy
for the released aggregates (each crossing event affects one edge
counter by 1, so sensitivity is 1 per released count).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..errors import ConfigurationError
from .countfn import DirectedEdge, EdgeCountStore


@dataclass
class LaplaceNoisyStore:
    """Laplace(1/ε) noise on top of an exact or learned count store.

    Noise is drawn deterministically per ``(edge, timestamp)`` pair via
    a counter-based generator so that repeating the same query returns
    the same answer (consistent release, which also prevents averaging
    attacks across retries).
    """

    inner: EdgeCountStore
    epsilon: float
    seed: int = 0

    def __post_init__(self) -> None:
        if self.epsilon <= 0:
            raise ConfigurationError("epsilon must be positive")

    def _noise(self, edge: DirectedEdge, t: float) -> float:
        key = hash((repr(edge), float(t), self.seed)) % (2**32)
        rng = np.random.default_rng(key)
        return float(rng.laplace(0.0, 1.0 / self.epsilon))

    def count_entering(self, edge: DirectedEdge, t: float) -> float:
        return self.inner.count_entering(edge, t) + self._noise(edge, t)

    def net_until(self, edge: DirectedEdge, t: float) -> float:
        return self.count_entering(edge, t) - self.count_entering(
            (edge[1], edge[0]), t
        )

    def net_between(self, edge: DirectedEdge, t1: float, t2: float) -> float:
        return self.net_until(edge, t2) - self.net_until(edge, t1)
