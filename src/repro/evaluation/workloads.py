"""Query workload generation (§5.1.5).

Rectangular spatial regions of a target area (expressed as a fraction
of the total sensing area, matching the paper's x-axes), random aspect
ratio and placement, paired with randomly placed temporal windows.
Rectangles that contain no junction are rejected and resampled, since
they can never resolve to a region of the sensing graph.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Sequence, Set

import numpy as np

from ..errors import WorkloadError
from ..geometry import BBox
from ..mobility import MobilityDomain
from ..planar import NodeId
from ..query import LOWER, STATIC, RangeQuery


@dataclass(frozen=True)
class QueryWorkloadConfig:
    """Parameters for one batch of random range queries."""

    n_queries: int = 50
    #: Query area as a fraction of the domain bounding-box area
    #: (the paper's 1.08% default is ``0.0108``).
    area_fraction: float = 0.0108
    aspect_low: float = 0.5
    aspect_high: float = 2.0
    #: Temporal window length as a fraction of the horizon (the paper
    #: samples 7-day windows out of its multi-year data).
    window_fraction: float = 0.25
    kind: str = STATIC
    bound: str = LOWER
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_queries < 1:
            raise WorkloadError("n_queries must be positive")
        if not 0 < self.area_fraction <= 1:
            raise WorkloadError("area_fraction must be in (0, 1]")
        if not 0 < self.window_fraction <= 1:
            raise WorkloadError("window_fraction must be in (0, 1]")
        if self.aspect_low <= 0 or self.aspect_high < self.aspect_low:
            raise WorkloadError("invalid aspect range")


def generate_queries(
    domain: MobilityDomain,
    horizon: float,
    config: QueryWorkloadConfig = QueryWorkloadConfig(),
) -> List[RangeQuery]:
    """Generate a reproducible batch of range queries.

    Spatial placement keeps the whole rectangle inside the domain
    bounding box; the temporal window is placed uniformly within the
    horizon's central 90% so that both ends see traffic.
    """
    rng = np.random.default_rng(config.seed)
    bounds = domain.bounds
    total_area = bounds.area
    queries: List[RangeQuery] = []
    attempts = 0
    max_attempts = config.n_queries * 50
    while len(queries) < config.n_queries:
        attempts += 1
        if attempts > max_attempts:
            raise WorkloadError(
                f"could not place {config.n_queries} non-empty queries "
                f"at area fraction {config.area_fraction}"
            )
        area = config.area_fraction * total_area
        aspect = float(rng.uniform(config.aspect_low, config.aspect_high))
        width = math.sqrt(area * aspect)
        height = area / width
        if width > bounds.width or height > bounds.height:
            # Degenerate for very large fractions: clamp to the domain.
            width = min(width, bounds.width)
            height = min(area / width, bounds.height)
        cx = float(
            rng.uniform(bounds.min_x + width / 2, bounds.max_x - width / 2)
        )
        cy = float(
            rng.uniform(bounds.min_y + height / 2, bounds.max_y - height / 2)
        )
        box = BBox.from_center((cx, cy), width, height)
        if not domain.junctions_in_bbox(box):
            continue

        window = config.window_fraction * horizon
        t1 = float(rng.uniform(0.05 * horizon, 0.95 * horizon - window))
        queries.append(
            RangeQuery(
                box=box,
                t1=t1,
                t2=t1 + window,
                kind=config.kind,
                bound=config.bound,
            )
        )
    return queries


def queries_to_regions(
    domain: MobilityDomain, queries: Sequence[RangeQuery]
) -> List[Set[NodeId]]:
    """Resolve queries to junction regions (submodular history input)."""
    regions = [domain.junctions_in_bbox(q.box) for q in queries]
    return [region for region in regions if region]
