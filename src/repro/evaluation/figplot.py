"""Dependency-free SVG line charts for benchmark series.

The offline environment has no plotting stack, so this renders the
paper-figure series produced by the benchmarks as standalone SVG line
charts: linear or log axes, multiple named series, legend, ticks.

>>> chart = LineChart(title="Fig 12a", x_label="graph size",
...                   y_label="relative error", x_log=True)
>>> chart.add_series("quadtree", xs, ys)
>>> chart.render("fig12a.svg")
"""

from __future__ import annotations

import html
import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Sequence, Tuple, Union

from ..errors import ConfigurationError

#: Colour cycle (colour-blind-safe-ish).
PALETTE = (
    "#2458a8",
    "#d4593b",
    "#3aa655",
    "#8a5bb8",
    "#c2930f",
    "#3c9ca8",
    "#b8386e",
    "#6b6f75",
)

WIDTH, HEIGHT = 640, 420
MARGIN_LEFT, MARGIN_RIGHT = 70, 20
MARGIN_TOP, MARGIN_BOTTOM = 40, 55


@dataclass
class _Series:
    name: str
    xs: List[float]
    ys: List[float]
    color: str


@dataclass
class LineChart:
    """A multi-series line chart with optional log axes."""

    title: str = ""
    x_label: str = ""
    y_label: str = ""
    x_log: bool = False
    y_log: bool = False
    _series: List[_Series] = field(default_factory=list)

    def add_series(
        self,
        name: str,
        xs: Sequence[float],
        ys: Sequence[float],
        color: Optional[str] = None,
    ) -> None:
        """Add one named series; NaN/None points are dropped."""
        if len(xs) != len(ys):
            raise ConfigurationError("xs and ys must have equal length")
        points = [
            (float(x), float(y))
            for x, y in zip(xs, ys)
            if y is not None and y == y  # drop None and NaN
        ]
        if not points:
            return
        if self.x_log and any(x <= 0 for x, _ in points):
            raise ConfigurationError("x_log requires positive x values")
        if self.y_log and any(y <= 0 for _, y in points):
            points = [(x, y) for x, y in points if y > 0]
            if not points:
                return
        chosen = color or PALETTE[len(self._series) % len(PALETTE)]
        self._series.append(
            _Series(
                name=name,
                xs=[p[0] for p in points],
                ys=[p[1] for p in points],
                color=chosen,
            )
        )

    # ------------------------------------------------------------------
    def render(self, path: Union[str, Path]) -> Path:
        """Write the chart to ``path``; returns the path."""
        if not self._series:
            raise ConfigurationError("cannot render a chart with no series")
        x_lo, x_hi = self._extent(axis="x")
        y_lo, y_hi = self._extent(axis="y")

        lines = [
            '<?xml version="1.0" encoding="UTF-8"?>',
            (
                f'<svg xmlns="http://www.w3.org/2000/svg" '
                f'width="{WIDTH}" height="{HEIGHT}" '
                f'viewBox="0 0 {WIDTH} {HEIGHT}" '
                f'font-family="sans-serif" font-size="12">'
            ),
            f'<rect width="{WIDTH}" height="{HEIGHT}" fill="white"/>',
        ]
        if self.title:
            lines.append(
                f'<text x="{WIDTH / 2}" y="22" text-anchor="middle" '
                f'font-size="15">{html.escape(self.title)}</text>'
            )

        # Axes box.
        plot_w = WIDTH - MARGIN_LEFT - MARGIN_RIGHT
        plot_h = HEIGHT - MARGIN_TOP - MARGIN_BOTTOM
        lines.append(
            f'<rect x="{MARGIN_LEFT}" y="{MARGIN_TOP}" width="{plot_w}" '
            f'height="{plot_h}" fill="none" stroke="#444"/>'
        )

        # Ticks and gridlines.
        for value in self._ticks(x_lo, x_hi, self.x_log):
            px = self._px(value, x_lo, x_hi)
            lines.append(
                f'<line x1="{px:.1f}" y1="{MARGIN_TOP}" x2="{px:.1f}" '
                f'y2="{MARGIN_TOP + plot_h}" stroke="#eee"/>'
            )
            lines.append(
                f'<text x="{px:.1f}" y="{MARGIN_TOP + plot_h + 16}" '
                f'text-anchor="middle">{_fmt(value)}</text>'
            )
        for value in self._ticks(y_lo, y_hi, self.y_log):
            py = self._py(value, y_lo, y_hi)
            lines.append(
                f'<line x1="{MARGIN_LEFT}" y1="{py:.1f}" '
                f'x2="{MARGIN_LEFT + plot_w}" y2="{py:.1f}" stroke="#eee"/>'
            )
            lines.append(
                f'<text x="{MARGIN_LEFT - 6}" y="{py + 4:.1f}" '
                f'text-anchor="end">{_fmt(value)}</text>'
            )

        # Axis labels.
        if self.x_label:
            lines.append(
                f'<text x="{MARGIN_LEFT + plot_w / 2}" '
                f'y="{HEIGHT - 12}" text-anchor="middle">'
                f"{html.escape(self.x_label)}</text>"
            )
        if self.y_label:
            cy = MARGIN_TOP + plot_h / 2
            lines.append(
                f'<text x="16" y="{cy}" text-anchor="middle" '
                f'transform="rotate(-90 16 {cy})">'
                f"{html.escape(self.y_label)}</text>"
            )

        # Series.
        for series in self._series:
            points = " ".join(
                f"{self._px(x, x_lo, x_hi):.1f},"
                f"{self._py(y, y_lo, y_hi):.1f}"
                for x, y in zip(series.xs, series.ys)
            )
            lines.append(
                f'<polyline points="{points}" fill="none" '
                f'stroke="{series.color}" stroke-width="1.8"/>'
            )
            for x, y in zip(series.xs, series.ys):
                lines.append(
                    f'<circle cx="{self._px(x, x_lo, x_hi):.1f}" '
                    f'cy="{self._py(y, y_lo, y_hi):.1f}" r="2.6" '
                    f'fill="{series.color}"/>'
                )

        # Legend.
        legend_y = MARGIN_TOP + 8
        for series in self._series:
            lines.append(
                f'<line x1="{MARGIN_LEFT + plot_w - 130}" '
                f'y1="{legend_y}" x2="{MARGIN_LEFT + plot_w - 108}" '
                f'y2="{legend_y}" stroke="{series.color}" '
                f'stroke-width="2.4"/>'
            )
            lines.append(
                f'<text x="{MARGIN_LEFT + plot_w - 102}" '
                f'y="{legend_y + 4}">{html.escape(series.name)}</text>'
            )
            legend_y += 16

        lines.append("</svg>")
        output = Path(path)
        output.write_text("\n".join(lines))
        return output

    # ------------------------------------------------------------------
    def _extent(self, axis: str) -> Tuple[float, float]:
        values = [
            v
            for series in self._series
            for v in (series.xs if axis == "x" else series.ys)
        ]
        lo, hi = min(values), max(values)
        log = self.x_log if axis == "x" else self.y_log
        if log:
            return (lo, hi if hi > lo else lo * 10)
        if hi == lo:
            pad = abs(lo) * 0.1 or 1.0
            return (lo - pad, hi + pad)
        pad = (hi - lo) * 0.05
        return (lo - pad, hi + pad)

    def _px(self, x: float, lo: float, hi: float) -> float:
        fraction = _fraction(x, lo, hi, self.x_log)
        return MARGIN_LEFT + fraction * (WIDTH - MARGIN_LEFT - MARGIN_RIGHT)

    def _py(self, y: float, lo: float, hi: float) -> float:
        fraction = _fraction(y, lo, hi, self.y_log)
        plot_h = HEIGHT - MARGIN_TOP - MARGIN_BOTTOM
        return MARGIN_TOP + (1.0 - fraction) * plot_h

    def _ticks(self, lo: float, hi: float, log: bool) -> List[float]:
        if log:
            start = math.floor(math.log10(lo))
            stop = math.ceil(math.log10(hi))
            return [
                10.0**e for e in range(start, stop + 1)
                if lo <= 10.0**e <= hi or start == stop
            ] or [lo, hi]
        count = 5
        step = (hi - lo) / count
        return [lo + i * step for i in range(count + 1)]


def _fraction(value: float, lo: float, hi: float, log: bool) -> float:
    if log:
        span = math.log10(hi) - math.log10(lo)
        if span <= 0:
            return 0.5
        return (math.log10(value) - math.log10(lo)) / span
    if hi == lo:
        return 0.5
    return (value - lo) / (hi - lo)


def _fmt(value: float) -> str:
    if value == 0:
        return "0"
    if abs(value) >= 1000 or abs(value) < 0.01:
        return f"{value:.0e}"
    return f"{value:.3g}"
