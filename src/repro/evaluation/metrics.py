"""Evaluation metrics (§5.1.4)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..errors import QueryError


def relative_error(actual: float, estimate: float) -> Optional[float]:
    """``|η - η̂| / η`` (§5.1.4); None when the actual count is zero.

    Queries whose exact count is zero carry no relative-error signal
    and are excluded from aggregates, mirroring the paper's use of real
    counts from the unsampled graph as the denominator.
    """
    if actual == 0:
        return None
    return abs(actual - estimate) / abs(actual)


def ratio(actual: float, estimate: float) -> Optional[float]:
    """``η̂ / η`` — the Fig. 13c/d upper-bound metric (>= 1 expected)."""
    if actual == 0:
        return None
    return estimate / actual


@dataclass
class Summary:
    """Percentile summary of a metric over a query batch.

    The paper reports medians with 25th-75th percentile bands; this
    mirrors that exactly.
    """

    median: float
    p25: float
    p75: float
    mean: float
    count: int

    @classmethod
    def of(cls, values: Sequence[float]) -> "Summary":
        if len(values) == 0:
            return cls(
                median=float("nan"),
                p25=float("nan"),
                p75=float("nan"),
                mean=float("nan"),
                count=0,
            )
        array = np.asarray(values, dtype=float)
        return cls(
            median=float(np.median(array)),
            p25=float(np.percentile(array, 25)),
            p75=float(np.percentile(array, 75)),
            mean=float(array.mean()),
            count=len(array),
        )

    def __str__(self) -> str:
        if self.count == 0:
            return "n/a"
        return f"{self.median:.4f} [{self.p25:.4f}, {self.p75:.4f}]"
