"""Plain-text table rendering for benchmark output.

The benchmarks print the same rows/series the paper's figures plot;
these helpers keep that output aligned and consistent.  Output goes
through :mod:`repro.obs.logging` (INFO level renders bare messages, so
the default output is unchanged; ``--quiet`` silences it).
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

from ..obs import get_logger


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]]
) -> str:
    """Render an aligned monospace table."""
    materialised: List[List[str]] = [[_cell(h) for h in headers]]
    for row in rows:
        materialised.append([_cell(value) for value in row])
    widths = [
        max(len(row[col]) for row in materialised)
        for col in range(len(headers))
    ]
    lines = []
    for index, row in enumerate(materialised):
        lines.append(
            "  ".join(cell.rjust(width) for cell, width in zip(row, widths))
        )
        if index == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        if value != value:  # NaN
            return "n/a"
        if abs(value) >= 1000:
            return f"{value:.0f}"
        return f"{value:.4f}"
    return str(value)


def print_series(title: str, xs: Sequence[object], ys: Sequence[object]) -> None:
    """Print one figure series as x/y rows."""
    log = get_logger("evaluation.tables")
    log.info(f"\n{title}")
    for x, y in zip(xs, ys):
        log.info(f"  {x}: {y}")
