"""Benchmark-trend tracking: BENCH_*.json → BENCH_trend.json + report.

The committed ``benchmarks/BENCH_*.json`` files pin each subsystem's
measured numbers, but individually they are snapshots with no
trajectory: a regression in ``compiled/batch`` queries per second
would only trip the single per-bench smoke gate, never a trend
analysis across PRs.  This module turns them into a tracked curve:

- :func:`flatten_bench` walks one BENCH file and yields *cells* —
  ``(cell_id, value)`` pairs for every numeric leaf, e.g.
  ``query:entries.smoke.cells.compiled/batch.queries_per_s``;
- :func:`classify` tags each cell's regression direction from curated
  metric-name rules — ``higher`` (throughput, speedups, ratios,
  containment), ``lower`` (wall seconds, bytes, overhead, error
  bounds) or ``info`` (scale/config descriptors, never gated);
- :func:`build_trend` appends the current cells as a new snapshot to
  the ``BENCH_trend.json`` history and compares them against the
  previous snapshot, producing a per-cell verdict: ``better``, ``ok``
  (within tolerance), ``regressed``, ``new``, ``removed`` or ``info``;
- :func:`render_markdown` / :func:`render_html` emit the trend report.

The CI gate (``bench_report.py --check`` / ``repro bench-report
--check``) is deterministic: it compares the *committed* BENCH files
against the last *committed* snapshot, so it only fires when a PR
commits regressed numbers.  Accepting an intentional regression means
re-running with ``--write``, which appends a matching snapshot.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Any, Dict, Iterator, List, Mapping, Optional, Tuple

#: Trend file schema version.
TREND_SCHEMA = 1

#: Default relative tolerance before a worse value counts as a
#: regression.  Benchmarks re-measured on different hardware move; the
#: gate's job is catching committed collapses, not 5% noise.
DEFAULT_TOLERANCE = 0.25

#: Snapshots kept in the trend history (oldest dropped first).
MAX_SNAPSHOTS = 200

#: The committed per-subsystem benchmark files, in report order.
BENCH_FILES = (
    "BENCH_ingest.json",
    "BENCH_query.json",
    "BENCH_stream.json",
    "BENCH_storage.json",
    "BENCH_monitor.json",
)

#: Exact metric names (the last path component) that are *lower is
#: better*, checked before the suffix rules: ``latency_ratio`` must
#: not fall through to the higher-is-better ``ratio`` rule.
_LOWER_NAMES = frozenset(
    {
        "latency_ratio",
        "overhead",
        "profile_overhead",
        "mismatches",
        "mean_bound",
        "max_bound",
    }
)

#: Exact names that are *higher is better*.
_HIGHER_NAMES = frozenset(
    {
        "speedup",
        "incremental_speedup",
        "ratio",
        "containment",
        "answered",
        "coverage",
    }
)

#: Exact names that describe scale/configuration — tracked for the
#: record but never gated.
_INFO_NAMES = frozenset(
    {
        "schema",
        "scale",
        "blocks",
        "n_trips",
        "n_queries",
        "n_events",
        "n_observed",
        "events",
        "cores",
        "seed",
        "window",
        "windows",
        "compactions",
        "block_merges",
        "query_samples",
        "tick_bits",
        "shards",
        "workers",
        "budget",
        "profile_hz",
        "ticks_per_run",
        "sample_every",
        "tolerance",
        "sample_s",  # folded into overhead; gate there, not twice
    }
)

#: Suffix rules, applied after the exact-name tables.
_HIGHER_SUFFIXES = ("_per_s", "_rate", "_rate_at_tolerance", "speedup")
_LOWER_SUFFIXES = ("_s", "_bytes", "bytes", "_bound")


def classify(cell_id: str) -> str:
    """Regression direction of one cell: higher | lower | info."""
    name = cell_id.rsplit(".", 1)[-1]
    if name in _INFO_NAMES:
        return "info"
    if name in _LOWER_NAMES:
        return "lower"
    if name in _HIGHER_NAMES:
        return "higher"
    for suffix in _HIGHER_SUFFIXES:
        if name.endswith(suffix):
            return "higher"
    for suffix in _LOWER_SUFFIXES:
        if name.endswith(suffix):
            return "lower"
    return "info"


def _walk(
    prefix: str, node: Any
) -> Iterator[Tuple[str, float]]:
    if isinstance(node, Mapping):
        for key, value in node.items():
            key_txt = str(key)
            path = f"{prefix}.{key_txt}" if prefix else key_txt
            yield from _walk(path, value)
    elif isinstance(node, bool):
        return  # booleans are flags, not measurements
    elif isinstance(node, (int, float)):
        yield prefix, float(node)
    # Lists and strings carry no trend cells.


def flatten_bench(name: str, data: Mapping[str, Any]) -> Dict[str, float]:
    """All numeric leaves of one BENCH file, keyed
    ``<bench>:<dotted.path>`` (``BENCH_query.json`` → ``query:…``)."""
    bench = name
    if bench.startswith("BENCH_"):
        bench = bench[len("BENCH_"):]
    if bench.endswith(".json"):
        bench = bench[: -len(".json")]
    return {
        f"{bench}:{path}": value for path, value in _walk("", data)
    }


def collect_cells(bench_dir: Path) -> Dict[str, float]:
    """Flatten every committed BENCH file under ``bench_dir``."""
    cells: Dict[str, float] = {}
    for filename in BENCH_FILES:
        path = bench_dir / filename
        if not path.exists():
            continue
        with open(path) as handle:
            cells.update(flatten_bench(filename, json.load(handle)))
    return cells


# ----------------------------------------------------------------------
# Trend history + verdicts
# ----------------------------------------------------------------------
def load_trend(path: Path) -> Dict[str, Any]:
    if path.exists():
        with open(path) as handle:
            return json.load(handle)
    return {"schema": TREND_SCHEMA, "snapshots": []}


def compare(
    current: Mapping[str, float],
    previous: Optional[Mapping[str, float]],
    tolerance: float = DEFAULT_TOLERANCE,
) -> Dict[str, Dict[str, Any]]:
    """Per-cell verdicts of ``current`` against ``previous``.

    Every cell gets a verdict: ``info`` (untracked direction), ``new``
    (no previous value), ``better``, ``ok`` (within tolerance) or
    ``regressed``; cells present only in ``previous`` report
    ``removed``.  ``change`` is the signed relative change where
    defined.
    """
    verdicts: Dict[str, Dict[str, Any]] = {}
    previous = previous or {}
    for cell_id in sorted(current):
        value = current[cell_id]
        direction = classify(cell_id)
        entry: Dict[str, Any] = {
            "value": value,
            "direction": direction,
        }
        base = previous.get(cell_id)
        if direction == "info":
            entry["verdict"] = "info"
        elif base is None:
            entry["verdict"] = "new"
        else:
            entry["previous"] = base
            if base != 0:
                change = (value - base) / abs(base)
            else:
                change = 0.0 if value == 0 else float("inf")
            entry["change"] = change
            worse = -change if direction == "higher" else change
            if worse > tolerance:
                entry["verdict"] = "regressed"
            elif worse < 0:
                entry["verdict"] = "better"
            else:
                entry["verdict"] = "ok"
        verdicts[cell_id] = entry
    for cell_id in sorted(previous):
        if cell_id not in current:
            verdicts[cell_id] = {
                "direction": classify(cell_id),
                "verdict": "removed",
                "previous": previous[cell_id],
            }
    return verdicts


def build_trend(
    bench_dir: Path,
    trend_path: Path,
    tolerance: float = DEFAULT_TOLERANCE,
    write: bool = False,
    now: Optional[float] = None,
) -> Dict[str, Any]:
    """Compare the committed BENCH files against the last snapshot.

    Returns ``{"cells", "verdicts", "regressed", "snapshot_count"}``.
    With ``write=True`` the current cells are appended as a new
    snapshot (history capped at :data:`MAX_SNAPSHOTS`) and the trend
    file is rewritten.
    """
    cells = collect_cells(bench_dir)
    trend = load_trend(trend_path)
    snapshots: List[Dict[str, Any]] = trend.get("snapshots", [])
    previous = snapshots[-1]["cells"] if snapshots else None
    verdicts = compare(cells, previous, tolerance=tolerance)
    regressed = sorted(
        cell_id
        for cell_id, entry in verdicts.items()
        if entry["verdict"] == "regressed"
    )
    if write:
        snapshots.append(
            {
                "id": (snapshots[-1]["id"] + 1) if snapshots else 1,
                "recorded": now if now is not None else time.time(),
                "cells": cells,
            }
        )
        trend = {
            "schema": TREND_SCHEMA,
            "tolerance": tolerance,
            "snapshots": snapshots[-MAX_SNAPSHOTS:],
        }
        trend_path.parent.mkdir(parents=True, exist_ok=True)
        with open(trend_path, "w") as handle:
            json.dump(trend, handle, indent=1, sort_keys=True)
            handle.write("\n")
    return {
        "cells": cells,
        "verdicts": verdicts,
        "regressed": regressed,
        "snapshot_count": len(snapshots),
        "tolerance": tolerance,
    }


# ----------------------------------------------------------------------
# Reports
# ----------------------------------------------------------------------
_VERDICT_MARK = {
    "better": "▲",
    "ok": "·",
    "regressed": "▼",
    "new": "+",
    "removed": "-",
    "info": " ",
}


def _format_value(value: Optional[float]) -> str:
    if value is None:
        return "-"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return f"{value:.6g}"


def render_markdown(report: Mapping[str, Any]) -> str:
    """Markdown trend report: summary counts + one table per bench."""
    verdicts: Mapping[str, Mapping[str, Any]] = report["verdicts"]
    counts: Dict[str, int] = {}
    for entry in verdicts.values():
        counts[entry["verdict"]] = counts.get(entry["verdict"], 0) + 1
    lines = [
        "# Benchmark trend",
        "",
        f"Snapshots: {report['snapshot_count']}  ·  tolerance: "
        f"{report['tolerance']:.0%}",
        "",
        "Verdicts: "
        + ", ".join(
            f"{verdict}={counts[verdict]}"
            for verdict in (
                "regressed",
                "better",
                "ok",
                "new",
                "removed",
                "info",
            )
            if verdict in counts
        ),
        "",
    ]
    if report["regressed"]:
        lines.append("## Regressions")
        lines.append("")
        for cell_id in report["regressed"]:
            entry = verdicts[cell_id]
            lines.append(
                f"- `{cell_id}`: {_format_value(entry.get('previous'))} "
                f"→ {_format_value(entry.get('value'))} "
                f"({entry.get('change', 0.0):+.1%})"
            )
        lines.append("")
    by_bench: Dict[str, List[str]] = {}
    for cell_id in verdicts:
        by_bench.setdefault(cell_id.split(":", 1)[0], []).append(cell_id)
    for bench in sorted(by_bench):
        lines.append(f"## {bench}")
        lines.append("")
        lines.append("| | cell | previous | current | change |")
        lines.append("|---|---|---|---|---|")
        for cell_id in sorted(by_bench[bench]):
            entry = verdicts[cell_id]
            change = entry.get("change")
            lines.append(
                f"| {_VERDICT_MARK[entry['verdict']]} "
                f"| `{cell_id.split(':', 1)[1]}` "
                f"| {_format_value(entry.get('previous'))} "
                f"| {_format_value(entry.get('value'))} "
                f"| {f'{change:+.1%}' if change is not None else '-'} |"
            )
        lines.append("")
    return "\n".join(lines)


def render_html(report: Mapping[str, Any]) -> str:
    """Self-contained HTML wrapper around the markdown table data."""
    verdicts: Mapping[str, Mapping[str, Any]] = report["verdicts"]
    color = {
        "regressed": "#c62828",
        "better": "#2e7d32",
        "ok": "#555",
        "new": "#1565c0",
        "removed": "#8e24aa",
        "info": "#999",
    }
    rows = []
    for cell_id in sorted(verdicts):
        entry = verdicts[cell_id]
        change = entry.get("change")
        rows.append(
            "<tr>"
            f"<td style='color:{color[entry['verdict']]}'>"
            f"{entry['verdict']}</td>"
            f"<td><code>{cell_id}</code></td>"
            f"<td>{_format_value(entry.get('previous'))}</td>"
            f"<td>{_format_value(entry.get('value'))}</td>"
            f"<td>{f'{change:+.1%}' if change is not None else '-'}</td>"
            "</tr>"
        )
    return (
        "<!doctype html><html><head><meta charset='utf-8'>"
        "<title>Benchmark trend</title>"
        "<style>body{font:14px sans-serif;margin:2em}"
        "table{border-collapse:collapse}"
        "td,th{border:1px solid #ddd;padding:4px 8px;"
        "text-align:left}</style></head><body>"
        f"<h1>Benchmark trend</h1>"
        f"<p>snapshots={report['snapshot_count']} "
        f"tolerance={report['tolerance']:.0%} "
        f"regressed={len(report['regressed'])}</p>"
        "<table><tr><th>verdict</th><th>cell</th><th>previous</th>"
        "<th>current</th><th>change</th></tr>"
        + "".join(rows)
        + "</table></body></html>"
    )
