"""Shared experiment pipeline for the paper's evaluation (§5).

Every benchmark reproduces a figure by sweeping one axis over the same
cached pipeline: one synthetic city (the Beijing substitute), one trip
workload (the T-Drive/Geolife substitute), one full sensing network
with its exact tracking form (the ground-truth reference η), and a
cache of sampled networks keyed by (selector, budget, connectivity,
seed).

The module-level :func:`get_pipeline` memoises pipelines by config so a
pytest-benchmark session builds each at most once.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..baseline import EulerHistogramBaseline
from ..errors import ConfigurationError, SelectionError
from ..forms import TrackingForm
from ..mobility import (
    MobilityDomain,
    grid_city,
    organic_city,
    radial_city,
    voronoi_strata,
)
from ..obs import Instrumentation, NULL_INSTRUMENTATION, get_registry
from ..planar import NodeId
from ..query import QueryEngine, QueryResult, RangeQuery
from ..sampling import SensorNetwork, full_network, sampled_network, wall_network
from ..selection import (
    KDTreeSelector,
    QuadTreeSelector,
    Selector,
    SensorCandidates,
    StratifiedSelector,
    SubmodularSelector,
    SystematicSelector,
    UniformSelector,
)
from ..trajectories import (
    EventColumns,
    Workload,
    WorkloadConfig,
    generate_workload,
)
from .metrics import Summary, ratio, relative_error
from .workloads import QueryWorkloadConfig, generate_queries, queries_to_regions

#: Selector names accepted by :meth:`Pipeline.network`.
SELECTOR_NAMES = (
    "uniform",
    "systematic",
    "stratified",
    "kdtree",
    "quadtree",
    "submodular",
)

#: Query-area fractions swept by the figure benchmarks (x-axis of
#: Figs. 11b/12b; the fixed-area experiments use the middle value).
#: Calibration note: the paper fixes 1.08% on a ~30k-sensor network;
#: at our ~1k-sensor scale the equivalent query-to-face size ratio is
#: reached around 8.6%, so the standard battery is shifted upward.
STANDARD_AREA_FRACTIONS = (0.0216, 0.0432, 0.0864, 0.1728, 0.3456)

#: The fixed query area used by graph-size sweeps (Figs. 11a/12a).
FIXED_QUERY_AREA = 0.0864

#: Sampled-graph size fractions swept by the benchmarks
#: (x-axis of Figs. 11a/12a/13; doubling steps as in the paper).
STANDARD_SIZE_FRACTIONS = (0.008, 0.016, 0.032, 0.064, 0.128, 0.256, 0.512)


@dataclass(frozen=True)
class PipelineConfig:
    """Scale and seeds for one experiment pipeline."""

    city: str = "organic"
    blocks: int = 1000
    road_seed: int = 3
    n_trips: int = 8000
    horizon_days: float = 2.0
    mean_dwell: float = 7200.0
    trip_seed: int = 5
    #: Historical queries per standard area fraction; the union over
    #: :data:`STANDARD_AREA_FRACTIONS` is the submodular history (the
    #: paper's "100 query regions ... as the historical data").
    history_per_fraction: int = 20
    query_seed: int = 13
    districts: int = 8

    def __post_init__(self) -> None:
        if self.city not in ("organic", "grid", "radial"):
            raise ConfigurationError(f"unknown city kind {self.city!r}")


#: The default scale used by the figure benchmarks.
DEFAULT_CONFIG = PipelineConfig()

#: A small configuration for fast tests.
SMALL_CONFIG = PipelineConfig(
    blocks=80, n_trips=600, history_per_fraction=5
)


class Pipeline:
    """Cached experiment state shared by all benchmarks of a config."""

    def __init__(
        self,
        config: PipelineConfig,
        instrumentation: Optional[Instrumentation] = None,
    ) -> None:
        self.config = config
        self.obs = (
            instrumentation
            if instrumentation is not None
            else NULL_INSTRUMENTATION
        )
        tracer = self.obs.tracer
        rng = np.random.default_rng(config.road_seed)
        with tracer.span("build.city", kind=config.city,
                         blocks=config.blocks):
            if config.city == "organic":
                road = organic_city(blocks=config.blocks, rng=rng)
            elif config.city == "grid":
                side = max(int(round(np.sqrt(config.blocks))) + 1, 3)
                road = grid_city(rows=side, cols=side, rng=rng)
            else:
                spokes = max(int(np.sqrt(config.blocks * 2)), 4)
                rings = max(config.blocks // spokes, 2)
                road = radial_city(rings=rings, spokes=spokes, rng=rng)
        with tracer.span("planarize", nodes=road.node_count,
                         edges=road.edge_count):
            self.domain = MobilityDomain(road)

        with tracer.span("build.workload", trips=config.n_trips):
            self.workload: Workload = generate_workload(
                self.domain,
                WorkloadConfig(
                    n_trips=config.n_trips,
                    horizon_days=config.horizon_days,
                    mean_dwell=config.mean_dwell,
                    seed=config.trip_seed,
                ),
            )
            self.events = self.workload.events(self.domain)
        #: Columnar view of the event stream, materialised once; every
        #: network ingestion is a vectorised filter over these arrays.
        with tracer.span("ingest.columnarize", events=len(self.events)):
            self.event_columns = EventColumns.from_events(
                self.domain, self.events
            )
        self.horizon = self.workload.horizon

        with tracer.span("ingest.build_form", network="full"):
            self.full = full_network(self.domain)
            self.full_form = self.full.build_form(self.event_columns)
        #: The paper's reference: exact counts on the unsampled graph,
        #: flooding every sensor in the region (Fig. 11c behaviour).
        self.exact_engine = QueryEngine(
            self.full,
            self.full_form,
            access_mode="flood",
            instrumentation=self.obs,
        )

        self.candidates = SensorCandidates.from_domain(self.domain)
        self.strata = voronoi_strata(
            self.domain.bounds,
            districts=config.districts,
            rng=np.random.default_rng(config.road_seed + 1),
        )
        history_queries: List[RangeQuery] = []
        for fraction in STANDARD_AREA_FRACTIONS:
            history_queries.extend(
                self.standard_queries(
                    fraction, n=config.history_per_fraction
                )
            )
        self.history_regions: List[Set[NodeId]] = queries_to_regions(
            self.domain, history_queries
        )

        self._networks: Dict[Tuple, SensorNetwork] = {}
        self._forms: Dict[Tuple, TrackingForm] = {}
        self._baselines: Dict[Tuple[int, int], EulerHistogramBaseline] = {}
        self._exact_cache: Dict[RangeQuery, QueryResult] = {}

    # ------------------------------------------------------------------
    # Selectors and networks
    # ------------------------------------------------------------------
    def selector(self, name: str) -> Selector:
        if name == "uniform":
            return UniformSelector()
        if name == "systematic":
            return SystematicSelector()
        if name == "stratified":
            return StratifiedSelector(self.strata)
        if name == "kdtree":
            return KDTreeSelector()
        if name == "quadtree":
            return QuadTreeSelector()
        if name == "submodular":
            return SubmodularSelector(self.domain, self.history_regions)
        raise SelectionError(f"unknown selector {name!r}")

    def budget_for_fraction(self, fraction: float) -> int:
        """Sensor budget for a sampled-graph size fraction (x-axes)."""
        return max(int(round(fraction * self.domain.block_count)), 2)

    def network(
        self,
        selector_name: str,
        m: int,
        seed: int = 0,
        connectivity: str = "triangulation",
        k: int = 5,
    ) -> SensorNetwork:
        """Build (or fetch) a sampled network configuration."""
        key = (selector_name, m, seed, connectivity, k)
        network = self._networks.get(key)
        if network is not None:
            return network
        with self.obs.tracer.span(
            "deploy", selector=selector_name, budget=m
        ):
            network = self._build_network(
                selector_name, m, seed, connectivity, k
            )
        self._networks[key] = network
        return network

    def _build_network(
        self, selector_name: str, m: int, seed: int, connectivity: str, k: int
    ) -> SensorNetwork:
        rng = np.random.default_rng(seed)
        if selector_name == "submodular":
            # Fair budget: a sampled graph's m communication sensors
            # monitor every wall its routed edges cross; give the
            # submodular plan the same number of monitored edges as a
            # reference sampled graph of equal sensor budget.
            reference = self.network("quadtree", m, seed=0, connectivity=connectivity, k=k)
            edge_budget = max(len(reference.walls), m)
            plan = SubmodularSelector(self.domain, self.history_regions).plan(
                edge_budget, budget_unit="edges"
            )
            network = wall_network(
                self.domain,
                plan.walls,
                plan.sensors,
                name=f"submodular-m{m}",
            )
        else:
            chosen = self.selector(selector_name).select(
                self.candidates, min(m, len(self.candidates)), rng
            )
            network = sampled_network(
                self.domain,
                chosen,
                connectivity=connectivity,
                k=k,
                name=f"{selector_name}-m{m}-{connectivity}",
            )
        return network

    @staticmethod
    def form_key(network: SensorNetwork) -> Tuple:
        """Cache key for a network's ingested form.

        Keyed on the construction tuple (name, sensors, walls) rather
        than ``id(network)``: CPython reuses object ids after garbage
        collection, so an id-keyed cache can alias two distinct
        networks that happen to land on the same address.  The walls
        frozenset hash is cached by CPython, so repeated lookups stay
        cheap.
        """
        return (network.name, network.sensors, network.walls)

    def form(self, network: SensorNetwork):
        """Ingest the event stream into a network's tracking form.

        Served from the shared form cache (also used by the batched
        evaluation path) and built through the columnar fast path.
        """
        key = self.form_key(network)
        form = self._forms.get(key)
        if form is None:
            get_registry().counter(
                "repro_form_cache_total",
                help="Pipeline form-cache lookups by outcome",
                outcome="miss",
            ).inc()
            with self.obs.tracer.span(
                "ingest.build_form", network=network.name
            ):
                form = network.build_form(self.event_columns)
            self._forms[key] = form
        else:
            get_registry().counter(
                "repro_form_cache_total",
                help="Pipeline form-cache lookups by outcome",
                outcome="hit",
            ).inc()
        return form

    def cache_form(self, network: SensorNetwork, form) -> None:
        """Pre-seed the form cache (ad-hoc networks in benchmarks)."""
        self._forms[self.form_key(network)] = form

    def engine(
        self,
        network: SensorNetwork,
        store=None,
        access_mode: str = "perimeter",
        planner: str = "auto",
    ) -> QueryEngine:
        return QueryEngine(
            network,
            store if store is not None else self.form(network),
            access_mode=access_mode,
            planner=planner,
            instrumentation=self.obs,
        )

    def baseline(self, m: int, seed: int = 0) -> EulerHistogramBaseline:
        """Ingested Euler-histogram baseline with ``m`` sampled faces."""
        key = (m, seed)
        instance = self._baselines.get(key)
        if instance is None:
            instance = EulerHistogramBaseline(
                self.domain,
                m=min(m, self.domain.junction_count),
                rng=np.random.default_rng(seed),
            )
            instance.ingest(self.events)
            self._baselines[key] = instance
        return instance

    # ------------------------------------------------------------------
    # Query evaluation
    # ------------------------------------------------------------------
    def queries(self, config: QueryWorkloadConfig) -> List[RangeQuery]:
        return generate_queries(self.domain, self.horizon, config)

    def standard_queries(
        self,
        area_fraction: float,
        kind: str = "static",
        bound: str = "lower",
        n: Optional[int] = None,
    ) -> List[RangeQuery]:
        """The canonical query battery for one area fraction.

        Deterministic per (pipeline seed, area fraction) and independent
        of ``kind``/``bound``, so the same rectangles serve the static,
        transient, lower- and upper-bound experiments, and the first
        ``history_per_fraction`` queries of every standard fraction are
        exactly the submodular selector's historical workload.
        """
        count = n if n is not None else self.config.history_per_fraction
        return self.queries(
            QueryWorkloadConfig(
                n_queries=count,
                area_fraction=area_fraction,
                kind=kind,
                bound=bound,
                seed=self.config.query_seed + int(round(area_fraction * 1e6)),
            )
        )

    def baseline_for_fraction(self, fraction: float, seed: int = 0):
        """Euler baseline sized by the same graph-size fraction."""
        m = max(int(round(fraction * self.domain.junction_count)), 1)
        return self.baseline(m, seed=seed)

    def exact(self, query: RangeQuery) -> QueryResult:
        """Reference result on the unsampled graph (cached)."""
        reference = query.with_bound("lower")
        cached = self._exact_cache.get(reference)
        if cached is None:
            cached = self.exact_engine.execute(reference)
            self._exact_cache[reference] = cached
        return cached


@dataclass
class EvalReport:
    """Aggregated comparison of a configuration against the reference."""

    label: str
    error: Summary
    ratio: Summary
    miss_rate: float
    nodes_accessed: Summary
    edges_accessed: Summary
    elapsed: Summary
    exact_elapsed: Summary
    exact_nodes: Summary
    n_queries: int

    @property
    def speedup(self) -> float:
        if self.elapsed.mean and self.elapsed.count:
            return self.exact_elapsed.mean / self.elapsed.mean
        return float("nan")

    @property
    def node_access_reduction(self) -> float:
        if self.exact_nodes.mean and self.nodes_accessed.count:
            return 1.0 - self.nodes_accessed.mean / self.exact_nodes.mean
        return float("nan")


def evaluate(
    pipeline: Pipeline,
    execute: Callable[[RangeQuery], QueryResult],
    queries: Sequence[RangeQuery],
    label: str = "",
    execute_batch: Optional[
        Callable[[Sequence[RangeQuery]], Sequence[QueryResult]]
    ] = None,
    recorder=None,
    sample_every: int = 10,
) -> EvalReport:
    """Run a query batch and compare against the unsampled reference.

    ``execute`` is any callable mapping a query to a
    :class:`QueryResult` (a :class:`QueryEngine`'s ``execute`` or a
    baseline's).  When ``execute`` is a bound ``QueryEngine.execute``
    (or ``execute_batch`` is passed explicitly) the whole battery runs
    through the engine's batched path, which amortises region lookup
    and boundary construction across the battery.  Relative errors are
    computed over non-missed queries with a non-zero reference count,
    as in §5.1.4.

    With a :class:`~repro.obs.TimeSeriesRecorder` passed as
    ``recorder`` the battery is sampled every ``sample_every`` queries
    (plus once at the end), which forces the sequential path — sampling
    mid-batch would otherwise see nothing until the batch returns.
    """
    if recorder is not None:
        results = []
        for i, query in enumerate(queries):
            results.append(execute(query))
            if (i + 1) % max(sample_every, 1) == 0:
                recorder.sample()
        recorder.sample()
    else:
        if execute_batch is None:
            owner = getattr(execute, "__self__", None)
            if (
                isinstance(owner, QueryEngine)
                and getattr(execute, "__func__", None)
                is QueryEngine.execute
            ):
                execute_batch = owner.execute_batch
        if execute_batch is not None:
            results = list(execute_batch(queries))
        else:
            results = [execute(query) for query in queries]

    errors: List[float] = []
    ratios: List[float] = []
    nodes: List[float] = []
    edges: List[float] = []
    elapsed: List[float] = []
    exact_elapsed: List[float] = []
    exact_nodes: List[float] = []
    misses = 0
    for query, result in zip(queries, results):
        reference = pipeline.exact(query)
        exact_elapsed.append(reference.elapsed)
        exact_nodes.append(reference.nodes_accessed)
        if result.missed:
            misses += 1
            continue
        nodes.append(result.nodes_accessed)
        edges.append(result.edges_accessed)
        elapsed.append(result.elapsed)
        err = relative_error(reference.value, result.value)
        if err is not None:
            errors.append(err)
        rat = ratio(reference.value, result.value)
        if rat is not None:
            ratios.append(rat)
    return EvalReport(
        label=label,
        error=Summary.of(errors),
        ratio=Summary.of(ratios),
        miss_rate=misses / max(len(queries), 1),
        nodes_accessed=Summary.of(nodes),
        edges_accessed=Summary.of(edges),
        elapsed=Summary.of(elapsed),
        exact_elapsed=Summary.of(exact_elapsed),
        exact_nodes=Summary.of(exact_nodes),
        n_queries=len(queries),
    )


# ----------------------------------------------------------------------
# Module-level memoisation
# ----------------------------------------------------------------------
_PIPELINES: Dict[PipelineConfig, Pipeline] = {}


def get_pipeline(config: PipelineConfig = DEFAULT_CONFIG) -> Pipeline:
    """Build (once) and return the pipeline for a config."""
    pipeline = _PIPELINES.get(config)
    if pipeline is None:
        pipeline = Pipeline(config)
        _PIPELINES[config] = pipeline
    return pipeline
