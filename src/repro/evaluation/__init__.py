"""Evaluation harness (system S14): metrics, query workloads, the
shared experiment pipeline and table rendering."""

from .harness import (
    DEFAULT_CONFIG,
    SELECTOR_NAMES,
    SMALL_CONFIG,
    EvalReport,
    Pipeline,
    PipelineConfig,
    evaluate,
    get_pipeline,
)
from .figplot import LineChart
from .metrics import Summary, ratio, relative_error
from .tables import format_table, print_series
from .workloads import QueryWorkloadConfig, generate_queries, queries_to_regions

__all__ = [
    "DEFAULT_CONFIG",
    "EvalReport",
    "LineChart",
    "Pipeline",
    "PipelineConfig",
    "QueryWorkloadConfig",
    "SELECTOR_NAMES",
    "SMALL_CONFIG",
    "Summary",
    "evaluate",
    "format_table",
    "generate_queries",
    "get_pipeline",
    "print_series",
    "queries_to_regions",
    "ratio",
    "relative_error",
]
