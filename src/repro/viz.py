"""SVG rendering of domains, sensing networks and query regions.

Dependency-free visual output (the offline environment has no
matplotlib): renders the road network, the monitored walls, the
communication sensors and optional query rectangles into a standalone
SVG file — the repository's counterpart of the paper's Figs. 2/4/6.

>>> from repro.viz import render_network_svg
>>> render_network_svg(network, "deployment.svg",
...                    query_boxes=[box], title="QuadTree 25.6%")
"""

from __future__ import annotations

import html
from pathlib import Path
from typing import Iterable, List, Optional, Sequence, Union

from .geometry import BBox
from .mobility import EXT, MobilityDomain
from .sampling import SensorNetwork

_STYLE = {
    "road": 'stroke="#b9c0c7" stroke-width="0.35"',
    "wall": 'stroke="#d4593b" stroke-width="0.9"',
    "sensor": 'fill="#2458a8" stroke="white" stroke-width="0.3"',
    "query": (
        'fill="#3aa655" fill-opacity="0.15" stroke="#3aa655" '
        'stroke-width="0.8" stroke-dasharray="2.5,1.5"'
    ),
    "junction": 'fill="#7a828a"',
}


def _svg_header(box: BBox, margin: float, title: str) -> List[str]:
    width = box.width + 2 * margin
    height = box.height + 2 * margin
    lines = [
        '<?xml version="1.0" encoding="UTF-8"?>',
        (
            f'<svg xmlns="http://www.w3.org/2000/svg" '
            f'viewBox="{box.min_x - margin} {-(box.max_y + margin)} '
            f'{width} {height}" width="800" height="800">'
        ),
        # Flip the y axis so the drawing matches the coordinate system.
        '<g transform="scale(1,-1)">',
        (
            f'<rect x="{box.min_x - margin}" y="{box.min_y - margin}" '
            f'width="{width}" height="{height}" fill="#fbfbf9"/>'
        ),
    ]
    if title:
        lines.append(
            f'<title>{html.escape(title)}</title>'
        )
    return lines


def render_domain_svg(
    domain: MobilityDomain,
    path: Union[str, Path],
    query_boxes: Sequence[BBox] = (),
    show_junctions: bool = True,
    title: str = "",
) -> Path:
    """Render the road network (and optional query rectangles)."""
    box = domain.bounds
    margin = 0.03 * max(box.width, box.height)
    lines = _svg_header(box, margin, title)
    lines.extend(_road_elements(domain))
    if show_junctions:
        radius = 0.12 * _scale(domain)
        for junction in domain.junctions:
            x, y = domain.position(junction)
            lines.append(
                f'<circle cx="{x:.3f}" cy="{y:.3f}" r="{radius:.3f}" '
                f'{_STYLE["junction"]}/>'
            )
    lines.extend(_query_elements(query_boxes))
    lines.extend(["</g>", "</svg>"])
    output = Path(path)
    output.write_text("\n".join(lines))
    return output


def render_network_svg(
    network: SensorNetwork,
    path: Union[str, Path],
    query_boxes: Sequence[BBox] = (),
    title: str = "",
) -> Path:
    """Render a deployment: roads, monitored walls, sensors, queries."""
    domain = network.domain
    box = domain.bounds
    margin = 0.03 * max(box.width, box.height)
    lines = _svg_header(box, margin, title)
    lines.extend(_road_elements(domain))

    for u, v in network.walls:
        if u == EXT or v == EXT:
            continue  # geofence edges have no drawable geometry
        x1, y1 = domain.position(u)
        x2, y2 = domain.position(v)
        lines.append(
            f'<line x1="{x1:.3f}" y1="{y1:.3f}" x2="{x2:.3f}" '
            f'y2="{y2:.3f}" {_STYLE["wall"]}/>'
        )

    radius = 0.35 * _scale(domain)
    for sensor in network.sensors:
        x, y = domain.dual.position(sensor)
        lines.append(
            f'<circle cx="{x:.3f}" cy="{y:.3f}" r="{radius:.3f}" '
            f'{_STYLE["sensor"]}/>'
        )
    lines.extend(_query_elements(query_boxes))
    lines.extend(["</g>", "</svg>"])
    output = Path(path)
    output.write_text("\n".join(lines))
    return output


def _road_elements(domain: MobilityDomain) -> List[str]:
    elements = []
    for u, v in domain.graph.edges():
        x1, y1 = domain.position(u)
        x2, y2 = domain.position(v)
        elements.append(
            f'<line x1="{x1:.3f}" y1="{y1:.3f}" x2="{x2:.3f}" '
            f'y2="{y2:.3f}" {_STYLE["road"]}/>'
        )
    return elements


def _query_elements(query_boxes: Iterable[BBox]) -> List[str]:
    elements = []
    for box in query_boxes:
        elements.append(
            f'<rect x="{box.min_x:.3f}" y="{box.min_y:.3f}" '
            f'width="{box.width:.3f}" height="{box.height:.3f}" '
            f'{_STYLE["query"]}/>'
        )
    return elements


def _scale(domain: MobilityDomain) -> float:
    """A drawing unit ~ the average road length."""
    graph = domain.graph
    if graph.edge_count == 0:
        return 1.0
    return graph.total_edge_length() / graph.edge_count
