"""In-network approximate spatiotemporal range queries on moving objects.

Reproduction of Yang & Ghosh, *In-Network Approximate and Efficient
Spatiotemporal Range Queries on Moving Objects*, EDBT 2024.

The public API lives in :mod:`repro.core` (the framework pipeline); the
subpackages expose every substrate individually:

- :mod:`repro.geometry` - planar computational geometry
- :mod:`repro.planar` - planar graphs, faces, chains, duals
- :mod:`repro.forms` - discrete differential 1-forms and tracking forms
- :mod:`repro.mobility` - road networks, strata, map matching
- :mod:`repro.trajectories` - moving-object workloads and crossing events
- :mod:`repro.selection` - sensor sampling and submodular placement
- :mod:`repro.sampling` - sampled-graph (G~) construction
- :mod:`repro.query` - query regions and the query engine
- :mod:`repro.models` - learned (regression) count models
- :mod:`repro.network` - in-network communication simulator
- :mod:`repro.baseline` - Euler-histogram + face-sampling baseline
- :mod:`repro.evaluation` - metrics, workloads and experiment harness
"""

__version__ = "1.0.0"

from .core import FrameworkConfig, InNetworkFramework
from .errors import (
    ConfigurationError,
    GeometryError,
    GraphStructureError,
    ModelError,
    PlanarityError,
    QueryError,
    QueryMiss,
    ReproError,
    SelectionError,
    WorkloadError,
)

__all__ = [
    "ConfigurationError",
    "FrameworkConfig",
    "InNetworkFramework",
    "GeometryError",
    "GraphStructureError",
    "ModelError",
    "PlanarityError",
    "QueryError",
    "QueryMiss",
    "ReproError",
    "SelectionError",
    "WorkloadError",
    "__version__",
]
