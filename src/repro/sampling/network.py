"""The operational sensing network: full (``G``) or sampled (``G~``).

A :class:`SensorNetwork` is defined by its *walls* — the sensing edges
that are actively monitored.  In the full network every sensing edge is
a wall; in a sampled network the walls are the sensing edges crossed by
the shortest dual-graph paths that materialise the logical sampled
edges (§4.5), or the boundaries of submodular-selected regions (§4.4).

The faces of ``G~`` are recovered combinatorially: they are the
connected components of the mobility graph (plus the external junction
EXT) after removing wall edges — two junctions are in the same sensing
region exactly when an object can travel between them without being
detected.  This is the vertex-edge duality of §4.7.1 made operational,
and it is robust: no geometric tracing of the routed graph is needed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from typing import Union

from ..errors import QueryError, SelectionError
from ..forms import CompiledTrackingForm, TrackingForm
from ..mobility import EXT, MobilityDomain
from ..obs import get_registry
from ..planar import NodeId, canonical_edge
from ..trajectories import CrossingEvent, EventColumns
from .connectivity import knn_edges, triangulation_edges

Wall = Tuple[NodeId, NodeId]
DirectedEdge = Tuple[NodeId, NodeId]


@dataclass
class SensorNetwork:
    """A wall-defined sensing configuration over a mobility domain."""

    domain: MobilityDomain
    sensors: Tuple[int, ...]
    walls: FrozenSet[Wall]
    name: str = "network"
    #: wall -> communication-sensor blocks responsible for it
    wall_owners: Dict[Wall, FrozenSet[int]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self._compute_regions()
        self._compiled_index: Optional["CompiledNetworkIndex"] = None

    # ------------------------------------------------------------------
    # Region structure (faces of G~)
    # ------------------------------------------------------------------
    def _compute_regions(self) -> None:
        domain = self.domain
        region_of: Dict[NodeId, int] = {}
        regions: Dict[int, Set[NodeId]] = {}
        nodes = [EXT, *domain.junctions]
        next_region = 0
        for start in nodes:
            if start in region_of:
                continue
            members = {start}
            stack = [start]
            while stack:
                node = stack.pop()
                for neighbour in domain.sensing_neighbors(node):
                    if neighbour in members:
                        continue
                    if canonical_edge(node, neighbour) in self.walls:
                        continue
                    members.add(neighbour)
                    stack.append(neighbour)
            for member in members:
                region_of[member] = next_region
            regions[next_region] = members
            next_region += 1

        self._region_of = region_of
        self._regions = regions
        self.ext_region: int = region_of[EXT]
        self._regions[self.ext_region] = regions[self.ext_region] - {EXT}

        # Inward-directed boundary walls per region.
        region_walls: Dict[int, List[DirectedEdge]] = {r: [] for r in regions}
        for u, v in self.walls:
            ru = region_of[u]
            rv = region_of[v]
            if ru == rv:
                continue  # dangling wall interior to a region
            region_walls[rv].append((u, v))
            region_walls[ru].append((v, u))
        self._region_walls = region_walls

    @property
    def region_count(self) -> int:
        """Number of proper sensing regions (excluding the EXT region)."""
        return len(self._regions) - 1

    @property
    def region_ids(self) -> List[int]:
        return [r for r in self._regions if r != self.ext_region]

    def region_of(self, junction: NodeId) -> int:
        try:
            return self._region_of[junction]
        except KeyError:
            raise QueryError(f"unknown junction {junction!r}") from None

    def region_junctions(self, region: int) -> Set[NodeId]:
        try:
            return set(self._regions[region])
        except KeyError:
            raise QueryError(f"unknown region {region!r}") from None

    def region_boundary(self, regions: Iterable[int]) -> List[DirectedEdge]:
        """Inward-directed boundary chain of a union of regions.

        Walls between two selected regions cancel (they are interior),
        mirroring the chain-cancellation of the boundary operator.
        """
        selected = set(regions)
        if self.ext_region in selected:
            raise QueryError("query regions cannot include the EXT region")
        chain: List[DirectedEdge] = []
        for region in selected:
            for u, v in self._region_walls.get(region, ()):
                if self._region_of[u] not in selected:
                    chain.append((u, v))
        return chain

    # ------------------------------------------------------------------
    # Region approximation for junction-set queries (§4.6, Fig. 7)
    # ------------------------------------------------------------------
    def lower_regions(self, junctions: Set[NodeId]) -> List[int]:
        """Maximal union of regions fully inside the junction set (R2).

        Returned sorted by region id, so the Python and compiled
        planners agree on the region tuple of a query result.
        """
        candidates = {
            self._region_of[j] for j in junctions if j in self._region_of
        }
        candidates.discard(self.ext_region)
        return sorted(
            region
            for region in candidates
            if self._regions[region] <= junctions
        )

    def upper_regions(self, junctions: Set[NodeId]) -> Tuple[List[int], bool]:
        """Minimal union of regions covering the junction set (R1).

        Returns ``(regions, covered)``; ``covered`` is False when part
        of the query region falls in the EXT region (the un-enclosed
        remainder of the domain), in which case no bounded superset
        exists and the query counts as a miss for upper-bound mode.
        """
        candidates = {
            self._region_of[j] for j in junctions if j in self._region_of
        }
        covered = self.ext_region not in candidates
        candidates.discard(self.ext_region)
        return (sorted(candidates), covered)

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------
    def build_form(
        self,
        events: Union[EventColumns, Iterable[CrossingEvent]],
        compress: bool = False,
        tick_bits: int = 0,
    ):
        """Tracking form of all crossings this network's walls observe.

        Columnar input (:class:`~repro.trajectories.EventColumns`) takes
        the vectorised path: one boolean wall mask over the interned
        edge-id column + fancy indexing, compiled straight into a
        :class:`~repro.forms.CompiledTrackingForm` (CSR timestamp
        arrays) — or, with ``compress=True``, the succinct
        :class:`~repro.forms.CompressedTrackingForm` over ``tick_bits``
        dyadic ticks.  Row-wise event iterables keep the legacy
        per-event loop and return a plain
        :class:`~repro.forms.TrackingForm`; all stores answer the count
        interface identically.
        """
        if isinstance(events, EventColumns):
            return self.build_form_columnar(
                events, compress=compress, tick_bits=tick_bits
            )
        return self.build_form_loop(events)

    def build_form_columnar(
        self,
        columns: EventColumns,
        compress: bool = False,
        tick_bits: int = 0,
    ) -> CompiledTrackingForm:
        """Vectorised ingestion of a columnar event stream."""
        observed = columns.filter_edges(self._wall_lookup())
        registry = get_registry()
        registry.counter(
            "repro_ingest_builds_total",
            help="Tracking-form builds, by ingestion path",
            path="columnar",
        ).inc()
        registry.counter(
            "repro_ingest_events_observed_total",
            help="Events landing on a monitored wall during form builds",
        ).inc(len(observed.t))
        if compress:
            from ..forms import CompressedTrackingForm

            return CompressedTrackingForm(
                columns.interner,
                observed.edge_id,
                observed.direction,
                observed.t,
                tick_bits=tick_bits,
            )
        return CompiledTrackingForm(
            columns.interner,
            observed.edge_id,
            observed.direction,
            observed.t,
        )

    def build_form_loop(
        self, events: Iterable[CrossingEvent]
    ) -> TrackingForm:
        """Reference per-event ingestion loop (kept for benchmarking the
        columnar path against, and for ad-hoc row-wise streams)."""
        form = TrackingForm()
        walls = self.walls
        observed = 0
        for event in events:
            if canonical_edge(event.tail, event.head) in walls:
                form.record(event.tail, event.head, event.t)
                observed += 1
        registry = get_registry()
        registry.counter(
            "repro_ingest_builds_total",
            help="Tracking-form builds, by ingestion path",
            path="loop",
        ).inc()
        registry.counter(
            "repro_ingest_events_observed_total",
            help="Events landing on a monitored wall during form builds",
        ).inc(observed)
        return form

    def _wall_lookup(self) -> np.ndarray:
        """Boolean mask over interned edge ids flagging this network's
        walls (cached; rebuilt if the domain's table grew)."""
        interner = self.domain.edge_interner
        lookup = getattr(self, "_wall_lookup_cache", None)
        if lookup is None or len(lookup) < len(interner):
            lookup = np.zeros(len(interner), dtype=bool)
            ids = [interner.id_of_canonical(w) for w in self.walls]
            ids = np.asarray(
                [i for i in ids if i >= 0], dtype=np.int64
            )
            if len(ids):
                lookup[ids] = True
            self._wall_lookup_cache = lookup
        return lookup

    def observed_events(
        self, events: Union[EventColumns, Iterable[CrossingEvent]]
    ) -> List[CrossingEvent]:
        """The subset of an event stream that hits a wall."""
        if isinstance(events, EventColumns):
            return events.filter_edges(self._wall_lookup()).to_events()
        walls = self.walls
        return [
            e for e in events if canonical_edge(e.tail, e.head) in walls
        ]

    def observed_columns(self, columns: EventColumns) -> EventColumns:
        """Columnar subset of a columnar stream that hits a wall."""
        return columns.filter_edges(self._wall_lookup())

    # ------------------------------------------------------------------
    # Accounting (communication-cost proxies, §4.9)
    # ------------------------------------------------------------------
    def wall_sensors(self, u: NodeId, v: NodeId) -> Set[int]:
        """Communication sensors responsible for one wall.

        Sampled networks map the wall to the sensors owning the routed
        edge it belongs to; wall-only configurations fall back to the
        blocks incident to the wall.
        """
        wall = canonical_edge(u, v)
        owners = self.wall_owners.get(wall)
        if owners:
            return set(owners)
        return self._incident_blocks(wall)

    def sensors_for_boundary(
        self, boundary: Sequence[DirectedEdge]
    ) -> Set[int]:
        """Communication sensors that must be contacted for a boundary."""
        contacted: Set[int] = set()
        for u, v in boundary:
            contacted.update(self.wall_sensors(u, v))
        return contacted

    def _incident_blocks(self, wall: Wall) -> Set[int]:
        domain = self.domain
        u, v = wall
        if u == EXT or v == EXT:
            junction = v if u == EXT else u
            blocks: Set[int] = set()
            for neighbour in domain.graph.neighbors(junction):
                left, right = domain.dual.faces_of_primal_edge(
                    junction, neighbour
                )
                blocks.update(
                    b for b in (left, right) if b != domain.dual.outer_node
                )
            return blocks
        left, right = domain.dual.faces_of_primal_edge(u, v)
        return {b for b in (left, right) if b != domain.dual.outer_node}

    # ------------------------------------------------------------------
    # Compiled (CSR) query indexes
    # ------------------------------------------------------------------
    def compiled_index(self) -> "CompiledNetworkIndex":
        """Int32/CSR indexes of this network's region structure (cached).

        Built once on first use and shared by every
        :class:`~repro.query.CompiledQueryPlanner` attached to this
        network.
        """
        index = self._compiled_index
        if index is None:
            index = CompiledNetworkIndex.build(self)
            self._compiled_index = index
        return index

    @property
    def size_fraction(self) -> float:
        """|sensors| / |blocks| — the x-axis of Figs. 11a/12a."""
        return len(self.sensors) / max(self.domain.block_count, 1)

    @property
    def wall_fraction(self) -> float:
        """|walls| / |sensing edges| — edge-level size of the network."""
        return len(self.walls) / max(self.domain.sensing_edge_count, 1)

    def __repr__(self) -> str:
        return (
            f"SensorNetwork({self.name!r}, sensors={len(self.sensors)}, "
            f"walls={len(self.walls)}, regions={self.region_count})"
        )


# ----------------------------------------------------------------------
# Compiled network indexes (the read-path analogue of EventColumns)
# ----------------------------------------------------------------------
@dataclass
class CompiledNetworkIndex:
    """Int32/CSR compilation of a network's region structure.

    Everything the query planner's resolution pipeline needs, as flat
    contiguous arrays addressed by dense ids:

    - junctions by their index in ``domain.junctions`` (the same order
      as :meth:`MobilityDomain.junction_ids_in_bbox` results);
    - regions by the dense ids :meth:`SensorNetwork._compute_regions`
      assigns (including the EXT region, which queries must exclude);
    - walls by their interned canonical-edge id (shared with the
      columnar event store and compiled tracking forms through
      ``domain.edge_interner``), plus an orientation sign: ``+1`` when
      the region-inward direction equals the canonical orientation,
      ``-1`` against it.

    The wall→owner CSR bakes in the :meth:`SensorNetwork.wall_sensors`
    fallback (incident blocks when a wall has no explicit owners), so a
    gather over it reproduces perimeter sensor accounting exactly.
    """

    ext_region: int
    n_regions: int
    #: Region id of each junction (indexed by junction index).
    region_of_junction: np.ndarray
    #: Number of junctions in each region (indexed by region id; the
    #: EXT region counts its junctions, not the EXT node itself).
    region_size: np.ndarray
    #: CSR region → junction indices (sorted within each region).
    rj_offsets: np.ndarray
    rj_junctions: np.ndarray
    #: CSR region → inward boundary walls (interned ids + signs).
    rw_offsets: np.ndarray
    rw_wall_ids: np.ndarray
    rw_signs: np.ndarray
    #: CSR wall id → owning communication sensors (sorted per wall).
    wo_offsets: np.ndarray
    wo_sensors: np.ndarray
    #: Lazily built CSR junction index → incident blocks (flood mode).
    jb_offsets: Optional[np.ndarray] = None
    jb_blocks: Optional[np.ndarray] = None

    @classmethod
    def build(cls, network: "SensorNetwork") -> "CompiledNetworkIndex":
        domain = network.domain
        interner = domain.edge_interner
        junction_index = domain.junction_index
        n_junctions = domain.junction_count
        n_regions = len(network._regions)

        region_of_junction = np.empty(n_junctions, dtype=np.int32)
        for node, region in network._region_of.items():
            if node == EXT:
                continue
            region_of_junction[junction_index[node]] = region
        region_size = np.zeros(n_regions, dtype=np.int64)
        for region, members in network._regions.items():
            region_size[region] = len(members)

        # CSR region → junctions: a stable argsort groups junction
        # indices by region, ascending within each region.
        counts = np.bincount(region_of_junction, minlength=n_regions)
        rj_offsets = np.concatenate(
            ([0], np.cumsum(counts))
        ).astype(np.int64)
        rj_junctions = np.argsort(
            region_of_junction, kind="stable"
        ).astype(np.int32)

        # CSR region → inward walls with orientation signs.
        wall_counts = np.zeros(n_regions, dtype=np.int64)
        for region, inward in network._region_walls.items():
            wall_counts[region] = len(inward)
        rw_offsets = np.concatenate(
            ([0], np.cumsum(wall_counts))
        ).astype(np.int64)
        rw_wall_ids = np.empty(int(rw_offsets[-1]), dtype=np.int32)
        rw_signs = np.empty(int(rw_offsets[-1]), dtype=np.int8)
        intern = interner.intern
        for region, inward in network._region_walls.items():
            # Sorted by wall id so a single region's slice is already a
            # canonical ascending chain (the planner's fast path).
            interned = sorted(intern(u, v) for u, v in inward)
            cursor = int(rw_offsets[region])
            for eid, forward in interned:
                rw_wall_ids[cursor] = eid
                rw_signs[cursor] = 1 if forward else -1
                cursor += 1

        # CSR wall id → owners, over the interner's full id space so
        # chain gathers can index it directly.  Walls are interned
        # first: dangling walls of ad-hoc networks may lie outside the
        # pre-seeded sensing-edge table.
        wall_ids = {wall: intern(*wall)[0] for wall in network.walls}
        n_ids = len(interner)
        owner_lists: List[Sequence[int]] = [()] * n_ids
        for wall, eid in wall_ids.items():
            owner_lists[eid] = sorted(network.wall_sensors(*wall))
        owner_counts = np.fromiter(
            (len(owners) for owners in owner_lists),
            dtype=np.int64,
            count=n_ids,
        )
        wo_offsets = np.concatenate(
            ([0], np.cumsum(owner_counts))
        ).astype(np.int64)
        wo_sensors = np.array(
            [s for owners in owner_lists for s in owners], dtype=np.int32
        )

        return cls(
            ext_region=network.ext_region,
            n_regions=n_regions,
            region_of_junction=region_of_junction,
            region_size=region_size,
            rj_offsets=rj_offsets,
            rj_junctions=rj_junctions,
            rw_offsets=rw_offsets,
            rw_wall_ids=rw_wall_ids,
            rw_signs=rw_signs,
            wo_offsets=wo_offsets,
            wo_sensors=wo_sensors,
        )

    def junction_blocks(
        self, domain: MobilityDomain
    ) -> Tuple[np.ndarray, np.ndarray]:
        """CSR junction index → incident sensor blocks (lazy; flood)."""
        if self.jb_offsets is None:
            dual = domain.dual
            outer = dual.outer_node
            per_junction: List[List[int]] = []
            for junction in domain.junctions:
                blocks = set()
                for neighbour in domain.graph.neighbors(junction):
                    left, right = dual.faces_of_primal_edge(
                        junction, neighbour
                    )
                    blocks.update(
                        b for b in (left, right) if b != outer
                    )
                per_junction.append(sorted(blocks))
            lens = np.fromiter(
                (len(b) for b in per_junction),
                dtype=np.int64,
                count=len(per_junction),
            )
            self.jb_offsets = np.concatenate(
                ([0], np.cumsum(lens))
            ).astype(np.int64)
            self.jb_blocks = np.array(
                [b for blocks in per_junction for b in blocks],
                dtype=np.int32,
            )
        return self.jb_offsets, self.jb_blocks


# ----------------------------------------------------------------------
# Constructors
# ----------------------------------------------------------------------
def full_network(domain: MobilityDomain) -> SensorNetwork:
    """The unsampled sensing graph ``G``: every sensing edge is a wall.

    Every junction becomes its own sensing region; this is the paper's
    exact-count reference configuration ([34] without sampling).
    """
    walls = frozenset(
        canonical_edge(u, v) for u, v in domain.sensing_edges()
    )
    sensors = tuple(sorted(domain.dual.interior_nodes))
    return SensorNetwork(
        domain=domain, sensors=sensors, walls=walls, name="full"
    )


def sampled_network(
    domain: MobilityDomain,
    sensor_blocks: Sequence[int],
    connectivity: str = "triangulation",
    k: int = 5,
    name: Optional[str] = None,
) -> SensorNetwork:
    """Materialise a sampled graph ``G~`` from selected sensor blocks.

    Logical edges between the selected blocks (Delaunay triangulation
    or symmetric k-NN) are routed along shortest paths in the sensing
    dual graph — avoiding the infinity node, so routes stay inside the
    domain — and every primal edge crossed becomes a monitored wall
    owned by the two endpoint sensors (Fig. 6b/e).
    """
    blocks = list(dict.fromkeys(sensor_blocks))
    if len(blocks) < 2:
        raise SelectionError("a sampled network needs at least two sensors")
    outer = domain.dual.outer_node
    if outer in blocks:
        raise SelectionError("the infinity node cannot be a sensor")
    positions = np.array([domain.dual.position(b) for b in blocks])

    if connectivity == "triangulation":
        logical = triangulation_edges(positions)
    elif connectivity == "knn":
        logical = knn_edges(positions, k)
    else:
        raise SelectionError(
            f"unknown connectivity {connectivity!r}; "
            "use 'triangulation' or 'knn'"
        )

    walls: Set[Wall] = set()
    owners: Dict[Wall, Set[int]] = {}
    forbidden = {outer} if outer is not None else set()
    for i, j in logical:
        route = domain.dual.shortest_path(
            blocks[i], blocks[j], forbidden=forbidden
        )
        if route is None:
            continue  # unreachable without leaving the domain; skip
        _, crossings = route
        for wall in crossings:
            wall = canonical_edge(*wall)
            walls.add(wall)
            owners.setdefault(wall, set()).add(blocks[i])
            owners[wall].add(blocks[j])

    label = name or f"sampled-{connectivity}"
    return SensorNetwork(
        domain=domain,
        sensors=tuple(blocks),
        walls=frozenset(walls),
        name=label,
        wall_owners={w: frozenset(o) for w, o in owners.items()},
    )


def wall_network(
    domain: MobilityDomain,
    walls: Iterable[Wall],
    sensors: Sequence[int],
    name: str = "walls",
) -> SensorNetwork:
    """A network directly defined by walls (submodular plans, tests)."""
    return SensorNetwork(
        domain=domain,
        sensors=tuple(sensors),
        walls=frozenset(canonical_edge(u, v) for u, v in walls),
        name=name,
    )
