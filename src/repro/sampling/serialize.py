"""Deployment serialization: save/load sensor-network configurations.

A deployed configuration (selected sensors + monitored walls) is the
operational state a real system would provision once and reuse; this
module round-trips it through JSON so deployments survive process
restarts and can be shipped between planner and operator.

Node ids are encoded with a small tagged scheme because mobility-graph
ids are heterogeneous (ints, strings, tuples from generators and
planarization).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Tuple, Union

from ..errors import ConfigurationError
from ..mobility import MobilityDomain
from ..planar import NodeId, canonical_edge
from .network import SensorNetwork


def _encode_node(node: NodeId) -> Any:
    if isinstance(node, tuple):
        return {"t": [_encode_node(part) for part in node]}
    if isinstance(node, (int, float, str)):
        return node
    raise ConfigurationError(f"cannot serialise node id {node!r}")


def _decode_node(raw: Any) -> NodeId:
    if isinstance(raw, dict) and "t" in raw:
        return tuple(_decode_node(part) for part in raw["t"])
    return raw


def save_network(network: SensorNetwork, path: Union[str, Path]) -> None:
    """Write a deployment's sensors, walls and wall ownership to JSON."""
    payload = {
        "format": "repro-sensor-network",
        "version": 1,
        "name": network.name,
        "sensors": list(network.sensors),
        "walls": [
            [_encode_node(u), _encode_node(v)] for u, v in sorted(
                network.walls, key=repr
            )
        ],
        "wall_owners": [
            [[_encode_node(u), _encode_node(v)], sorted(owners)]
            for (u, v), owners in sorted(
                network.wall_owners.items(), key=lambda item: repr(item[0])
            )
        ],
    }
    Path(path).write_text(json.dumps(payload))


def load_network(
    domain: MobilityDomain, path: Union[str, Path]
) -> SensorNetwork:
    """Rebuild a deployment against a (compatible) domain.

    Validates that every wall references an existing sensing edge of
    the domain — loading a deployment onto the wrong city fails loudly
    rather than silently miscounting.
    """
    raw = json.loads(Path(path).read_text())
    if raw.get("format") != "repro-sensor-network":
        raise ConfigurationError(f"{path} is not a sensor-network file")
    if raw.get("version") != 1:
        raise ConfigurationError(
            f"unsupported sensor-network version {raw.get('version')!r}"
        )

    walls = []
    valid_edges = {
        canonical_edge(u, v) for u, v in domain.sensing_edges()
    }
    for entry in raw["walls"]:
        u, v = (_decode_node(entry[0]), _decode_node(entry[1]))
        wall = canonical_edge(u, v)
        if wall not in valid_edges:
            raise ConfigurationError(
                f"wall {wall!r} does not exist in this domain; "
                "deployment belongs to a different city"
            )
        walls.append(wall)

    owners: Dict[Tuple[NodeId, NodeId], frozenset] = {}
    for entry in raw.get("wall_owners", []):
        (raw_u, raw_v), owner_list = entry
        wall = canonical_edge(_decode_node(raw_u), _decode_node(raw_v))
        owners[wall] = frozenset(owner_list)

    return SensorNetwork(
        domain=domain,
        sensors=tuple(raw["sensors"]),
        walls=frozenset(walls),
        name=str(raw.get("name", "loaded")),
        wall_owners=owners,
    )
