"""Axis-aligned spatial decompositions (the dead-space strawman).

§3.1.1 argues that grid/kd-tree/QuadTree subdivisions designed for
centralized systems create *dead space* when used to partition a sensor
network: cell boundaries cut through areas with no traffic while busy
corridors end up over-divided.  To reproduce that argument empirically,
this module builds sensing configurations whose walls come from an
axis-aligned partition of the *space* (not of the sensor distribution):

- :func:`grid_decomposition_network` — a regular RxC grid of cells;
- :func:`kd_decomposition_network` — recursive median splits of the
  junctions by alternating axis (a kd-tree over space).

A road edge becomes a wall when its endpoints fall in different cells.
The companion benchmark compares these against the planar-graph
sampled networks at equal wall budgets.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Set, Tuple

import numpy as np

from ..errors import SelectionError
from ..mobility import MobilityDomain
from ..planar import NodeId, canonical_edge
from .network import SensorNetwork, Wall


def grid_decomposition_network(
    domain: MobilityDomain,
    rows: int,
    cols: int,
    name: str = "grid-decomposition",
) -> SensorNetwork:
    """Sensing walls from a regular grid partition of the domain."""
    if rows < 1 or cols < 1:
        raise SelectionError("grid decomposition needs positive rows/cols")
    bounds = domain.bounds

    def cell_of(junction: NodeId) -> Tuple[int, int]:
        x, y = domain.position(junction)
        cx = min(int((x - bounds.min_x) / bounds.width * cols), cols - 1)
        cy = min(int((y - bounds.min_y) / bounds.height * rows), rows - 1)
        return (cx, cy)

    labels = {junction: cell_of(junction) for junction in domain.junctions}
    return _network_from_labels(domain, labels, name)


def kd_decomposition_network(
    domain: MobilityDomain,
    leaves: int,
    name: str = "kd-decomposition",
) -> SensorNetwork:
    """Sensing walls from a kd-tree partition of the junctions."""
    if leaves < 1:
        raise SelectionError("kd decomposition needs >= 1 leaf")
    junctions = list(domain.junctions)
    positions = np.array([domain.position(j) for j in junctions])

    # Largest-leaf-first median splits until the leaf budget is hit.
    import heapq

    heap: List[Tuple[int, int, np.ndarray]] = [
        (-len(junctions), 0, np.arange(len(junctions)))
    ]
    serial = 1
    while len(heap) < leaves:
        neg_size, _, indices = heapq.heappop(heap)
        if len(indices) <= 1:
            heapq.heappush(heap, (neg_size, serial, indices))
            serial += 1
            break
        span = positions[indices].max(axis=0) - positions[indices].min(axis=0)
        axis = 0 if span[0] >= span[1] else 1
        values = positions[indices, axis]
        median = float(np.median(values))
        left_mask = values <= median
        if left_mask.all() or not left_mask.any():
            left_mask = values < median
            if not left_mask.any():
                heapq.heappush(heap, (0, serial, indices))
                serial += 1
                continue
        for part in (indices[left_mask], indices[~left_mask]):
            heapq.heappush(heap, (-len(part), serial, part))
            serial += 1

    labels: Dict[NodeId, int] = {}
    for leaf_id, (_, _, indices) in enumerate(heap):
        for index in indices:
            labels[junctions[index]] = leaf_id
    return _network_from_labels(domain, labels, name)


def _network_from_labels(
    domain: MobilityDomain,
    labels: Dict[NodeId, object],
    name: str,
) -> SensorNetwork:
    """Walls = road edges whose endpoints carry different labels,
    plus the EXT geofence (every cell is a closed sensing region —
    otherwise rim cells would leak into the unenclosed exterior)."""
    walls: Set[Wall] = set()
    for u, v in domain.graph.edges():
        if labels[u] != labels[v]:
            walls.add(canonical_edge(u, v))
    for rim in domain.boundary_junctions:
        walls.add(canonical_edge("__ext__", rim))
    # One communication sensor per non-empty cell: the block nearest
    # the cell's junction centroid stands in for its aggregator.
    by_label: Dict[object, List[NodeId]] = {}
    for junction, label in labels.items():
        by_label.setdefault(label, []).append(junction)
    sensors: Set[int] = set()
    outer = domain.dual.outer_node
    for members in by_label.values():
        xs = [domain.position(j)[0] for j in members]
        ys = [domain.position(j)[1] for j in members]
        anchor = domain.nearest_junction(
            (sum(xs) / len(xs), sum(ys) / len(ys))
        )
        for neighbour in domain.graph.neighbors(anchor):
            left, right = domain.dual.faces_of_primal_edge(anchor, neighbour)
            for block in (left, right):
                if block != outer:
                    sensors.add(block)
                    break
            break
    return SensorNetwork(
        domain=domain,
        sensors=tuple(sorted(sensors)),
        walls=frozenset(walls),
        name=name,
    )


def calibrate_grid_to_walls(
    domain: MobilityDomain, target_walls: int
) -> Tuple[int, int]:
    """Grid shape whose decomposition yields ~``target_walls`` walls.

    Walls of an RxC grid scale with the total boundary length, i.e.
    roughly linearly in R + C; a square grid is assumed.  Search over
    square sizes and return the closest.
    """
    if target_walls < 1:
        raise SelectionError("target_walls must be positive")
    best: Tuple[int, int] = (1, 1)
    best_gap = float("inf")
    for side in range(1, 40):
        network = grid_decomposition_network(domain, side, side)
        gap = abs(len(network.walls) - target_walls)
        if gap < best_gap:
            best_gap = gap
            best = (side, side)
        if len(network.walls) > target_walls * 1.6:
            break
    return best
