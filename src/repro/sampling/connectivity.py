"""Connectivity generation for sampled sensors (§4.5, Fig. 6).

Selected communication sensors are joined into the sampled graph
``G~`` either by Delaunay triangulation (few large faces) or by
symmetric k-nearest-neighbour edges (more, smaller faces — better for
small query regions, §5.7).  Edges here are *logical*; routing them
through the sensing graph happens in :mod:`repro.sampling.network`.
"""

from __future__ import annotations

from typing import List, Sequence, Set, Tuple

import numpy as np

from ..errors import SelectionError
from ..geometry import delaunay_edges


def triangulation_edges(positions: np.ndarray) -> List[Tuple[int, int]]:
    """Delaunay edges over the sensor positions (index pairs, i < j)."""
    if len(positions) < 2:
        raise SelectionError("connectivity needs at least two sensors")
    return delaunay_edges([tuple(p) for p in positions])


def knn_edges(positions: np.ndarray, k: int) -> List[Tuple[int, int]]:
    """Symmetric k-NN edges over the sensor positions.

    Each sensor links to its ``k`` nearest neighbours; the union is
    symmetrised and deduplicated.  ``k >= n - 1`` yields the complete
    graph (the paper notes G~ becomes maximal at ``k = m``).
    """
    n = len(positions)
    if n < 2:
        raise SelectionError("connectivity needs at least two sensors")
    if k < 1:
        raise SelectionError("k must be >= 1")
    from scipy.spatial import cKDTree

    k_eff = min(k, n - 1)
    tree = cKDTree(positions)
    # Query k+1 because each point is its own nearest neighbour.
    _, neighbours = tree.query(positions, k=k_eff + 1)
    neighbours = np.atleast_2d(neighbours)
    edges: Set[Tuple[int, int]] = set()
    for i in range(n):
        for j in neighbours[i][1:]:
            j = int(j)
            edges.add((min(i, j), max(i, j)))
    return sorted(edges)
