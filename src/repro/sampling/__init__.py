"""Sampled-graph construction (system S8): connectivity generation,
shortest-path wall routing and the operational SensorNetwork."""

from .axis_aligned import (
    calibrate_grid_to_walls,
    grid_decomposition_network,
    kd_decomposition_network,
)
from .connectivity import knn_edges, triangulation_edges
from .network import (
    CompiledNetworkIndex,
    SensorNetwork,
    full_network,
    sampled_network,
    wall_network,
)
from .serialize import load_network, save_network

__all__ = [
    "CompiledNetworkIndex",
    "SensorNetwork",
    "calibrate_grid_to_walls",
    "full_network",
    "grid_decomposition_network",
    "kd_decomposition_network",
    "knn_edges",
    "load_network",
    "sampled_network",
    "save_network",
    "triangulation_edges",
    "wall_network",
]
