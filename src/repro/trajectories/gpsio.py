"""Raw GPS trace import (the T-Drive/Geolife ingestion path, §5.1.3).

The paper's pre-processing maps each trajectory location to the nearest
road-network node and connects consecutive matches with shortest paths.
This module implements that exact pipeline for CSV traces:

```
object_id,t,x,y
42,0.0,3.21,7.95
42,35.0,3.40,7.71
...
```

Rows may be unsorted; they are grouped by object and sorted by time.
Each object's matched junction sequence becomes a :class:`Trip`, ready
for crossing-event extraction.
"""

from __future__ import annotations

import csv
from collections import defaultdict
from pathlib import Path
from typing import Dict, Iterable, List, Sequence, Tuple, Union

from ..errors import WorkloadError
from ..geometry import Point
from ..mobility import MapMatcher, MobilityDomain
from .generator import Trip

#: One raw fix: (object id, timestamp, x, y).
GpsFix = Tuple[int, float, float, float]


def read_gps_csv(path: Union[str, Path]) -> List[GpsFix]:
    """Parse a GPS trace CSV with header ``object_id,t,x,y``."""
    fixes: List[GpsFix] = []
    with open(path, newline="") as handle:
        reader = csv.DictReader(handle)
        required = {"object_id", "t", "x", "y"}
        if reader.fieldnames is None or not required <= set(reader.fieldnames):
            raise WorkloadError(
                f"GPS CSV needs columns {sorted(required)}, "
                f"got {reader.fieldnames}"
            )
        for line_number, row in enumerate(reader, start=2):
            try:
                fixes.append(
                    (
                        int(row["object_id"]),
                        float(row["t"]),
                        float(row["x"]),
                        float(row["y"]),
                    )
                )
            except (TypeError, ValueError):
                raise WorkloadError(
                    f"malformed GPS row at line {line_number}: {row!r}"
                ) from None
    return fixes


def trips_from_fixes(
    domain: MobilityDomain,
    fixes: Iterable[GpsFix],
    min_fixes: int = 2,
) -> List[Trip]:
    """Map-match raw fixes into trips (§5.1.3 pre-processing).

    Objects with fewer than ``min_fixes`` fixes are dropped (single
    pings carry no movement).  Duplicate timestamps within an object
    keep the last fix.
    """
    if min_fixes < 1:
        raise WorkloadError("min_fixes must be >= 1")
    by_object: Dict[int, List[Tuple[float, Point]]] = defaultdict(list)
    for object_id, t, x, y in fixes:
        by_object[object_id].append((float(t), (float(x), float(y))))

    matcher = MapMatcher(domain.graph)
    trips: List[Trip] = []
    for object_id in sorted(by_object):
        samples = sorted(by_object[object_id], key=lambda s: s[0])
        deduplicated: List[Tuple[float, Point]] = []
        for t, point in samples:
            if deduplicated and deduplicated[-1][0] == t:
                deduplicated[-1] = (t, point)
            else:
                deduplicated.append((t, point))
        if len(deduplicated) < min_fixes:
            continue
        timed = matcher.match_timed(
            [(point, t) for t, point in deduplicated]
        )
        if not timed:
            continue
        if len(timed) == 1:
            # Stationary object: give it an observable dwell.
            junction, t0 = timed[0]
            t1 = deduplicated[-1][0]
            timed = [(junction, t0), (junction, max(t1, t0 + 1e-9))]
        trips.append(Trip(object_id=object_id, visits=tuple(timed)))
    return trips


def load_gps_trips(
    domain: MobilityDomain,
    path: Union[str, Path],
    min_fixes: int = 2,
) -> List[Trip]:
    """Read a CSV of GPS fixes and map-match it into trips."""
    return trips_from_fixes(domain, read_gps_csv(path), min_fixes=min_fixes)


def export_trips_as_gps(
    domain: MobilityDomain,
    trips: Sequence[Trip],
    path: Union[str, Path],
    jitter: float = 0.0,
    rng=None,
) -> int:
    """Write trips back out as GPS fixes (for round-trip testing and
    for generating realistic raw-data samples).  ``jitter`` adds
    uniform positional noise, simulating GPS error."""
    import numpy as np

    rng = rng if rng is not None else np.random.default_rng(0)
    rows = 0
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["object_id", "t", "x", "y"])
        for trip in trips:
            for junction, t in trip.visits:
                x, y = domain.position(junction)
                if jitter > 0:
                    x += float(rng.uniform(-jitter, jitter))
                    y += float(rng.uniform(-jitter, jitter))
                writer.writerow([trip.object_id, f"{t:.3f}",
                                 f"{x:.6f}", f"{y:.6f}"])
                rows += 1
    return rows
