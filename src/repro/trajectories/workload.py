"""Synthetic moving-object workloads (the T-Drive/Geolife substitute).

Generates trip collections with the statistical structure of urban taxi
GPS data that matters to the framework:

- inhomogeneous departures with morning/evening rush-hour peaks over a
  multi-day horizon;
- hotspot-biased origins and destinations (dense city-centre traffic)
  mixed with uniform background trips;
- log-normal per-trip speeds and exponential destination dwell times.

Everything is driven by an explicit :class:`numpy.random.Generator`, so
workloads are exactly reproducible.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..errors import WorkloadError
from ..mobility import MobilityDomain
from ..planar import NodeId
from .events import CrossingEvent, all_events
from .generator import Trip, plan_trip_along

#: Seconds per simulated day.
DAY = 24 * 3600.0


@dataclass(frozen=True)
class WorkloadConfig:
    """Parameters of a synthetic workload.

    ``horizon_days`` matches the paper's query generation, which samples
    7-day temporal ranges.  Speeds are in domain units per second (the
    synthetic city spans ~10 units ≈ 10 km, so 40 km/h ≈ 0.011 u/s) —
    but absolute scales only shift timestamps, not behaviour.
    """

    n_trips: int = 2000
    horizon_days: float = 14.0
    hotspots: int = 4
    hotspot_bias: float = 0.6
    hotspot_spread: float = 0.08
    mean_speed: float = 0.011
    speed_sigma: float = 0.3
    mean_dwell: float = 900.0
    rush_hours: Tuple[float, float] = (8.0, 18.0)
    rush_weight: float = 0.7
    seed: int = 7

    def __post_init__(self) -> None:
        if self.n_trips < 1:
            raise WorkloadError("n_trips must be positive")
        if not 0.0 <= self.hotspot_bias <= 1.0:
            raise WorkloadError("hotspot_bias must lie in [0, 1]")
        if self.horizon_days <= 0:
            raise WorkloadError("horizon_days must be positive")


@dataclass
class Workload:
    """A generated trip collection plus its config and event stream."""

    config: WorkloadConfig
    trips: List[Trip]
    hotspot_centers: np.ndarray

    _events: Optional[List[CrossingEvent]] = field(default=None, repr=False)

    @property
    def horizon(self) -> float:
        return self.config.horizon_days * DAY

    def events(self, domain: MobilityDomain) -> List[CrossingEvent]:
        """Time-sorted crossing events of all trips (cached)."""
        if self._events is None:
            self._events = all_events(domain, self.trips)
        return self._events


def generate_workload(
    domain: MobilityDomain, config: WorkloadConfig = WorkloadConfig()
) -> Workload:
    """Generate a reproducible trip workload over the domain."""
    rng = np.random.default_rng(config.seed)
    bounds = domain.bounds
    centers = np.column_stack(
        [
            rng.uniform(bounds.min_x, bounds.max_x, size=max(config.hotspots, 1)),
            rng.uniform(bounds.min_y, bounds.max_y, size=max(config.hotspots, 1)),
        ]
    )
    spread = config.hotspot_spread * max(bounds.width, bounds.height)

    departures = _rush_hour_departures(rng, config)
    plans = []
    for object_id, depart in enumerate(departures):
        origin = _sample_junction(domain, rng, config, centers, spread)
        destination = _sample_junction(domain, rng, config, centers, spread)
        attempts = 0
        while destination == origin and attempts < 8:
            destination = _sample_junction(domain, rng, config, centers, spread)
            attempts += 1
        speed = config.mean_speed * float(
            rng.lognormal(mean=0.0, sigma=config.speed_sigma)
        )
        dwell = float(rng.exponential(config.mean_dwell))
        plans.append((origin, destination, object_id, float(depart), speed, dwell))

    # Plan trips grouped by origin so one Dijkstra tree per origin
    # serves every trip departing from it.
    plans.sort(key=lambda p: (repr(p[0]), p[3]))
    trips: List[Trip] = []
    current_origin = None
    predecessor = None
    for origin, destination, object_id, depart, speed, dwell in plans:
        if origin != current_origin:
            _, predecessor = domain.graph.dijkstra_tree(origin)
            current_origin = origin
        path = domain.graph.path_from_tree(origin, destination, predecessor)
        if path is None:
            raise WorkloadError(
                f"no route between {origin!r} and {destination!r}"
            )
        trips.append(
            plan_trip_along(
                domain,
                object_id=object_id,
                path=path,
                depart_time=depart,
                speed=speed,
                dwell_time=dwell,
            )
        )
    trips.sort(key=lambda trip: trip.start_time)
    return Workload(config=config, trips=trips, hotspot_centers=centers)


def _rush_hour_departures(
    rng: np.random.Generator, config: WorkloadConfig
) -> np.ndarray:
    """Departure times: rush-hour Gaussian mixture + uniform background."""
    n = config.n_trips
    days = rng.integers(0, int(math.ceil(config.horizon_days)), size=n)
    is_rush = rng.random(n) < config.rush_weight
    which_peak = rng.integers(0, len(config.rush_hours), size=n)
    peak_hours = np.asarray(config.rush_hours)[which_peak]
    rush_times = rng.normal(loc=peak_hours, scale=1.0) * 3600.0
    uniform_times = rng.uniform(0.0, DAY, size=n)
    time_of_day = np.where(is_rush, rush_times, uniform_times)
    time_of_day = np.clip(time_of_day, 0.0, DAY - 1.0)
    departures = days * DAY + time_of_day
    return np.clip(departures, 0.0, config.horizon_days * DAY - 1.0)


def _sample_junction(
    domain: MobilityDomain,
    rng: np.random.Generator,
    config: WorkloadConfig,
    centers: np.ndarray,
    spread: float,
) -> NodeId:
    """Hotspot-biased or uniform junction sampling."""
    if config.hotspots > 0 and rng.random() < config.hotspot_bias:
        center = centers[rng.integers(0, len(centers))]
        point = (
            float(rng.normal(center[0], spread)),
            float(rng.normal(center[1], spread)),
        )
        return domain.nearest_junction(point)
    index = int(rng.integers(0, domain.junction_count))
    return domain.junctions[index]
