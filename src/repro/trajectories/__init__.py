"""Moving-object workloads and crossing events (system S5)."""

from .columns import EventColumns, columnarize
from .events import (
    CrossingEvent,
    all_events,
    distinct_visitors,
    ingest,
    net_change,
    occupancy_count,
    trip_events,
)
from .generator import Trip, plan_trip, plan_trip_along
from .gpsio import (
    export_trips_as_gps,
    load_gps_trips,
    read_gps_csv,
    trips_from_fixes,
)
from .workload import DAY, Workload, WorkloadConfig, generate_workload

__all__ = [
    "CrossingEvent",
    "DAY",
    "EventColumns",
    "Trip",
    "Workload",
    "WorkloadConfig",
    "all_events",
    "columnarize",
    "distinct_visitors",
    "export_trips_as_gps",
    "generate_workload",
    "ingest",
    "load_gps_trips",
    "read_gps_csv",
    "trips_from_fixes",
    "net_change",
    "occupancy_count",
    "plan_trip",
    "plan_trip_along",
    "trip_events",
]
