"""Trips of moving objects over the mobility domain.

A :class:`Trip` is one moving object's journey: it appears at an origin
junction at its departure time (modelled as an instantaneous drive in
from the domain rim through ``EXT``, see
:meth:`~repro.mobility.MobilityDomain.entry_path`), travels along the
shortest road path to its destination with a per-trip speed, and leaves
the sensed world again at arrival.

Object identifiers exist only inside the generator (to compute ground
truth); the sensing pipeline consumes anonymous crossing events.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..errors import WorkloadError
from ..mobility import EXT, MobilityDomain
from ..planar import NodeId


@dataclass(frozen=True)
class Trip:
    """One object's journey as timestamped junction visits.

    ``visits[0]`` is ``(origin, depart_time)``; subsequent entries carry
    the arrival time at each junction along the route.  The object
    occupies ``visits[i][0]`` during ``[visits[i][1], visits[i+1][1])``
    and is outside the domain (at EXT) before departure and from
    ``end_time`` on.
    """

    object_id: int
    visits: Tuple[Tuple[NodeId, float], ...]

    def __post_init__(self) -> None:
        if not self.visits:
            raise WorkloadError("a trip needs at least one visit")
        times = [t for _, t in self.visits]
        if any(b < a for a, b in zip(times, times[1:])):
            raise WorkloadError("trip visit times must be non-decreasing")

    @property
    def origin(self) -> NodeId:
        return self.visits[0][0]

    @property
    def destination(self) -> NodeId:
        return self.visits[-1][0]

    @property
    def start_time(self) -> float:
        return self.visits[0][1]

    @property
    def end_time(self) -> float:
        """Time at which the object leaves the sensed world."""
        return self.visits[-1][1]

    def position_at(self, t: float) -> NodeId:
        """Junction occupied at time ``t`` (right-continuous), or EXT.

        The object is at EXT strictly before departure and from
        ``end_time`` onward (it exits at the instant it arrives).
        """
        if t < self.start_time or t >= self.end_time:
            return EXT
        times = [time for _, time in self.visits]
        index = bisect.bisect_right(times, t) - 1
        return self.visits[index][0]


def plan_trip(
    domain: MobilityDomain,
    object_id: int,
    origin: NodeId,
    destination: NodeId,
    depart_time: float,
    speed: float,
    dwell_time: float = 0.0,
) -> Trip:
    """Route a trip along the shortest road path at constant speed.

    ``dwell_time`` keeps the object parked at the destination before it
    leaves the sensed world (end_time = arrival + dwell).
    """
    path = domain.graph.shortest_path(origin, destination)
    if path is None:
        raise WorkloadError(
            f"no route between {origin!r} and {destination!r}"
        )
    return plan_trip_along(
        domain, object_id, path, depart_time, speed, dwell_time
    )


def plan_trip_along(
    domain: MobilityDomain,
    object_id: int,
    path: Sequence[NodeId],
    depart_time: float,
    speed: float,
    dwell_time: float = 0.0,
) -> Trip:
    """Build a trip along a precomputed junction path.

    Lets workload generators reuse cached shortest-path trees instead
    of re-running Dijkstra per trip.
    """
    if speed <= 0:
        raise WorkloadError("speed must be positive")
    if dwell_time < 0:
        raise WorkloadError("dwell_time cannot be negative")
    if not path:
        raise WorkloadError("empty path")
    visits: List[Tuple[NodeId, float]] = [(path[0], depart_time)]
    t = depart_time
    for a, b in zip(path, path[1:]):
        t += domain.graph.edge_length(a, b) / speed
        visits.append((b, t))
    if dwell_time > 0 or len(visits) == 1:
        # A zero-length trip still needs a positive stay to be observable.
        visits.append((path[-1], t + max(dwell_time, 1e-9)))
    return Trip(object_id=object_id, visits=tuple(visits))
