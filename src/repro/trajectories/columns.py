"""Columnar crossing-event storage (the vectorised ingestion substrate).

:class:`EventColumns` materialises a crossing-event stream *once* as
three parallel numpy arrays — ``edge_id`` (``int32``, via the domain's
interned canonical-edge table), ``direction`` (``int8``, 0 when the
event follows the canonical edge orientation, 1 against it) and ``t``
(``float64``) — kept sorted by time.

Every network configuration then ingests by *vectorised filtering*
(a boolean wall mask indexed by ``edge_id``) instead of re-walking the
stream event-by-event through Python, which is what makes repeated
``build_form`` calls across a benchmark sweep cheap.  Learned-index
substrates (PGM-style piecewise models) get the contiguous sorted-array
layout they assume for free.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Iterator, List, Sequence

import numpy as np

from ..errors import WorkloadError
from .events import CrossingEvent

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..mobility import MobilityDomain
    from ..planar import EdgeInterner


@dataclass(frozen=True)
class EventColumns:
    """A time-sorted crossing-event stream in columnar (SoA) layout."""

    #: Shared canonical-edge ↔ id table (normally the domain's).
    interner: "EdgeInterner"
    #: Dense interned edge id per event.
    edge_id: np.ndarray
    #: 0 = event follows the canonical edge orientation, 1 = against it.
    direction: np.ndarray
    #: Event timestamps, non-decreasing.
    t: np.ndarray

    def __post_init__(self) -> None:
        if not (len(self.edge_id) == len(self.direction) == len(self.t)):
            raise WorkloadError("event columns must have equal lengths")

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_events(
        cls,
        domain: "MobilityDomain",
        events: Sequence[CrossingEvent],
    ) -> "EventColumns":
        """Columnarise an event stream against a domain's edge table.

        The per-event Python cost (attribute access + one dict hit per
        event) is paid exactly once here; every later wall filter and
        form build over the result is pure numpy.
        """
        interner = domain.edge_interner
        if not isinstance(events, (list, tuple)):
            events = list(events)
        n = len(events)
        edge_id = np.empty(n, dtype=np.int32)
        direction = np.empty(n, dtype=np.int8)
        t = np.empty(n, dtype=np.float64)
        intern = interner.intern
        for i, event in enumerate(events):
            eid, forward = intern(event.tail, event.head)
            edge_id[i] = eid
            direction[i] = 0 if forward else 1
            t[i] = event.t
        columns = cls(
            interner=interner, edge_id=edge_id, direction=direction, t=t
        )
        return columns.time_sorted()

    def time_sorted(self) -> "EventColumns":
        """Self if already time-sorted, else a stably sorted copy."""
        t = self.t
        if len(t) < 2 or not np.any(np.diff(t) < 0.0):
            return self
        order = np.argsort(t, kind="stable")
        return EventColumns(
            interner=self.interner,
            edge_id=self.edge_id[order],
            direction=self.direction[order],
            t=t[order],
        )

    def quantized(self, tick_bits: int) -> "EventColumns":
        """Timestamps snapped to the ``2**tick_bits`` ticks/second grid.

        The succinct tier's ingest-boundary quantization: rounding is
        monotone, so the time-sorted invariant survives, and every
        snapped value is exactly float64-representable — stores built
        from the result (compressed or not) hold identical multisets.
        Self is returned when nothing changes.
        """
        from ..forms.succinct import quantize_times

        t = quantize_times(self.t, tick_bits)
        if np.array_equal(t, self.t):
            return self
        return EventColumns(
            interner=self.interner,
            edge_id=self.edge_id,
            direction=self.direction,
            t=t,
        )

    # ------------------------------------------------------------------
    # Vectorised filtering
    # ------------------------------------------------------------------
    def select(self, indices: np.ndarray) -> "EventColumns":
        """Fancy-indexed subset (preserves the shared interner)."""
        return EventColumns(
            interner=self.interner,
            edge_id=self.edge_id[indices],
            direction=self.direction[indices],
            t=self.t[indices],
        )

    def filter_edges(self, edge_lookup: np.ndarray) -> "EventColumns":
        """Events whose edge id is flagged in a boolean lookup table.

        ``edge_lookup`` is indexed by edge id; ids beyond its length
        (edges interned after the table was built) are treated as not
        selected.
        """
        ids = self.edge_id
        in_table = ids < len(edge_lookup)
        mask = np.zeros(len(ids), dtype=bool)
        mask[in_table] = edge_lookup[ids[in_table]]
        return self.select(np.flatnonzero(mask))

    # ------------------------------------------------------------------
    # Shared-memory interop (the sharded engine's zero-copy transport)
    # ------------------------------------------------------------------
    def shm_pack(self, hint: str = "columns"):
        """Copy the three columns into one shared-memory segment.

        Returns ``(handle, descriptor)``: the owning
        :class:`multiprocessing.shared_memory.SharedMemory` handle
        (close **and** unlink it when the consumers are gone, e.g. via
        :func:`repro.shm.destroy_segment`) and the JSON-safe
        ``(dtype, shape, buffer-name)`` descriptor another process
        resolves with :meth:`shm_attach`.  The interner is *not*
        packed — it is shared structure the attaching side must already
        hold (inherited over fork, or pickled once per worker).
        """
        from .. import shm as shm_mod

        return shm_mod.pack_arrays(
            {
                "edge_id": self.edge_id,
                "direction": self.direction,
                "t": self.t,
            },
            hint=hint,
        )

    @classmethod
    def shm_attach(
        cls, descriptor, interner: "EdgeInterner"
    ) -> "EventColumns":
        """Zero-copy columns over a :meth:`shm_pack` descriptor.

        The columns are numpy views straight into the shared segment —
        no bytes are copied.  The segment handle is pinned on the
        instance so the mapping outlives the attach call.
        """
        from .. import shm as shm_mod

        handle, views = shm_mod.attach_arrays(descriptor)
        columns = cls(
            interner=interner,
            edge_id=views["edge_id"],
            direction=views["direction"],
            t=views["t"],
        )
        object.__setattr__(columns, "_shm_handle", handle)
        return columns

    # ------------------------------------------------------------------
    # Introspection / interop
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.t)

    @property
    def n_events(self) -> int:
        return len(self.t)

    def __iter__(self) -> Iterator[CrossingEvent]:
        """Iterate as :class:`CrossingEvent` (slow path; interop only)."""
        edge = self.interner.edge
        for eid, d, t in zip(self.edge_id, self.direction, self.t):
            u, v = edge(int(eid))
            if d:
                u, v = v, u
            yield CrossingEvent(u, v, float(t))

    def to_events(self) -> List[CrossingEvent]:
        """Materialise back into a row-wise event list."""
        return list(self)


def columnarize(
    domain: "MobilityDomain", events: Iterable[CrossingEvent]
) -> EventColumns:
    """Convenience wrapper: ``EventColumns.from_events`` for iterables."""
    if isinstance(events, EventColumns):
        return events
    return EventColumns.from_events(domain, list(events))
