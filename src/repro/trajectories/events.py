"""Crossing-event extraction and ground-truth occupancy.

The sensing system never sees trips — it sees anonymous *crossing
events* ``(u, v, t)``: "something crossed the sensing edge of road
``{u, v}`` toward ``v`` at time ``t``".  This module converts trips to
their event streams (including the EXT entry/exit walks) and, for
evaluation only, computes exact occupancy ground truth from the trips
themselves.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence, Set, Tuple

from ..errors import QueryError
from ..forms import TrackingForm
from ..mobility import EXT, MobilityDomain
from ..planar import NodeId
from .generator import Trip


@dataclass(frozen=True)
class CrossingEvent:
    """An anonymous directed crossing: toward ``head`` at time ``t``."""

    tail: NodeId
    head: NodeId
    t: float


def trip_events(domain: MobilityDomain, trip: Trip) -> List[CrossingEvent]:
    """All crossing events a trip generates, in time order.

    The entry walk (EXT -> rim -> ... -> origin) is stamped at the
    departure time and the exit walk at the end time, realising the
    infinity-node convention: every object enters and leaves the sensed
    world through EXT, so regions never miss an appearance.
    """
    events: List[CrossingEvent] = []
    entry = domain.entry_path(trip.origin)
    for a, b in zip(entry, entry[1:]):
        events.append(CrossingEvent(a, b, trip.start_time))

    for (a, ta), (b, tb) in zip(trip.visits, trip.visits[1:]):
        if a == b:
            continue  # dwell, no crossing
        events.append(CrossingEvent(a, b, tb))

    exit_walk = domain.exit_path(trip.destination)
    for a, b in zip(exit_walk, exit_walk[1:]):
        events.append(CrossingEvent(a, b, trip.end_time))
    return events


def all_events(
    domain: MobilityDomain, trips: Sequence[Trip]
) -> List[CrossingEvent]:
    """Event stream of a whole trip collection, sorted by time.

    Sorting is stable, so each trip's internal event order (which
    matters for same-timestamp entry/exit walks) is preserved.
    """
    events: List[CrossingEvent] = []
    for trip in trips:
        events.extend(trip_events(domain, trip))
    events.sort(key=lambda e: e.t)
    return events


def ingest(events: Iterable[CrossingEvent], form: TrackingForm) -> int:
    """Record every event into a tracking form; returns events ingested."""
    count = 0
    for event in events:
        form.record(event.tail, event.head, event.t)
        count += 1
    return count


# ----------------------------------------------------------------------
# Ground truth (evaluation only; uses object identity)
# ----------------------------------------------------------------------
def occupancy_count(
    trips: Sequence[Trip], region: Set[NodeId], t: float
) -> int:
    """Exact number of objects inside the junction region at time ``t``."""
    if EXT in region:
        raise QueryError("regions cannot include EXT")
    return sum(1 for trip in trips if trip.position_at(t) in region)


def net_change(
    trips: Sequence[Trip], region: Set[NodeId], t1: float, t2: float
) -> int:
    """Exact net occupancy change over ``(t1, t2]`` (Theorem 4.3 truth)."""
    if t2 < t1:
        raise QueryError(f"inverted interval [{t1}, {t2}]")
    return occupancy_count(trips, region, t2) - occupancy_count(
        trips, region, t1
    )


def distinct_visitors(
    trips: Sequence[Trip], region: Set[NodeId], t1: float, t2: float
) -> int:
    """Distinct objects that were inside the region at any point of
    ``[t1, t2]`` — the privacy-sensitive quantity the aggregate queries
    approximate without identifiers (used by tests and examples)."""
    if EXT in region:
        raise QueryError("regions cannot include EXT")
    count = 0
    for trip in trips:
        # Pre-filter uses a strict ``<`` on the left endpoint: a trip
        # with ``end_time == t1`` held its final junction up *to* t1
        # and must still be considered (see below), matching the
        # right-continuous ``(t1, t2]`` convention of
        # ``TrackingForm.count_between``.
        if trip.end_time < t1 or trip.start_time > t2:
            continue
        times = sorted({t1, t2, *(t for _, t in trip.visits if t1 <= t <= t2)})
        if any(trip.position_at(t) in region for t in times):
            count += 1
        elif trip.end_time == t1 and trip.visits:
            # ``position_at`` is right-continuous (EXT from end_time
            # on), which blinds the sample at exactly t1 to a trip that
            # occupied its final junction until that instant; it was
            # inside the region at t1, so it is a visitor.
            if trip.visits[-1][0] in region:
                count += 1
    return count
