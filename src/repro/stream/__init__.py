"""Streaming ingestion: append-only event intake with incremental
form maintenance (system S12).

The paper's motivating workload (Fig. 1 cell-tower load balancing) is a
*live stream* of edge-crossing events; this package provides the
append-only path the batch ``columnarize → build_form`` pipeline lacks:
an LSM-style :class:`StreamingEventStore` keeping a mutable in-memory
tail of recent crossings plus periodically compacted, immutable
CSR-columnar blocks, so queries stay exact at every instant without a
full rebuild per append.
"""

from .store import (
    DEFAULT_COMPACT_EVERY,
    DEFAULT_MAX_BLOCKS,
    StreamingEventStore,
    replay,
)

__all__ = [
    "DEFAULT_COMPACT_EVERY",
    "DEFAULT_MAX_BLOCKS",
    "StreamingEventStore",
    "replay",
]
