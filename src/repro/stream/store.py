"""LSM-style streaming event store: mutable tail + compacted blocks.

:class:`StreamingEventStore` is the append-only count store behind
``FrameworkConfig(streaming=True)``.  It answers the full
:class:`~repro.forms.EdgeCountStore` interface — including the
id-native chain integration the compiled planner uses — over a
two-level layout:

- a **tail** of recent crossings held in a plain
  :class:`~repro.forms.TrackingForm` (lazily-sorted ``_EventSeries``
  per direction, O(1) amortised append, generation-memoised
  aggregates) plus parallel staging columns for later columnarisation;
- **blocks**: immutable, time-sorted
  :class:`~repro.forms.CompiledTrackingForm` CSR indexes, one per
  compaction, each with its own compiled-boundary LRU.

Correctness rests on the same property the sharded engine exploits:
the signed boundary integral of Theorems 4.2/4.3 is **linear over
events**, so any query answer over the store is exactly the sum of the
per-block integrals plus the tail integral.  Streamed results are
therefore field-identical to a batch-built store at every instant —
mid-compaction included, because :meth:`compact` builds the new block
fully *before* swapping it in and resetting the tail.

Consistency rules (the stale-cache sweep this store motivated):

- the store's :attr:`generation` bumps on every accepted append and
  every compaction/merge, so flight-recorder digests and memoised
  standing counts keyed on it can never serve a stale answer;
- block merges go through
  :meth:`~repro.forms.CompiledTrackingForm.append_events`, which
  clears the mutated block's compiled-boundary LRU (the cached merged
  prefix-sum series bake the timestamps in);
- a closed store raises a structured
  :class:`~repro.errors.QueryError` from both ``append_events`` and
  the query surface instead of failing with bare attribute errors.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

from ..errors import QueryError
from ..forms import CompiledTrackingForm, TrackingForm
from ..forms.compiled import DEFAULT_BOUNDARY_CACHE_SIZE
from ..forms.snapshot import DirectedEdge
from ..obs import get_registry
from ..trajectories import CrossingEvent, EventColumns

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..query.continuous import ContinuousCountMonitor
    from ..sampling import SensorNetwork

#: Tail size that triggers an automatic compaction on append.
DEFAULT_COMPACT_EVERY = 4096

#: Compacted blocks kept before the newest is merged into its
#: predecessor (bounds per-query block fan-out).
DEFAULT_MAX_BLOCKS = 8

#: Decoded id-chain cache entries kept for tail integration.
_CHAIN_CACHE_SIZE = 512

#: Compaction listener phases, in firing order.
COMPACT_PHASES = ("built", "swapped")


class StreamingEventStore:
    """Append-only tail+blocks count store over one sensing network."""

    def __init__(
        self,
        network: "SensorNetwork",
        compact_every: int = DEFAULT_COMPACT_EVERY,
        max_blocks: int = DEFAULT_MAX_BLOCKS,
        boundary_cache_size: int = DEFAULT_BOUNDARY_CACHE_SIZE,
        compress: bool = False,
        tick_bits: int = 0,
    ) -> None:
        """``compress=True`` compacts the tail into succinct
        :class:`~repro.forms.CompressedTrackingForm` blocks and
        quantizes timestamps to ``2**tick_bits`` ticks per second at
        the append boundary — the tail holds the *quantized* values,
        so tail and block answers agree at every instant."""
        if compact_every < 1:
            raise QueryError("compact_every must be >= 1")
        if max_blocks < 1:
            raise QueryError("max_blocks must be >= 1")
        self.network = network
        self.compact_every = int(compact_every)
        self.max_blocks = int(max_blocks)
        self._boundary_cache_size = int(boundary_cache_size)
        self._interner = network.domain.edge_interner
        self.compress = bool(compress)
        self.tick_bits = int(tick_bits)
        self._tick_scale = float(2.0 ** self.tick_bits)

        self._tail = TrackingForm()
        #: Staging columns of the tail, columnarised at compact time.
        self._tail_ids: List[int] = []
        self._tail_dirs: List[int] = []
        self._tail_ts: List[float] = []
        self._blocks: List[CompiledTrackingForm] = []

        self._generation = 0
        self._closed = False
        self.compactions = 0
        self.block_merges = 0
        #: Observed (wall-crossing) events ever accepted.
        self.observed_total = 0
        self._compact_listeners: List[Callable] = []
        self._monitors: List["ContinuousCountMonitor"] = []
        #: Decoded directed-edge chains for tail id-native integration,
        #: keyed on the chain bytes.  Depends only on the interner's
        #: id → edge table, never on event data, so appends do not
        #: invalidate it.
        self._chain_edges: "OrderedDict[object, List[Tuple[DirectedEdge, int]]]" = (
            OrderedDict()
        )

        registry = get_registry()
        self._metric_events = registry.counter(
            "repro_stream_events_total",
            help="Observed crossing events accepted by streaming stores",
        )
        self._metric_compactions = registry.counter(
            "repro_stream_compactions_total",
            help="Tail compactions into immutable CSR blocks",
        )
        self._metric_merges = registry.counter(
            "repro_stream_block_merges_total",
            help="Block merges beyond the max_blocks bound",
        )
        self._gauge_tail = registry.gauge(
            "repro_stream_tail_events",
            help="Events currently in the mutable streaming tail",
        )
        self._gauge_block_events = registry.gauge(
            "repro_stream_block_events",
            help="Events held in compacted streaming blocks",
        )
        self._gauge_blocks = registry.gauge(
            "repro_stream_blocks",
            help="Compacted streaming blocks currently live",
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Mark the store closed; later appends and queries raise a
        structured :class:`~repro.errors.QueryError`.  Idempotent."""
        self._closed = True

    @property
    def closed(self) -> bool:
        return self._closed

    def _guard(self) -> None:
        if self._closed:
            raise QueryError(
                "streaming store is closed; appends and queries need a "
                "live store"
            )

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------
    def append_events(self, events: Iterable[CrossingEvent]) -> int:
        """Fold an arrival window of crossing events into the tail.

        Events landing on unmonitored edges are dropped (exactly as
        the batch ``build_form`` filter drops them).  Accepting at
        least one event bumps :attr:`generation`; reaching
        ``compact_every`` staged events triggers :meth:`compact`.
        Returns the number of events observed (accepted).
        """
        self._guard()
        lookup = self.network._wall_lookup()
        intern = self._interner.intern
        tail = self._tail
        observed: List[CrossingEvent] = []
        compress = self.compress
        scale = self._tick_scale
        for event in events:
            eid, forward = intern(event.tail, event.head)
            if eid >= len(lookup) or not lookup[eid]:
                continue
            t = float(event.t)
            if compress:
                # Ingest-boundary quantization (see CompressedTrackingForm)
                t = round(t * scale) / scale
            tail.record(event.tail, event.head, t)
            self._tail_ids.append(eid)
            self._tail_dirs.append(0 if forward else 1)
            self._tail_ts.append(t)
            observed.append(event)
        if observed:
            self._generation += 1
            self.observed_total += len(observed)
            self._metric_events.inc(len(observed))
            for monitor in self._monitors:
                monitor.observe_stream(observed)
        if len(self._tail_ts) >= self.compact_every:
            self.compact()
        else:
            self._update_gauges()
        return len(observed)

    def compact(self) -> bool:
        """Freeze the tail into an immutable time-sorted CSR block.

        The block is built completely while the store still answers
        from the old tail+blocks; only then is it swapped in and the
        tail reset, so a query issued at any point — including from a
        ``built``-phase :meth:`on_compact` listener — sees exactly one
        copy of every event.  Blocks beyond ``max_blocks`` are merged
        into their predecessor through
        :meth:`CompiledTrackingForm.append_events` (which clears that
        block's compiled-boundary cache).  Returns ``True`` if a block
        was produced.
        """
        self._guard()
        if not self._tail_ts:
            return False
        ids = np.asarray(self._tail_ids, dtype=np.int64)
        dirs = np.asarray(self._tail_dirs, dtype=np.int8)
        ts = np.asarray(self._tail_ts, dtype=np.float64)
        order = np.argsort(ts, kind="stable")
        if self.compress:
            from ..forms import CompressedTrackingForm

            block = CompressedTrackingForm(
                self._interner,
                ids[order],
                dirs[order],
                ts[order],
                boundary_cache_size=self._boundary_cache_size,
                tick_bits=self.tick_bits,
            )
        else:
            block = CompiledTrackingForm(
                self._interner,
                ids[order],
                dirs[order],
                ts[order],
                boundary_cache_size=self._boundary_cache_size,
            )
        self._fire_compact("built")
        # Atomic swap: the block joins, then the tail resets.  No
        # intermediate state loses or double-counts an event because
        # reads sum tail + blocks and the tail still holds the events
        # until the very last statements below.
        self._blocks.append(block)
        self._tail = TrackingForm()
        self._tail_ids = []
        self._tail_dirs = []
        self._tail_ts = []
        self.compactions += 1
        self._generation += 1
        self._metric_compactions.inc()
        while len(self._blocks) > self.max_blocks:
            newest = self._blocks.pop()
            merged = newest.to_columns()
            self._blocks[-1].append_events(
                merged.edge_id, merged.direction, merged.t
            )
            self.block_merges += 1
            self._generation += 1
            self._metric_merges.inc()
        self._update_gauges()
        self._fire_compact("swapped")
        return True

    def on_compact(self, listener: Callable) -> None:
        """Register ``listener(store, phase)`` fired at every
        compaction, once per phase in :data:`COMPACT_PHASES`:
        ``"built"`` (new block ready, old layout still serving) and
        ``"swapped"`` (new layout live)."""
        self._compact_listeners.append(listener)

    def _fire_compact(self, phase: str) -> None:
        for listener in self._compact_listeners:
            listener(self, phase)

    def attach_monitor(self, monitor: "ContinuousCountMonitor") -> None:
        """Subscribe a standing-query monitor: every accepted arrival
        window is folded into it, and :meth:`resync` can recover its
        exact counts from this store at any time."""
        self._monitors.append(monitor)

    def resync(
        self, monitor: "ContinuousCountMonitor", t: float
    ) -> Dict[str, float]:
        """Recompute the monitor's standing counts from this store at
        time ``t`` (generation-memoised inside the monitor)."""
        return monitor.reevaluate(self, t)

    def _update_gauges(self) -> None:
        self._gauge_tail.set(len(self._tail_ts))
        self._gauge_block_events.set(
            sum(b.total_events for b in self._blocks)
        )
        self._gauge_blocks.set(len(self._blocks))

    # ------------------------------------------------------------------
    # Count-store interface (sum of per-level answers; Theorem 4.2/4.3
    # integrals are linear over events)
    # ------------------------------------------------------------------
    def count_entering(self, edge: DirectedEdge, t: float) -> float:
        self._guard()
        return self._tail.count_entering(edge, t) + sum(
            b.count_entering(edge, t) for b in self._blocks
        )

    def count_leaving(self, edge: DirectedEdge, t: float) -> float:
        self._guard()
        return self._tail.count_leaving(edge, t) + sum(
            b.count_leaving(edge, t) for b in self._blocks
        )

    def net_until(self, edge: DirectedEdge, t: float) -> float:
        self._guard()
        return self._tail.net_until(edge, t) + sum(
            b.net_until(edge, t) for b in self._blocks
        )

    def net_between(self, edge: DirectedEdge, t1: float, t2: float) -> float:
        if t2 < t1:
            raise QueryError(f"inverted time interval [{t1}, {t2}]")
        return self.net_until(edge, t2) - self.net_until(edge, t1)

    def integrate_until(
        self, edges: Iterable[DirectedEdge], t: float
    ) -> float:
        self._guard()
        chain = tuple(edges)
        return self._tail.integrate_until(chain, t) + sum(
            b.integrate_until(chain, t) for b in self._blocks
        )

    def integrate_between(
        self, edges: Iterable[DirectedEdge], t1: float, t2: float
    ) -> float:
        if t2 < t1:
            raise QueryError(f"inverted time interval [{t1}, {t2}]")
        self._guard()
        chain = tuple(edges)
        return self._tail.integrate_between(chain, t1, t2) + sum(
            b.integrate_between(chain, t1, t2) for b in self._blocks
        )

    # ------------------------------------------------------------------
    # Id-native chain integration (the compiled planner's fast path)
    # ------------------------------------------------------------------
    def _decode_chain(
        self, wall_ids: np.ndarray, signs: np.ndarray
    ) -> List[Tuple[DirectedEdge, int]]:
        """Canonical edge + sign per chain entry, LRU-cached on the
        chain bytes (pure id → edge decoding; append-proof).  The
        arrays are canonicalised to int32/int8 first, so the digest
        matches :meth:`CompiledTrackingForm.compile_boundary_ids`
        regardless of the caller's platform-promoted widths."""
        wall_ids = np.ascontiguousarray(wall_ids, dtype=np.int32)
        signs = np.ascontiguousarray(signs, dtype=np.int8)
        key = (wall_ids.tobytes(), signs.tobytes())
        decoded = self._chain_edges.get(key)
        if decoded is not None:
            self._chain_edges.move_to_end(key)
            return decoded
        edge_of = self._interner.edge
        decoded = [
            (edge_of(int(eid)), int(sign))
            for eid, sign in zip(wall_ids, signs)
        ]
        self._chain_edges[key] = decoded
        while len(self._chain_edges) > _CHAIN_CACHE_SIZE:
            self._chain_edges.popitem(last=False)
        return decoded

    def integrate_until_ids(
        self, wall_ids: np.ndarray, signs: np.ndarray, t: float
    ) -> int:
        self._guard()
        total = sum(
            b.integrate_until_ids(wall_ids, signs, t) for b in self._blocks
        )
        tail = self._tail
        if tail.total_events:
            for edge, sign in self._decode_chain(wall_ids, signs):
                total += sign * tail.net_until(edge, t)
        return int(total)

    def integrate_between_ids(
        self, wall_ids: np.ndarray, signs: np.ndarray, t1: float, t2: float
    ) -> int:
        if t2 < t1:
            raise QueryError(f"inverted time interval [{t1}, {t2}]")
        self._guard()
        total = sum(
            b.integrate_between_ids(wall_ids, signs, t1, t2)
            for b in self._blocks
        )
        tail = self._tail
        if tail.total_events:
            for edge, sign in self._decode_chain(wall_ids, signs):
                total += sign * tail.net_between(edge, t1, t2)
        return int(total)

    # ------------------------------------------------------------------
    # Introspection / interop
    # ------------------------------------------------------------------
    @property
    def generation(self) -> int:
        """Monotonic content version: bumps on every accepted append,
        compaction and block merge.  Everything memoised on this
        store's answers (flight digests, standing-count caches) keys
        on it."""
        return self._generation

    @property
    def tail_events(self) -> int:
        return len(self._tail_ts)

    @property
    def block_events(self) -> int:
        return sum(b.total_events for b in self._blocks)

    @property
    def block_count(self) -> int:
        return len(self._blocks)

    @property
    def total_events(self) -> int:
        return self.tail_events + self.block_events

    def edges(self) -> Iterator[DirectedEdge]:
        """Canonical edges with recorded crossings, across all levels."""
        seen = set(self._tail.edges())
        for block in self._blocks:
            seen.update(block.edges())
        return iter(sorted(seen))

    def timestamps(
        self, edge: DirectedEdge
    ) -> Tuple[List[float], List[float]]:
        plus: List[float] = []
        minus: List[float] = []
        for level in [self._tail] + self._blocks:
            p, m = level.timestamps(edge)
            plus.extend(p)
            minus.extend(m)
        return (sorted(plus), sorted(minus))

    def event_count(self, edge: DirectedEdge) -> int:
        return self._tail.event_count(edge) + sum(
            b.event_count(edge) for b in self._blocks
        )

    @property
    def edge_count(self) -> int:
        return len(list(self.edges()))

    def storage_profile(self) -> List[int]:
        return sorted(self.event_count(edge) for edge in self.edges())

    def storage_report(self) -> dict:
        """Bytes-per-component accounting in the unified store schema.

        Block components are aggregated across all compacted blocks
        under a ``blocks.`` prefix (compressed deployments show the
        succinct layout there); the mutable tail is charged its
        nominal columnar cost (8B timestamp + 4B edge id + 1B
        direction per staged event).
        """
        components = {"tail": int(len(self._tail_ts) * 13)}
        for block in self._blocks:
            for name, nbytes in block.storage_report()["components"].items():
                key = f"blocks.{name}"
                components[key] = components.get(key, 0) + int(nbytes)
        return {
            "store": type(self).__name__,
            "events": int(self.total_events),
            "total_bytes": int(sum(components.values())),
            "components": components,
        }

    def snapshot_columns(self) -> EventColumns:
        """All stored events as one time-sorted
        :class:`~repro.trajectories.EventColumns` (shard-rebuild and
        batch-interop snapshot)."""
        self._guard()
        parts = [block.to_columns() for block in self._blocks]
        columns = EventColumns(
            interner=self._interner,
            edge_id=np.concatenate(
                [p.edge_id for p in parts]
                + [np.asarray(self._tail_ids, dtype=np.int32)]
            ),
            direction=np.concatenate(
                [p.direction for p in parts]
                + [np.asarray(self._tail_dirs, dtype=np.int8)]
            ),
            t=np.concatenate(
                [p.t for p in parts]
                + [np.asarray(self._tail_ts, dtype=np.float64)]
            ),
        )
        return columns.time_sorted()

    def describe(self) -> Dict[str, object]:
        """Layout summary (CLI, dashboards, tests)."""
        return {
            "tail_events": self.tail_events,
            "block_events": self.block_events,
            "blocks": self.block_count,
            "compactions": self.compactions,
            "block_merges": self.block_merges,
            "generation": self.generation,
            "observed_total": self.observed_total,
            "compact_every": self.compact_every,
            "max_blocks": self.max_blocks,
            "compress": self.compress,
            "closed": self.closed,
        }

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        return (
            f"StreamingEventStore(tail={self.tail_events}, "
            f"blocks={self.block_count}x{self.block_events}ev, "
            f"generation={self.generation}, {state})"
        )


def replay(
    store: StreamingEventStore,
    events: Sequence[CrossingEvent],
    batch: Optional[int] = None,
) -> int:
    """Feed an event sequence through the store in arrival batches
    (convenience for tests, benchmarks and the CLI demo).  Returns the
    number of observed events."""
    if batch is None:
        batch = store.compact_every
    observed = 0
    for start in range(0, len(events), max(batch, 1)):
        observed += store.append_events(events[start:start + batch])
    return observed
