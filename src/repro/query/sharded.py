"""The sharded scatter-gather query engine (district-parallel reads).

:class:`ShardedQueryEngine` runs the compiled read path across worker
processes by exploiting the same spatial decomposition the paper's
in-network design rests on: events partition cleanly by the *district*
their wall lies in, and the signed boundary integral of Theorems
4.2/4.3 is **linear over events** — so the exact answer of any query
is the sum of the per-shard answers over the shards whose events can
touch its boundary.

Pipeline:

1. **Partition** (construction time): the mobility domain is split
   into K districts (:class:`~repro.mobility.Strata` Voronoi seeds, or
   caller-provided strata); every monitored wall — and therefore every
   observed event — is assigned to the district containing its
   midpoint.  Each shard's event slice is compiled into its own
   :class:`~repro.forms.CompiledTrackingForm` and packed into a
   :mod:`multiprocessing.shared_memory` segment (:mod:`repro.shm`), so
   workers attach zero-copy views instead of unpickling megabytes.
2. **Route** (per query): the parent resolves bbox → junctions →
   region approximation with its own
   :class:`~repro.query.CompiledQueryPlanner`, then consults a
   precomputed region×shard reachability table (shard *s* can reach
   region *r* iff *s* holds at least one event on a wall adjacent to
   *r*).  Misses are answered locally; queries no shard can affect are
   answered locally with value 0 and exact structural accounting.
3. **Scatter/gather**: per-shard sub-batches run a stock
   :class:`~repro.query.QueryEngine` ``execute_batch`` over the
   shard's attached form; the parent sums per-shard values (elementwise
   then ``min`` for ``static_eval="min"``, which is *not* linear and
   must be folded over the summed endpoint totals) and re-emits results
   **in input order**, field-identical to the single-process compiled
   planner: same values, misses, region ids and edge/sensor/hop
   accounting.  Only timing fields (``elapsed``, ``cache_served``,
   provenance) differ, as they describe a different execution shape.

Metrics: the parent accounts the canonical per-query series
(``repro_queries_total``, misses, sensors/edges, latency) exactly once
per query; worker registries ship per-call deltas
(:func:`repro.obs.metrics.diff_dumps`) that the parent absorbs with
those canonical names skipped, so internal counters (searchsorted
calls, boundary-cache outcomes, batch-cache hits) stay visible without
fan-out double counting.  Per-batch stage wall times (``route`` /
``scatter`` / ``worker_wait`` / ``merge``) land in the
``repro_sharded_stage_seconds`` histogram.

Distributed tracing: when the parent's tracer is live each worker call
records its own span tree (``worker.run`` → ``worker.attach`` plus the
inner engine's ``query.execute_batch`` resolve/integrate spans) on a
worker-local :class:`~repro.obs.Tracer`, ships it back as plain dicts
next to the metric deltas, and the parent grafts it under its
``sharded.scatter`` span.  Worker spans keep their recording pid (and
use the shard id as tid), so the Chrome-trace export draws one
swimlane per worker process; timestamps are directly comparable
because ``perf_counter`` reads the shared ``CLOCK_MONOTONIC`` under
fork.  A :class:`~repro.obs.FlightRecorder` (``flight=``) additionally
captures one cheap record per query — digest, fan-out, stage timings —
with slow queries promoted to carry the batch's grafted worker spans.

Delegation: ``shards=1``, ``workers=0`` and fault-injecting engines
run the single-process :class:`~repro.query.QueryEngine` directly —
faulty dispatch consumes the injector's per-query attempt stream,
which does not decompose over shards.

Lifecycle: the engine owns its segments and worker pool.  Use it as a
context manager or call :meth:`ShardedQueryEngine.close`; a
``weakref.finalize`` (which also registers atexit) guarantees the
``/dev/shm`` segments are unlinked even on abandoned engines or
worker crashes.
"""

from __future__ import annotations

import multiprocessing
import os
import time
import weakref
from concurrent.futures import as_completed, ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import QueryError
from ..forms import CompiledTrackingForm
from ..mobility import EXT, Strata, voronoi_strata
from ..network.faults import FaultInjector, RetryPolicy
from ..obs import (
    FlightRecorder,
    Instrumentation,
    MetricsRegistry,
    NULL_INSTRUMENTATION,
    NULL_TRACER,
    Profiler,
    SECONDS_BUCKETS,
    Tracer,
    get_logger,
    get_registry,
    kv,
    memory_snapshot,
    set_registry,
)
from ..obs.explain import QueryExplain, build_sharded_explain
from ..obs.metrics import diff_dumps
from ..sampling import SensorNetwork
from ..shm import destroy_segment
from ..trajectories import EventColumns
from .engine import QueryEngine, STATIC_EVAL_MODES
from .planner import CompiledQueryPlanner
from .result import STATIC, QueryResult, RangeQuery

#: Per-query metric names the parent accounts canonically; worker
#: dumps are absorbed with these skipped so a query scattered to k
#: shards is still counted once.
PARENT_ACCOUNTED_METRICS = (
    "repro_queries_total",
    "repro_query_misses_total",
    "repro_query_seconds_total",
    "repro_query_latency_seconds",
    "repro_query_sensors_accessed_total",
    "repro_query_edges_accessed_total",
    "repro_query_batch_fill_seconds_total",
)

#: Scatter-gather pipeline stages, in execution order, as labelled in
#: the ``repro_sharded_stage_seconds`` histogram.
SHARDED_STAGES = ("route", "scatter", "worker_wait", "merge")

log = get_logger("query.sharded")


def shard_of_edges(domain, strata: Strata) -> np.ndarray:
    """District label per interned edge id, by wall midpoint.

    Geofence (EXT) walls sit on the domain rim; they take the district
    of their junction endpoint.  The labelling depends only on the
    domain geometry and the strata seeds, so every process derives the
    same partition.
    """
    interner = domain.edge_interner
    n = len(interner)
    points = np.empty((n, 2), dtype=float)
    edge_of = interner.edge
    position = domain.position
    for eid in range(n):
        u, v = edge_of(eid)
        if u == EXT:
            points[eid] = position(v)
        elif v == EXT:
            points[eid] = position(u)
        else:
            ux, uy = position(u)
            vx, vy = position(v)
            points[eid] = ((ux + vx) / 2.0, (uy + vy) / 2.0)
    return strata.assign(points)


# ----------------------------------------------------------------------
# Worker side: one process-global context per pool worker
# ----------------------------------------------------------------------
_WORKER: Dict[str, object] = {}


def _worker_init(
    network: SensorNetwork,
    descriptors: Sequence[dict],
    static_eval: str,
    access_mode: str,
    collect_metrics: bool,
    collect_spans: bool = False,
    profile_hz: float = 0.0,
) -> None:
    """Pool initializer: fresh registry + lazy per-shard engine slots.

    A forked worker inherits the parent's process-global registry
    *values*; swapping in a fresh registry before any engine is built
    makes the per-call dumps pure deltas of this worker's own work.
    With ``collect_spans`` the worker also keeps a local tracer whose
    per-call span trees ship back for grafting into the parent's trace.

    ``profile_hz`` > 0 additionally starts a worker-local continuous
    :class:`~repro.obs.Profiler` attributed to the worker tracer (a
    live tracer is forced on, so samples have spans to join); each
    ``_worker_run`` call drains its stack table home with the metric
    deltas.
    """
    set_registry(MetricsRegistry())
    _WORKER.clear()
    tracer = (
        Tracer() if (collect_spans or profile_hz > 0) else NULL_TRACER
    )
    profiler = None
    if profile_hz > 0:
        profiler = Profiler(tracer=tracer, hz=profile_hz).start()
    _WORKER.update(
        network=network,
        descriptors=list(descriptors),
        static_eval=static_eval,
        access_mode=access_mode,
        collect_metrics=collect_metrics,
        tracer=tracer,
        profiler=profiler,
        forms={},
        engines={},
        last_dump=None,
    )


def _worker_engine(shard: int, static_eval: str) -> QueryEngine:
    engines: Dict[Tuple[int, str], QueryEngine] = _WORKER["engines"]
    key = (shard, static_eval)
    engine = engines.get(key)
    if engine is None:
        forms: Dict[int, CompiledTrackingForm] = _WORKER["forms"]
        form = forms.get(shard)
        if form is None:
            network: SensorNetwork = _WORKER["network"]
            descriptor = _WORKER["descriptors"][shard]
            # Descriptor-driven dispatch: compressed shards pack the
            # succinct wire format and self-identify via "form".
            if descriptor.get("form") == "compressed":
                from ..forms import CompressedTrackingForm

                attach = CompressedTrackingForm.shm_attach
            else:
                attach = CompiledTrackingForm.shm_attach
            form = attach(descriptor, network.domain.edge_interner)
            forms[shard] = form
        engine = QueryEngine(
            _WORKER["network"],
            form,
            access_mode=str(_WORKER["access_mode"]),
            static_eval=static_eval,
            planner="compiled",
            instrumentation=Instrumentation(
                tracer=_WORKER["tracer"],
                metrics=get_registry(),
                provenance=False,
            ),
        )
        engines[key] = engine
    return engine


def _worker_run(shard: int, indexed: List[Tuple[int, RangeQuery]]):
    """Execute a sub-batch on one shard; return
    ``(shard, payload, dump, spans, profile)``.

    Payload rows are ``(index, partial_values, edges, nodes)`` where
    ``partial_values`` has two entries — the start/end snapshot sums —
    for static queries under ``static_eval="min"`` (min does not
    distribute over the shard sum; the parent folds it over the summed
    endpoint totals) and one entry otherwise.

    With tracing on, the call records ``worker.run`` → ``worker.attach``
    plus the inner engine's batch spans (resolve fills and per-query
    ``query.integrate``) on the worker-local tracer, then ships the new
    roots back as dicts stamped with this pid (tid = shard id + 1) and
    prunes them — the worker tracer never grows across calls.

    With a worker-local profiler, one anchor sample is forced inside
    the ``worker.run`` span (a fast sub-batch could otherwise fall
    entirely between sampler ticks) and the drained stack-table delta
    ships home as ``profile`` for the parent to merge under the
    grafted span path.
    """
    queries = [query for _, query in indexed]
    static_eval = str(_WORKER["static_eval"])
    tracer = _WORKER["tracer"]
    roots_before = len(tracer.roots)
    payload: List[Tuple[int, Tuple[float, ...], int, int]] = []
    with tracer.span(
        "worker.run", shard=shard, queries=len(queries), pid=os.getpid()
    ):
        with tracer.span("worker.attach", shard=shard):
            if static_eval == "min":
                engines = (
                    _worker_engine(shard, "start"),
                    _worker_engine(shard, "end"),
                )
            else:
                engines = (_worker_engine(shard, static_eval),)
        if static_eval == "min":
            starts = engines[0].execute_batch(queries)
            ends = engines[1].execute_batch(queries)
            for (index, query), r_start, r_end in zip(indexed, starts, ends):
                if r_end.missed:
                    raise QueryError(
                        f"shard {shard} missed a query the router answered"
                    )
                if query.kind == STATIC:
                    values = (r_start.value, r_end.value)
                else:
                    values = (r_end.value,)
                payload.append(
                    (index, values, r_end.edges_accessed, r_end.nodes_accessed)
                )
        else:
            results = engines[0].execute_batch(queries)
            for (index, _), result in zip(indexed, results):
                if result.missed:
                    raise QueryError(
                        f"shard {shard} missed a query the router answered"
                    )
                payload.append(
                    (
                        index,
                        (result.value,),
                        result.edges_accessed,
                        result.nodes_accessed,
                    )
                )
        profiler = _WORKER.get("profiler")
        if profiler is not None:
            profiler.sample_once()
    dump = None
    if _WORKER["collect_metrics"]:
        current = get_registry().dump()
        dump = diff_dumps(current, _WORKER["last_dump"])
        _WORKER["last_dump"] = current
    spans = None
    if tracer.enabled:
        pid = os.getpid()
        spans = [
            root.to_dict(pid, shard + 1)
            for root in tracer.roots[roots_before:]
        ]
        del tracer.roots[roots_before:]
    profile = profiler.table.drain() if profiler is not None else None
    return shard, payload, dump, spans, profile


# ----------------------------------------------------------------------
# Parent side
# ----------------------------------------------------------------------
def _release(executor: Optional[ProcessPoolExecutor], segments: list) -> None:
    """Tear down a pool and unlink owned segments (finalizer-safe)."""
    if executor is not None:
        try:
            executor.shutdown(wait=True, cancel_futures=True)
        except Exception:
            pass
    while segments:
        destroy_segment(segments.pop())


def _usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


class ShardedQueryEngine:
    """Scatter-gather query execution over K district shards.

    Drop-in for the read surface of :class:`~repro.query.QueryEngine`
    (``execute`` / ``execute_many`` / ``execute_batch``) with exact
    results; built for *batch* traffic — single queries pay the
    scatter round trip.
    """

    def __init__(
        self,
        network: SensorNetwork,
        columns: EventColumns,
        shards: int = 4,
        workers: Optional[int] = None,
        strata: Optional[Strata] = None,
        access_mode: str = "perimeter",
        static_eval: str = "end",
        instrumentation: Optional[Instrumentation] = None,
        faults: Optional[FaultInjector] = None,
        dispatch_strategy: str = "perimeter_walk",
        retry_policy: Optional[RetryPolicy] = None,
        store=None,
        seed: int = 0,
        collect_worker_metrics: bool = True,
        flight: Optional[FlightRecorder] = None,
        compress: bool = False,
        tick_bits: int = 0,
    ) -> None:
        if not isinstance(columns, EventColumns):
            raise QueryError(
                "ShardedQueryEngine needs columnar events (EventColumns)"
            )
        if strata is not None:
            shards = strata.count
        if shards < 1:
            raise QueryError("shards must be >= 1")
        if static_eval not in STATIC_EVAL_MODES:
            raise QueryError(f"unknown static_eval {static_eval!r}")
        self.network = network
        self.shards = int(shards)
        self.access_mode = access_mode
        self.static_eval = static_eval
        self.compress = bool(compress)
        self.tick_bits = int(tick_bits)
        self.obs = (
            instrumentation
            if instrumentation is not None
            else NULL_INSTRUMENTATION
        )
        self.flight = flight
        #: Data version of the source store at partition time (the
        #: shards are a snapshot of exactly that version); ``None``
        #: for static build-once stores.
        self._store_generation = getattr(store, "generation", None)
        self._registry = get_registry()
        self._bind_metrics()
        #: Stage wall times and per-query fan-outs of the last batch
        #: (read by :meth:`explain` and the flight recorder).
        self._last_stage_s: Dict[str, float] = {}
        self._last_fanout: List[int] = []

        if workers is None:
            workers = min(self.shards, max(_usable_cores(), 1))
        self.workers = max(int(workers), 0)

        self._segments: list = []
        self._executor: Optional[ProcessPoolExecutor] = None
        self._delegate: Optional[QueryEngine] = None
        self._planner: Optional[CompiledQueryPlanner] = None

        # Paths that cannot (faults) or should not (a single shard, no
        # workers) fan out run the stock single-process engine over the
        # full form — same network, same store semantics, zero IPC.
        if faults is not None or self.shards == 1 or self.workers == 0:
            self._delegate = QueryEngine(
                network,
                store
                if store is not None
                else network.build_form(
                    columns, compress=compress, tick_bits=tick_bits
                ),
                access_mode=access_mode,
                static_eval=static_eval,
                instrumentation=instrumentation,
                faults=faults,
                dispatch_strategy=dispatch_strategy,
                retry_policy=retry_policy,
                flight=flight,
            )
            self._finalizer = weakref.finalize(
                self, _release, None, self._segments
            )
            return

        if strata is None:
            strata = voronoi_strata(
                network.domain.bounds,
                districts=self.shards,
                rng=np.random.default_rng(seed),
            )
        self.strata = strata

        tracer = self.obs.tracer
        with tracer.span("sharded.partition", shards=self.shards):
            self._shard_of_edge = shard_of_edges(network.domain, strata)
            observed = network.observed_columns(columns)
            labels = self._shard_of_edge[observed.edge_id]
            self.shard_events: List[int] = []
            shard_edge_ids: List[np.ndarray] = []
            descriptors: List[dict] = []
            for shard in range(self.shards):
                part = observed.select(np.flatnonzero(labels == shard))
                self.shard_events.append(len(part))
                shard_edge_ids.append(np.unique(part.edge_id))
                if self.compress:
                    from ..forms import CompressedTrackingForm

                    form = CompressedTrackingForm(
                        columns.interner,
                        part.edge_id,
                        part.direction,
                        part.t,
                        tick_bits=self.tick_bits,
                    )
                else:
                    form = CompiledTrackingForm(
                        columns.interner, part.edge_id, part.direction, part.t
                    )
                handle, descriptor = form.shm_pack(hint=f"shard{shard}")
                self._segments.append(handle)
                descriptors.append(descriptor)

        with tracer.span("sharded.route_table"):
            self._planner = CompiledQueryPlanner(network)
            index = network.compiled_index()
            entry_region = np.repeat(
                np.arange(index.n_regions, dtype=np.int64),
                np.diff(index.rw_offsets),
            )
            n_ids = len(network.domain.edge_interner)
            region_shards = np.zeros(
                (index.n_regions, self.shards), dtype=bool
            )
            for shard, edge_ids in enumerate(shard_edge_ids):
                present = np.zeros(n_ids, dtype=bool)
                present[edge_ids] = True
                hit = present[index.rw_wall_ids]
                if hit.any():
                    region_shards[np.unique(entry_region[hit]), shard] = True
            self._region_shards = region_shards

        context = None
        if "fork" in multiprocessing.get_all_start_methods():
            context = multiprocessing.get_context("fork")
        # Workers sample at the parent profiler's rate so the merged
        # flamegraph weighs parent and shard time on the same scale.
        profiler = self.obs.profiler
        self._executor = ProcessPoolExecutor(
            max_workers=self.workers,
            mp_context=context,
            initializer=_worker_init,
            initargs=(
                network,
                descriptors,
                static_eval,
                access_mode,
                collect_worker_metrics,
                self.obs.tracer.enabled,
                profiler.hz if profiler is not None else 0.0,
            ),
        )
        self._finalizer = weakref.finalize(
            self, _release, self._executor, self._segments
        )

    def _bind_metrics(self) -> None:
        registry = self._registry
        self._metric_sensors = registry.counter(
            "repro_query_sensors_accessed_total",
            help="Communication sensors contacted by answered queries",
        )
        self._metric_edges = registry.counter(
            "repro_query_edges_accessed_total",
            help="Boundary walls integrated by answered queries",
        )
        self._metric_seconds = registry.counter(
            "repro_query_seconds_total",
            help="Wall seconds spent executing queries",
        )
        self._metric_latency = registry.histogram(
            "repro_query_latency_seconds",
            buckets=SECONDS_BUCKETS,
            help="Per-query wall time (answered and missed)",
        )
        self._metric_batches = registry.counter(
            "repro_sharded_batches_total",
            help="Scatter-gather batches executed by sharded engines",
        )
        self._metric_scattered = registry.counter(
            "repro_sharded_subqueries_total",
            help="Per-shard sub-queries scattered to workers",
        )
        self._metric_fanout = registry.histogram(
            "repro_sharded_fanout",
            help="Shards touched per answered query",
        )
        self._metric_stage = {
            stage: registry.histogram(
                "repro_sharded_stage_seconds",
                buckets=SECONDS_BUCKETS,
                help="Scatter-gather stage wall seconds per batch",
                stage=stage,
            )
            for stage in SHARDED_STAGES
        }
        self._metric_crashes = registry.counter(
            "repro_shard_worker_crash_total",
            help="Scatter-gather batches aborted by a dead worker pool",
        )
        self._metric_queries: Dict[Tuple[str, str], object] = {}
        self._metric_misses: Dict[Tuple[str, str], object] = {}

    def _count(self, table, name, help_text, query: RangeQuery) -> None:
        key = (query.kind, query.bound)
        counter = table.get(key)
        if counter is None:
            counter = self._registry.counter(
                name, help=help_text, kind=query.kind, bound=query.bound
            )
            table[key] = counter
        counter.inc()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut the pool down and unlink the shared-memory segments.

        Idempotent; also invoked by ``weakref.finalize`` on garbage
        collection and at interpreter exit, and by ``with`` blocks.
        """
        self._finalizer()

    @property
    def closed(self) -> bool:
        return not self._finalizer.alive

    def __enter__(self) -> "ShardedQueryEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def domain(self):
        return self.network.domain

    @property
    def planner_in_use(self) -> str:
        if self._delegate is not None:
            return self._delegate.planner_in_use
        return "sharded"

    @property
    def simulator(self):
        """Fault-tolerant dispatcher of the delegate engine (``None``
        on the scatter path, which never runs fault injection)."""
        if self._delegate is not None:
            return self._delegate.simulator
        return None

    def describe(self) -> Dict[str, object]:
        """Shard layout summary (CLI and docs)."""
        if self._delegate is not None:
            return {
                "mode": "delegated",
                "shards": 1,
                "workers": 0,
                "planner": self._delegate.planner_in_use,
            }
        return {
            "mode": "sharded",
            "shards": self.shards,
            "workers": self.workers,
            "compress": self.compress,
            "events_per_shard": list(self.shard_events),
            "segment_bytes": [s.size for s in self._segments],
            "reachable_regions_per_shard": [
                int(c) for c in self._region_shards.sum(axis=0)
            ],
        }

    def explain(self, query: RangeQuery) -> QueryExplain:
        """EXPLAIN one query through the scatter path.

        Parity with :meth:`~repro.query.QueryEngine.explain`: the query
        *runs*, and the plan reports what that run measured — the
        parent's routing resolution, the merged shard accounting, the
        per-stage wall times and the shard fan-out.  Engines that
        collapsed to a single process delegate to the stock EXPLAIN.
        """
        if self._delegate is not None:
            return self._delegate.explain(query)
        result = self.execute(query)
        # The router's own resolution — the same call the route stage
        # made (the parent planner holds no per-box cache, so this
        # re-reads what routing read).
        junctions = self._planner.junction_ids(query.box)
        return build_sharded_explain(
            self,
            result,
            junction_count=len(junctions),
            fanout=self._last_fanout[0] if self._last_fanout else 0,
            stage_s=dict(self._last_stage_s),
        )

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def execute(self, query: RangeQuery) -> QueryResult:
        """One query through the scatter path (batch traffic amortises
        the round trip; prefer :meth:`execute_batch`)."""
        return self.execute_batch([query])[0]

    def execute_many(
        self, queries: Sequence[RangeQuery]
    ) -> List[QueryResult]:
        """Alias of :meth:`execute_batch`: the scatter path is always
        batched, and the two produce identical result fields."""
        return self.execute_batch(queries)

    def execute_batch(
        self, queries: Sequence[RangeQuery]
    ) -> List[QueryResult]:
        """Scatter a battery over the touched shards and gather.

        **Ordering contract**: ``results[i]`` answers ``queries[i]``
        for every ``i`` — results are slotted by input index, so shard
        completion order (which interleaves freely under the pool)
        never reorders the output.  Results are field-identical to the
        single-process compiled planner except for the timing fields:
        ``elapsed`` is the batch wall time divided evenly over the
        batch (per-query attribution has no meaning when k shards work
        concurrently) and ``cache_served``/``provenance`` are not
        reported.
        """
        if self._delegate is not None:
            return self._delegate.execute_batch(queries)
        if self.closed:
            raise QueryError("sharded engine is closed")
        n = len(queries)
        tracer = self.obs.tracer
        planner = self._planner
        self._metric_batches.inc()
        pc = time.perf_counter
        start = pc()

        # Parent-side shared-structure caches, as in the single-process
        # batched path: one resolution per distinct box / (box, bound).
        junctions_by_box: Dict[object, np.ndarray] = {}
        regions_cache: Dict[Tuple[object, str], Optional[Tuple[int, ...]]] = {}
        chain_cache: Dict[Tuple[int, ...], object] = {}
        sensors_cache: Dict[Tuple[int, ...], int] = {}

        # Per-slot plan: ("miss",) | ("zero", regions) | ("merge",).
        plans: List[Tuple] = [()] * n
        merged: Dict[int, Dict[str, object]] = {}
        per_shard: Dict[int, List[int]] = {}
        fanouts: List[int] = [0] * n

        with tracer.span(
            "query.execute_sharded", queries=n, shards=self.shards
        ):
            with tracer.span("sharded.route", queries=n):
                for i, query in enumerate(queries):
                    self._count(
                        self._metric_queries,
                        "repro_queries_total",
                        "Queries executed, by kind and bound",
                        query,
                    )
                    box = query.box
                    junctions = junctions_by_box.get(box)
                    if junctions is None:
                        junctions = planner.junction_ids(box)
                        junctions_by_box[box] = junctions
                    if not len(junctions):
                        plans[i] = ("miss",)
                        continue
                    region_key = (box, query.bound)
                    if region_key in regions_cache:
                        regions = regions_cache[region_key]
                    else:
                        regions = planner.region_ids(junctions, query.bound)
                        regions_cache[region_key] = regions
                    if regions is None:
                        plans[i] = ("miss",)
                        continue
                    touched = np.flatnonzero(
                        self._region_shards[np.asarray(regions)].any(axis=0)
                    )
                    self._metric_fanout.observe(len(touched))
                    fanouts[i] = len(touched)
                    if not len(touched):
                        plans[i] = ("zero", regions)
                        continue
                    plans[i] = ("merge",)
                    width = (
                        2
                        if (
                            self.static_eval == "min"
                            and query.kind == STATIC
                        )
                        else 1
                    )
                    merged[i] = {
                        "regions": regions,
                        "values": [0.0] * width,
                        "edges": 0,
                        "nodes": 0,
                    }
                    for shard in touched.tolist():
                        per_shard.setdefault(shard, []).append(i)

            t_routed = pc()
            # The scatter span wraps submission *and* the gather wait so
            # the grafted worker spans fall inside their parent interval;
            # stage metrics split the two ("scatter" = submission cost,
            # "worker_wait" = time until the last sub-batch returned).
            batch_spans: List[dict] = []
            with tracer.span(
                "sharded.scatter", subbatches=len(per_shard)
            ) as scatter_span:
                futures: Dict[object, int] = {}
                for shard, indices in per_shard.items():
                    self._metric_scattered.inc(len(indices))
                    try:
                        future = self._executor.submit(
                            _worker_run,
                            shard,
                            [(i, queries[i]) for i in indices],
                        )
                    except BrokenProcessPool as exc:
                        # An already-broken pool fails at submit time.
                        self._worker_crashed(shard, exc)
                    futures[future] = shard
                t_submitted = pc()
                with tracer.span("sharded.gather", subbatches=len(futures)):
                    for future in as_completed(futures):
                        try:
                            (
                                shard,
                                payload,
                                dump,
                                spans,
                                profile,
                            ) = future.result()
                        except BrokenProcessPool as exc:
                            self._worker_crashed(futures[future], exc)
                        if spans:
                            batch_spans.extend(spans)
                            tracer.graft(spans, under=scatter_span)
                        if dump is not None:
                            self._registry.absorb(
                                dump, skip=PARENT_ACCOUNTED_METRICS
                            )
                        if profile and self.obs.profiler is not None:
                            # Worker samples nest exactly where the
                            # grafted worker.run spans sit in the
                            # parent trace, so one flamegraph covers
                            # parent + all shard workers.
                            self.obs.profiler.table.merge(
                                profile,
                                prefix=(
                                    "query.execute_sharded",
                                    "sharded.scatter",
                                ),
                            )
                        for index, values, edges, nodes in payload:
                            entry = merged[index]
                            acc: List[float] = entry["values"]
                            for j, value in enumerate(values):
                                acc[j] += value
                            # Structural accounting is region-determined,
                            # hence identical across shards.
                            entry["edges"] = edges
                            entry["nodes"] = nodes
            t_gathered = pc()

            elapsed = t_gathered - start
            share = elapsed / n if n else 0.0
            self._metric_seconds.inc(elapsed)
            results: List[QueryResult] = []
            for i, query in enumerate(queries):
                self._metric_latency.observe(share)
                plan = plans[i]
                if plan[0] == "miss":
                    self._count(
                        self._metric_misses,
                        "repro_query_misses_total",
                        "Queries with no region approximation, by kind "
                        "and bound",
                        query,
                    )
                    results.append(
                        QueryResult(
                            query=query, value=0.0, missed=True,
                            elapsed=share,
                        )
                    )
                    continue
                if plan[0] == "zero":
                    regions = plan[1]
                    edges, nodes = self._zero_accounting(
                        regions, chain_cache, sensors_cache
                    )
                    value = 0.0
                else:
                    entry = merged[i]
                    regions = entry["regions"]
                    acc = entry["values"]
                    value = (
                        float(min(acc)) if len(acc) == 2 else float(acc[0])
                    )
                    edges = entry["edges"]
                    nodes = entry["nodes"]
                self._metric_edges.inc(edges)
                self._metric_sensors.inc(nodes)
                results.append(
                    QueryResult(
                        query=query,
                        value=value,
                        missed=False,
                        regions=regions,
                        edges_accessed=edges,
                        nodes_accessed=nodes,
                        hops=edges,
                        elapsed=share,
                    )
                )
            stage_s = {
                "route": t_routed - start,
                "scatter": t_submitted - t_routed,
                "worker_wait": t_gathered - t_submitted,
                "merge": pc() - t_gathered,
            }
            for stage, seconds in stage_s.items():
                self._metric_stage[stage].observe(seconds)
            self._last_stage_s = stage_s
            self._last_fanout = fanouts
            if self.flight is not None:
                self._record_flight(results, fanouts, stage_s, batch_spans)
        assert len(results) == n and all(
            result.query is query
            for result, query in zip(results, queries)
        ), "sharded gather broke the input-order result contract"
        return results

    def _worker_crashed(self, shard: int, exc: BaseException) -> None:
        """Account and surface a dead worker pool (never silent).

        The pool is unrecoverable once broken; the finalizer still owns
        segment cleanup, so callers can (and should) ``close()``.
        """
        self._metric_crashes.inc()
        log.error(
            "shard worker pool died %s",
            kv(shard=shard, error=type(exc).__name__),
        )
        raise QueryError(
            f"sharded worker pool died while executing shard {shard}"
        ) from exc

    def _record_flight(
        self,
        results: List[QueryResult],
        fanouts: List[int],
        stage_s: Dict[str, float],
        batch_spans: List[dict],
    ) -> None:
        """One flight record per query of the batch.

        Stage timings and grafted worker spans describe the *batch* the
        query rode in (a scattered query has no private stage
        breakdown), so slow promotions share the batch detail.
        """
        flight = self.flight
        generation = self._store_generation
        for result, fanout in zip(results, fanouts):
            record = flight.record(
                result.query,
                planner="sharded",
                elapsed_s=result.elapsed,
                value=result.value,
                missed=result.missed,
                fanout=fanout,
                stage_s=stage_s,
                generation=generation,
            )
            if record.slow:
                detail: Dict[str, object] = {
                    "shards": self.shards,
                    "stage_s": dict(stage_s),
                }
                if batch_spans:
                    detail["spans"] = batch_spans
                snapshot = memory_snapshot()
                record.peak_rss_bytes = snapshot["peak_rss_bytes"]
                record.alloc_peak_bytes = snapshot["alloc_peak_bytes"]
                profiler = self.obs.profiler
                if profiler is not None:
                    detail["profile_top"] = profiler.table.top_rows(5)
                record.detail = detail

    def _zero_accounting(
        self,
        regions: Tuple[int, ...],
        chain_cache: Dict,
        sensors_cache: Dict,
    ) -> Tuple[int, int]:
        """Edge/sensor accounting for a query no shard can affect.

        The approximation exists but no shard holds events on any wall
        adjacent to its regions, so the integral is exactly 0; the
        structural accounting still has to match the single-process
        engine, so the parent computes the chain itself.
        """
        planner = self._planner
        chain = chain_cache.get(regions)
        if chain is None:
            chain = planner.boundary(regions)
            chain_cache[regions] = chain
        nodes = sensors_cache.get(regions)
        if nodes is None:
            if self.access_mode == "flood":
                nodes = len(planner.flood_sensors(regions))
            else:
                nodes = len(planner.chain_sensors(chain))
            sensors_cache[regions] = nodes
        return chain.size, nodes
