"""Continuous (standing) range count queries.

The paper's motivating application — cell-tower load balancing, Fig. 1
— monitors region counts *continuously* as updates stream in.  This
module provides that mode: a :class:`ContinuousCountMonitor` registers
standing regions once, resolves each to a boundary chain of the
executing network, and then folds the crossing-event stream
incrementally, maintaining every region's live count in O(boundary
lookup) per event instead of re-running queries.

This is a direct consequence of the differential-form design: the
count's time derivative is exactly the signed crossing rate through the
region boundary, so the monitor just adds +/-1 per relevant event.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, Iterable, List, Optional, Set, Tuple

from ..errors import QueryError
from ..geometry import BBox
from ..planar import canonical_edge
from ..sampling import SensorNetwork
from ..trajectories import CrossingEvent

DirectedEdge = Tuple[Hashable, Hashable]


@dataclass
class RegionState:
    """Live state of one monitored region."""

    name: str
    regions: Tuple[int, ...]
    count: float = 0.0
    entries: int = 0
    exits: int = 0
    last_event_time: Optional[float] = None
    #: History of (time, count) checkpoints (kept when enabled).
    history: List[Tuple[float, float]] = field(default_factory=list)
    #: Inward-oriented boundary chain this region resolved to (used by
    #: :meth:`ContinuousCountMonitor.reevaluate` for exact recovery).
    boundary: Tuple[DirectedEdge, ...] = ()


class ContinuousCountMonitor:
    """Streaming maintenance of standing range count queries.

    Regions are registered as rectangles and resolved through the
    network's lower-bound approximation (the only mode that never
    overstates a standing count).  Events are folded with
    :meth:`observe`; the current count of every region is available at
    any time without touching stored timestamps.
    """

    def __init__(
        self, network: SensorNetwork, keep_history: bool = False
    ) -> None:
        self.network = network
        self.keep_history = keep_history
        self._states: Dict[str, RegionState] = {}
        #: canonical wall edge -> list of (state, inward head junction set)
        self._subscriptions: Dict[
            Tuple[Hashable, Hashable], List[Tuple[RegionState, Set]]
        ] = {}
        #: (store generation, t) -> counts of the last reevaluation.
        self._resync_memo: Optional[Tuple[int, float, Dict[str, float]]] = (
            None
        )

    # ------------------------------------------------------------------
    def add_region(self, name: str, box: BBox) -> RegionState:
        """Register a standing region; returns its live state handle."""
        if name in self._states:
            raise QueryError(f"region {name!r} already registered")
        junctions = self.network.domain.junctions_in_bbox(box)
        regions = self.network.lower_regions(junctions)
        if not regions:
            raise QueryError(
                f"region {name!r} misses: no sensing region fits inside"
            )
        boundary = tuple(self.network.region_boundary(regions))
        state = RegionState(
            name=name, regions=tuple(regions), boundary=boundary
        )
        inward_heads: Dict[Tuple, Set] = {}
        for tail, head in boundary:
            wall = canonical_edge(tail, head)
            inward_heads.setdefault(wall, set()).add(head)
        for wall, heads in inward_heads.items():
            self._subscriptions.setdefault(wall, []).append((state, heads))
        self._states[name] = state
        self._resync_memo = None
        return state

    def remove_region(self, name: str) -> None:
        """Unregister a standing region."""
        state = self._states.pop(name, None)
        if state is None:
            return
        for wall, subscribers in list(self._subscriptions.items()):
            remaining = [(s, h) for s, h in subscribers if s is not state]
            if remaining:
                self._subscriptions[wall] = remaining
            else:
                del self._subscriptions[wall]
        self._resync_memo = None

    # ------------------------------------------------------------------
    def observe(self, event: CrossingEvent) -> None:
        """Fold one crossing event into every subscribed region.

        The count fold itself is commutative (+1 entry / -1 exit), so
        arrival order does not affect live counts.  The ``(time,
        count)`` *history* is not: a checkpoint stream only means
        anything if times ascend, so with ``keep_history=True`` an
        out-of-order event raises a structured
        :class:`~repro.errors.QueryError` before any state mutates —
        feed time-sorted streams (or re-sort the window) when history
        is on.  Duplicate deliveries are undetectable on anonymous
        events and double-count; recover with :meth:`reevaluate`
        against the backing store.
        """
        wall = canonical_edge(event.tail, event.head)
        subscribers = self._subscriptions.get(wall)
        if not subscribers:
            return
        if self.keep_history:
            for state, _ in subscribers:
                last = state.last_event_time
                if last is not None and event.t < last:
                    raise QueryError(
                        f"out-of-order event at t={event.t} behind "
                        f"region {state.name!r} checkpoint t={last}; "
                        "history checkpoints need a time-sorted stream"
                    )
        for state, inward_heads in subscribers:
            if event.head in inward_heads:
                state.count += 1
                state.entries += 1
            else:
                state.count -= 1
                state.exits += 1
            if state.last_event_time is None:
                state.last_event_time = event.t
            else:
                state.last_event_time = max(state.last_event_time, event.t)
            if self.keep_history:
                state.history.append((event.t, state.count))

    def observe_stream(self, events: Iterable[CrossingEvent]) -> int:
        """Fold a whole event stream; returns events processed."""
        processed = 0
        for event in events:
            self.observe(event)
            processed += 1
        return processed

    # ------------------------------------------------------------------
    def reevaluate(self, store, t: float) -> Dict[str, float]:
        """Recover every region's exact count at time ``t`` from a
        count store, repairing any fold drift (duplicate deliveries,
        replayed windows) in place.

        Each region's stored inward boundary chain is integrated
        through ``store.integrate_until`` — Theorem 4.2, the same
        evaluation a fresh static query would run — and
        ``state.count`` is overwritten with the exact value.
        ``entries``/``exits`` stay as observed-fold telemetry.  When
        the store exposes a ``generation`` (the streaming store does),
        the answer is memoised on ``(generation, t)``, so repeated
        resyncs between appends are free.  Returns the exact counts by
        region name.
        """
        generation = getattr(store, "generation", None)
        memo = self._resync_memo
        if (
            generation is not None
            and memo is not None
            and memo[0] == generation
            and memo[1] == t
        ):
            for name, value in memo[2].items():
                self._states[name].count = value
            return dict(memo[2])
        counts: Dict[str, float] = {}
        for name, state in self._states.items():
            exact = float(store.integrate_until(state.boundary, t))
            state.count = exact
            counts[name] = exact
        if generation is not None:
            self._resync_memo = (generation, t, dict(counts))
        return counts

    # ------------------------------------------------------------------
    def count(self, name: str) -> float:
        """Current count of a standing region."""
        try:
            return self._states[name].count
        except KeyError:
            raise QueryError(f"unknown region {name!r}") from None

    def state(self, name: str) -> RegionState:
        try:
            return self._states[name]
        except KeyError:
            raise QueryError(f"unknown region {name!r}") from None

    def counts(self) -> Dict[str, float]:
        """All live counts."""
        return {name: state.count for name, state in self._states.items()}

    @property
    def region_names(self) -> List[str]:
        return list(self._states)

    @property
    def monitored_walls(self) -> int:
        """Distinct wall edges with at least one subscription."""
        return len(self._subscriptions)
