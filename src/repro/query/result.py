"""Query descriptions and results."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..errors import QueryError
from ..geometry import BBox
from ..obs import QueryProvenance

#: Approximation modes of §4.6 (Fig. 7): R2 (maximal enclosed region)
#: and R1 (minimal containing region).
LOWER = "lower"
UPPER = "upper"

#: Query kinds of §3.3.
STATIC = "static"
TRANSIENT = "transient"


@dataclass(frozen=True)
class RangeQuery:
    """A spatiotemporal range count query.

    ``box`` is the rectangular spatial range (resolved to a union of
    sensing-graph faces at execution time, §5.1.5); ``(t1, t2)`` the
    temporal interval; ``kind`` selects the static or transient count
    (§3.3); ``bound`` the lower or upper spatial approximation (§4.6).
    """

    box: BBox
    t1: float
    t2: float
    kind: str = STATIC
    bound: str = LOWER

    def __post_init__(self) -> None:
        if self.t2 < self.t1:
            raise QueryError(f"inverted time interval [{self.t1}, {self.t2}]")
        if self.kind not in (STATIC, TRANSIENT):
            raise QueryError(f"unknown query kind {self.kind!r}")
        if self.bound not in (LOWER, UPPER):
            raise QueryError(f"unknown bound {self.bound!r}")

    def with_bound(self, bound: str) -> "RangeQuery":
        return RangeQuery(self.box, self.t1, self.t2, self.kind, bound)

    def with_kind(self, kind: str) -> "RangeQuery":
        return RangeQuery(self.box, self.t1, self.t2, kind, self.bound)


@dataclass
class QueryResult:
    """Outcome of executing a query on one sensing configuration."""

    query: RangeQuery
    value: float
    missed: bool
    #: Sensing regions (faces of the executing network) used.
    regions: Tuple[int, ...] = ()
    #: Monitored walls on the region perimeter (edges accessed).
    edges_accessed: int = 0
    #: Communication sensors contacted.
    nodes_accessed: int = 0
    #: Hop proxy for in-network aggregation routing.
    hops: int = 0
    #: Wall-clock evaluation time in seconds.  Under batched execution
    #: (:meth:`~repro.query.QueryEngine.execute_batch`) this excludes
    #: shared cache-fill work, which is metered separately — see
    #: ``cache_served`` and the attached provenance.
    elapsed: float = 0.0
    #: True when the batched path served every shared structure this
    #: query needed (regions/boundary/sensors) from its caches.
    cache_served: bool = False
    #: Opt-in measured internals (``Instrumentation(provenance=True)``).
    provenance: Optional[QueryProvenance] = None

    def __post_init__(self) -> None:
        if self.missed and self.value:
            raise QueryError("a missed query cannot carry a count")
