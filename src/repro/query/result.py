"""Query descriptions and results."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..errors import QueryError
from ..geometry import BBox
from ..obs import QueryProvenance

#: Approximation modes of §4.6 (Fig. 7): R2 (maximal enclosed region)
#: and R1 (minimal containing region).
LOWER = "lower"
UPPER = "upper"

#: Query kinds of §3.3.
STATIC = "static"
TRANSIENT = "transient"


@dataclass(frozen=True)
class RangeQuery:
    """A spatiotemporal range count query.

    ``box`` is the rectangular spatial range (resolved to a union of
    sensing-graph faces at execution time, §5.1.5); ``(t1, t2)`` the
    temporal interval; ``kind`` selects the static or transient count
    (§3.3); ``bound`` the lower or upper spatial approximation (§4.6).

    ``max_error`` is the caller's absolute count-error tolerance: when
    set, an engine holding an error-bounded sketch may answer from the
    sketch whenever its worst-case bound is within the tolerance (the
    result then carries a ``QueryDegradation`` with
    ``strategy="sketch"``); ``None`` (the default) always takes the
    exact path.
    """

    box: BBox
    t1: float
    t2: float
    kind: str = STATIC
    bound: str = LOWER
    max_error: Optional[float] = None

    def __post_init__(self) -> None:
        if self.t2 < self.t1:
            raise QueryError(f"inverted time interval [{self.t1}, {self.t2}]")
        if self.kind not in (STATIC, TRANSIENT):
            raise QueryError(f"unknown query kind {self.kind!r}")
        if self.bound not in (LOWER, UPPER):
            raise QueryError(f"unknown bound {self.bound!r}")
        if self.max_error is not None and self.max_error < 0:
            raise QueryError("max_error must be >= 0")

    def with_bound(self, bound: str) -> "RangeQuery":
        return RangeQuery(
            self.box, self.t1, self.t2, self.kind, bound, self.max_error
        )

    def with_kind(self, kind: str) -> "RangeQuery":
        return RangeQuery(
            self.box, self.t1, self.t2, kind, self.bound, self.max_error
        )


@dataclass(frozen=True)
class QueryDegradation:
    """Fault outcome of a query dispatched over a failing network.

    Attached to :class:`QueryResult` when fault injection skipped part
    of the perimeter.  ``error_bound`` is the *computable* bound on the
    absolute count error: the boundary walls whose owning sensors were
    all skipped contribute nothing to the partial aggregate, and each
    can contribute at most the largest per-wall magnitude observed on
    the reached walls (plus one count of slack per lost wall) — so
    ``|exact_fault_free - degraded| <= error_bound`` whenever the lost
    walls are no heavier than the heaviest reached wall.
    """

    #: Perimeter sensors whose partial aggregates are missing.
    skipped_sensors: Tuple[int, ...]
    #: Boundary walls lost because every owning sensor was skipped.
    lost_walls: int
    #: Total boundary walls of the query's region approximation.
    boundary_walls: int
    #: Bound on the absolute count error of the degraded value.
    error_bound: float
    #: Fraction of boundary walls still aggregated into the value.
    coverage: float
    #: Dispatch strategy that produced this outcome.
    strategy: str = "perimeter_walk"
    #: Skip-ahead detours taken by the perimeter walk.
    detours: int = 0
    #: Server-mediated stitches of broken walk segments.
    server_stitches: int = 0
    #: Contact retries and message drops during the dispatch.
    retries: int = 0
    drops: int = 0

    @property
    def lost_fraction(self) -> float:
        """Lost walls' share of the boundary chain."""
        if not self.boundary_walls:
            return 0.0
        return self.lost_walls / self.boundary_walls


@dataclass
class QueryResult:
    """Outcome of executing a query on one sensing configuration."""

    query: RangeQuery
    value: float
    missed: bool
    #: Sensing regions (faces of the executing network) used.
    regions: Tuple[int, ...] = ()
    #: Monitored walls on the region perimeter (edges accessed).
    edges_accessed: int = 0
    #: Communication sensors contacted.
    nodes_accessed: int = 0
    #: Hop proxy for in-network aggregation routing.
    hops: int = 0
    #: Wall-clock evaluation time in seconds.  Under batched execution
    #: (:meth:`~repro.query.QueryEngine.execute_batch`) this excludes
    #: shared cache-fill work, which is metered separately — see
    #: ``cache_served`` and the attached provenance.
    elapsed: float = 0.0
    #: True when the batched path served every shared structure this
    #: query needed (regions/boundary/sensors) from its caches.
    cache_served: bool = False
    #: Opt-in measured internals (``Instrumentation(provenance=True)``).
    provenance: Optional[QueryProvenance] = None
    #: True when the value is a partial aggregate: fault injection
    #: skipped perimeter sensors, so part of the boundary integral is
    #: missing (bounded by ``degradation.error_bound``).
    approximate: bool = False
    #: Fault outcome; None when the dispatch lost nothing.
    degradation: Optional[QueryDegradation] = None

    def __post_init__(self) -> None:
        if self.missed and self.value:
            raise QueryError("a missed query cannot carry a count")
        if self.approximate and self.degradation is None:
            raise QueryError(
                "an approximate result must carry its degradation"
            )
