"""The in-network query engine (§4.6-4.7).

Executes :class:`~repro.query.RangeQuery` objects against a
:class:`~repro.sampling.SensorNetwork` and any
:class:`~repro.forms.EdgeCountStore` (exact tracking forms or learned
models):

1. the rectangle resolves to the junction set ``R`` (union of faces of
   the full sensing graph, §5.1.5);
2. ``R`` is approximated by a union of the executing network's regions
   — maximal enclosed (lower bound, R2) or minimal covering (upper
   bound, R1; Fig. 7);
3. the boundary chain of that union is integrated through the count
   store (Theorems 4.2/4.3);
4. communication accounting records edges and sensors touched.

A query *misses* when no region approximation exists (§5.5).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..errors import QueryError
from ..forms import EdgeCountStore
from ..mobility import MobilityDomain
from ..planar import NodeId
from ..sampling import SensorNetwork
from .result import LOWER, STATIC, TRANSIENT, UPPER, QueryResult, RangeQuery

#: How the static count of an interval query is evaluated from
#: snapshot counts (Theorem 4.2 gives N(t_q) for any t_q):
#: at the interval end (the paper's "up until t_q"), at the start, or
#: conservatively as the min of both ends.
STATIC_EVAL_MODES = ("end", "start", "min")


@dataclass
class QueryEngine:
    """Binds a sensing network to a count store and executes queries."""

    network: SensorNetwork
    store: EdgeCountStore
    #: "perimeter": contact only perimeter communication sensors (the
    #: in-network differential-form protocol).  "flood": contact every
    #: sensor inside the region (how the unsampled graph and the
    #: baseline behave in Fig. 11c).
    access_mode: str = "perimeter"
    static_eval: str = "end"

    def __post_init__(self) -> None:
        if self.access_mode not in ("perimeter", "flood"):
            raise QueryError(f"unknown access_mode {self.access_mode!r}")
        if self.static_eval not in STATIC_EVAL_MODES:
            raise QueryError(f"unknown static_eval {self.static_eval!r}")

    @property
    def domain(self) -> MobilityDomain:
        return self.network.domain

    # ------------------------------------------------------------------
    def execute(self, query: RangeQuery) -> QueryResult:
        """Execute one query; never raises on misses (reports them)."""
        start = time.perf_counter()
        junctions = self.domain.junctions_in_bbox(query.box)
        if not junctions:
            return self._miss(query, start)

        if query.bound == LOWER:
            regions = self.network.lower_regions(junctions)
        else:
            regions, covered = self.network.upper_regions(junctions)
            if not covered:
                regions = []
        if not regions:
            return self._miss(query, start)

        boundary = self.network.region_boundary(regions)
        value = self._integrate(boundary, query)
        sensors = self._sensors_accessed(regions, boundary)
        elapsed = time.perf_counter() - start
        return QueryResult(
            query=query,
            value=value,
            missed=False,
            regions=tuple(regions),
            edges_accessed=len(boundary),
            nodes_accessed=len(sensors),
            hops=len(boundary),
            elapsed=elapsed,
        )

    def execute_many(
        self, queries: Sequence[RangeQuery]
    ) -> list[QueryResult]:
        return [self.execute(query) for query in queries]

    def execute_batch(
        self, queries: Sequence[RangeQuery]
    ) -> List[QueryResult]:
        """Execute a query battery, amortising the shared work.

        The standard batteries reuse the same rectangles across kinds
        and bounds, so rectangle → junction-set resolution, region
        approximation, boundary-chain construction and sensor
        accounting are each computed once per distinct (box, bound) and
        shared across the batch.  Count stores exposing batched
        integration (:class:`~repro.forms.CompiledTrackingForm`)
        additionally amortise the boundary's merged timestamp series
        across every timestamp evaluated against it.  Results are
        identical to :meth:`execute_many`.
        """
        junctions_by_box: Dict[object, Set[NodeId]] = {}
        # (box, bound) -> region tuple or None for a guaranteed miss.
        regions_cache: Dict[Tuple[object, str], Optional[Tuple[int, ...]]] = {}
        boundary_cache: Dict[Tuple[int, ...], list] = {}
        sensors_cache: Dict[Tuple[int, ...], int] = {}
        results: List[QueryResult] = []
        for query in queries:
            start = time.perf_counter()
            box = query.box
            junctions = junctions_by_box.get(box)
            if junctions is None:
                junctions = self.domain.junctions_in_bbox(box)
                junctions_by_box[box] = junctions
            if not junctions:
                results.append(self._miss(query, start))
                continue

            region_key = (box, query.bound)
            if region_key in regions_cache:
                regions = regions_cache[region_key]
            else:
                if query.bound == LOWER:
                    resolved = self.network.lower_regions(junctions)
                else:
                    resolved, covered = self.network.upper_regions(junctions)
                    if not covered:
                        resolved = []
                regions = tuple(resolved) if resolved else None
                regions_cache[region_key] = regions
            if regions is None:
                results.append(self._miss(query, start))
                continue

            chain_key = tuple(sorted(regions))
            boundary = boundary_cache.get(chain_key)
            if boundary is None:
                boundary = self.network.region_boundary(regions)
                boundary_cache[chain_key] = boundary
            value = self._integrate(boundary, query)
            n_sensors = sensors_cache.get(chain_key)
            if n_sensors is None:
                n_sensors = len(self._sensors_accessed(regions, boundary))
                sensors_cache[chain_key] = n_sensors
            results.append(
                QueryResult(
                    query=query,
                    value=value,
                    missed=False,
                    regions=regions,
                    edges_accessed=len(boundary),
                    nodes_accessed=n_sensors,
                    hops=len(boundary),
                    elapsed=time.perf_counter() - start,
                )
            )
        return results

    # ------------------------------------------------------------------
    def resolve_junctions(self, query: RangeQuery) -> Set[NodeId]:
        """The junction set the rectangle resolves to (for evaluation)."""
        return self.domain.junctions_in_bbox(query.box)

    def region_junctions(self, result: QueryResult) -> Set[NodeId]:
        """Junctions actually covered by the executed approximation."""
        covered: Set[NodeId] = set()
        for region in result.regions:
            covered |= self.network.region_junctions(region)
        return covered

    # ------------------------------------------------------------------
    def _integrate(self, boundary, query: RangeQuery) -> float:
        store = self.store
        if query.kind == TRANSIENT:
            batched = getattr(store, "integrate_between", None)
            if batched is not None:
                return batched(boundary, query.t1, query.t2)
            return sum(
                store.net_between(edge, query.t1, query.t2)
                for edge in boundary
            )
        until = getattr(store, "integrate_until", None)
        if until is None:
            def until(edges, t):
                return sum(store.net_until(edge, t) for edge in edges)
        if self.static_eval == "end":
            return until(boundary, query.t2)
        if self.static_eval == "start":
            return until(boundary, query.t1)
        return min(until(boundary, query.t1), until(boundary, query.t2))

    def _sensors_accessed(self, regions, boundary) -> Set[int]:
        if self.access_mode == "flood":
            flooded: Set[int] = set()
            for region in regions:
                for junction in self.network.region_junctions(region):
                    flooded |= self._blocks_at(junction)
            return flooded
        return self.network.sensors_for_boundary(boundary)

    def _blocks_at(self, junction: NodeId) -> Set[int]:
        domain = self.domain
        blocks: Set[int] = set()
        for neighbour in domain.graph.neighbors(junction):
            left, right = domain.dual.faces_of_primal_edge(junction, neighbour)
            blocks.update(
                b for b in (left, right) if b != domain.dual.outer_node
            )
        return blocks

    def _miss(self, query: RangeQuery, start: float) -> QueryResult:
        return QueryResult(
            query=query,
            value=0.0,
            missed=True,
            elapsed=time.perf_counter() - start,
        )
