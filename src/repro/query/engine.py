"""The in-network query engine (§4.6-4.7).

Executes :class:`~repro.query.RangeQuery` objects against a
:class:`~repro.sampling.SensorNetwork` and any
:class:`~repro.forms.EdgeCountStore` (exact tracking forms or learned
models):

1. the rectangle resolves to the junction set ``R`` (union of faces of
   the full sensing graph, §5.1.5);
2. ``R`` is approximated by a union of the executing network's regions
   — maximal enclosed (lower bound, R2) or minimal covering (upper
   bound, R1; Fig. 7);
3. the boundary chain of that union is integrated through the count
   store (Theorems 4.2/4.3);
4. communication accounting records edges and sensors touched.

A query *misses* when no region approximation exists (§5.5).

Planners: the resolution pipeline runs either through the reference
Python path (sets/dicts, ``planner="python"``) or through the compiled
planner (``planner="compiled"``): int32/CSR network indexes, bincount
region approximation, wall-id occurrence-counting boundary
cancellation and id-native integration
(:mod:`repro.query.planner`).  The default (``planner="auto"``)
compiles whenever the store supports id-native integration.  Both
planners produce exactly equal results — same values, misses, region
ids, edge/sensor/hop accounting, metrics and provenance.

Instrumentation: the engine accepts an
:class:`~repro.obs.Instrumentation` bundle.  Every execution emits
per-phase tracing spans (``query.resolve_junctions`` →
``query.approximate_region`` → ``query.build_boundary`` →
``query.integrate`` → ``query.account_sensors``) through its tracer
and counts queries/misses/sensors in the process-global metrics
registry; with ``provenance=True`` each result carries a
:class:`~repro.obs.QueryProvenance` with the measured internals.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..errors import QueryError
from ..forms import EdgeCountStore
from ..mobility import MobilityDomain
from ..network.faults import FaultInjector, RetryPolicy
from ..network.simulator import (
    DEGRADATION_BUCKETS,
    DegradedReport,
    NetworkSimulator,
)
from ..obs import (
    FlightRecorder,
    Instrumentation,
    NULL_INSTRUMENTATION,
    QueryProvenance,
    SECONDS_BUCKETS,
    get_registry,
)
from ..planar import NodeId
from ..sampling import SensorNetwork
from .planner import CompiledQueryPlanner
from .result import (
    LOWER,
    TRANSIENT,
    QueryDegradation,
    QueryResult,
    RangeQuery,
)

#: Dispatch strategies a fault-aware engine may simulate (§4.6).
DISPATCH_STRATEGIES = ("perimeter_walk", "server_fanout")

#: How the static count of an interval query is evaluated from
#: snapshot counts (Theorem 4.2 gives N(t_q) for any t_q):
#: at the interval end (the paper's "up until t_q"), at the start, or
#: conservatively as the min of both ends.
STATIC_EVAL_MODES = ("end", "start", "min")

#: Resolution pipelines: "auto" compiles when the store supports
#: id-native integration, "compiled"/"python" force one path.
PLANNER_MODES = ("auto", "compiled", "python")

#: The shared-structure caches of the batched path, in fill order.
_BATCH_CACHES = ("junctions", "regions", "boundary", "sensors")

_MISSING = object()


@dataclass
class QueryEngine:
    """Binds a sensing network to a count store and executes queries."""

    network: SensorNetwork
    store: EdgeCountStore
    #: "perimeter": contact only perimeter communication sensors (the
    #: in-network differential-form protocol).  "flood": contact every
    #: sensor inside the region (how the unsampled graph and the
    #: baseline behave in Fig. 11c).
    access_mode: str = "perimeter"
    static_eval: str = "end"
    #: Resolution pipeline: "auto" (compiled when the store supports
    #: it), "compiled" or "python".  See :data:`PLANNER_MODES`.
    planner: str = "auto"
    #: Tracing/metrics/provenance bundle; ``None`` means the shared
    #: no-op recorder.
    instrumentation: Optional[Instrumentation] = None
    #: Fault injector; when set, answered queries are dispatched
    #: through a fault-tolerant :class:`~repro.network.NetworkSimulator`
    #: and may return partial aggregates flagged ``approximate`` with a
    #: :class:`~repro.query.QueryDegradation` bound.
    faults: Optional[FaultInjector] = None
    #: Strategy simulated for fault-aware dispatch (§4.6).
    dispatch_strategy: str = "perimeter_walk"
    #: Retry/timeout/backoff of the fault-aware dispatch; ``None``
    #: means the :class:`~repro.network.RetryPolicy` defaults.
    retry_policy: Optional[RetryPolicy] = None
    #: Always-on flight recorder: one cheap ring-buffer record per
    #: query, slow queries promoted to full detail.  ``None`` disables.
    flight: Optional[FlightRecorder] = None
    #: Error-bounded count sketch
    #: (:class:`~repro.forms.EdgeCountSketch`).  With ``planner="auto"``
    #: a query carrying ``max_error`` is answered from the sketch
    #: whenever its worst-case bound fits the tolerance — no chain
    #: compilation, no sensor contact — and falls back to the exact
    #: path otherwise.  ``None`` disables the fast tier.
    sketch: Optional[object] = None

    def __post_init__(self) -> None:
        if self.access_mode not in ("perimeter", "flood"):
            raise QueryError(f"unknown access_mode {self.access_mode!r}")
        if self.static_eval not in STATIC_EVAL_MODES:
            raise QueryError(f"unknown static_eval {self.static_eval!r}")
        if self.planner not in PLANNER_MODES:
            raise QueryError(f"unknown planner {self.planner!r}")
        if self.dispatch_strategy not in DISPATCH_STRATEGIES:
            raise QueryError(
                f"unknown dispatch_strategy {self.dispatch_strategy!r}"
            )
        self.obs: Instrumentation = (
            self.instrumentation
            if self.instrumentation is not None
            else NULL_INSTRUMENTATION
        )
        #: Metrics go to the registry current at construction time;
        #: hot-path counters are bound once here, not per query.
        self._registry = get_registry()
        self._metric_sensors = self._registry.counter(
            "repro_query_sensors_accessed_total",
            help="Communication sensors contacted by answered queries",
        )
        self._metric_edges = self._registry.counter(
            "repro_query_edges_accessed_total",
            help="Boundary walls integrated by answered queries",
        )
        self._metric_seconds = self._registry.counter(
            "repro_query_seconds_total",
            help="Wall seconds spent executing queries",
        )
        self._metric_latency = self._registry.histogram(
            "repro_query_latency_seconds",
            buckets=SECONDS_BUCKETS,
            help="Per-query wall time (answered and missed)",
        )
        self._metric_queries: Dict[Tuple[str, str], object] = {}
        self._metric_misses: Dict[Tuple[str, str], object] = {}
        self._metric_sketch_hits = self._registry.counter(
            "repro_sketch_queries_total",
            help="Sketch fast-path attempts by outcome",
            outcome="hit",
        )
        self._metric_sketch_fallbacks = self._registry.counter(
            "repro_sketch_queries_total",
            help="Sketch fast-path attempts by outcome",
            outcome="fallback",
        )
        #: Whether the store answers id-native chain integration.
        self._id_native = hasattr(self.store, "integrate_until_ids")
        self._compiled: Optional[CompiledQueryPlanner] = None
        if self.planner == "compiled" or (
            self.planner == "auto" and self._id_native
        ):
            self._compiled = CompiledQueryPlanner(self.network)
        self._simulator: Optional[NetworkSimulator] = None
        if self.faults is not None:
            self._simulator = NetworkSimulator(
                self.network,
                instrumentation=self.obs,
                faults=self.faults,
                retry=self.retry_policy
                if self.retry_policy is not None
                else RetryPolicy(),
            )

    @property
    def domain(self) -> MobilityDomain:
        return self.network.domain

    @property
    def planner_in_use(self) -> str:
        """The resolved pipeline: "compiled" or "python"."""
        return "compiled" if self._compiled is not None else "python"

    @property
    def simulator(self) -> Optional[NetworkSimulator]:
        """The fault-tolerant dispatcher (``None`` without faults)."""
        return self._simulator

    def explain(self, query: RangeQuery):
        """Execute ``query`` with provenance forced on and fold the
        measured internals into a :class:`~repro.obs.QueryExplain`.

        The query *runs* — EXPLAIN here is an account of an actual
        execution (counters and fault outcomes included), not an
        estimate.
        """
        from ..obs.explain import build_explain

        obs = self.obs
        if obs.provenance:
            result = self.execute(query)
        else:
            self.obs = Instrumentation(
                tracer=obs.tracer,
                metrics=obs.metrics,
                provenance=True,
                profiler=obs.profiler,
            )
            try:
                result = self.execute(query)
            finally:
                self.obs = obs
        return build_explain(self, result)

    def _count_query(self, query: RangeQuery) -> None:
        key = (query.kind, query.bound)
        counter = self._metric_queries.get(key)
        if counter is None:
            counter = self._registry.counter(
                "repro_queries_total",
                help="Queries executed, by kind and bound",
                kind=query.kind,
                bound=query.bound,
            )
            self._metric_queries[key] = counter
        counter.inc()

    def _count_miss(self, query: RangeQuery) -> None:
        key = (query.kind, query.bound)
        counter = self._metric_misses.get(key)
        if counter is None:
            counter = self._registry.counter(
                "repro_query_misses_total",
                help="Queries with no region approximation, by kind "
                "and bound",
                kind=query.kind,
                bound=query.bound,
            )
            self._metric_misses[key] = counter
        counter.inc()

    # ------------------------------------------------------------------
    def execute(self, query: RangeQuery) -> QueryResult:
        """Execute one query; never raises on misses (reports them)."""
        tracer = self.obs.tracer
        self._count_query(query)
        planner = self._compiled
        pc = time.perf_counter
        start = pc()
        with tracer.span(
            "query.execute", kind=query.kind, bound=query.bound
        ) as qspan:
            with tracer.span("query.resolve_junctions"):
                if planner is not None:
                    junctions = planner.junction_ids(query.box)
                else:
                    junctions = self.domain.junctions_in_bbox(query.box)
                junction_count = len(junctions)
            t_junctions = pc()
            if not junction_count:
                return self._miss(
                    query, start, junction_count=0,
                    phase_s={"resolve_junctions": t_junctions - start},
                )

            with tracer.span("query.approximate_region", bound=query.bound):
                regions = self._approximate(planner, junctions, query.bound)
            t_regions = pc()
            if regions is None:
                return self._miss(
                    query, start, junction_count=junction_count,
                    phase_s={
                        "resolve_junctions": t_junctions - start,
                        "approximate_region": t_regions - t_junctions,
                    },
                )

            with tracer.span("query.build_boundary", regions=len(regions)):
                if planner is not None:
                    chain = planner.boundary(regions)
                    boundary_len = chain.size
                    edges = None
                else:
                    chain = None
                    edges = self.network.region_boundary(regions)
                    boundary_len = len(edges)
            t_boundary = pc()
            sketch_hit = None
            if chain is not None:
                sketch_hit = self._try_sketch(chain, query)
            approximate = False
            degradation = None
            with tracer.span("query.integrate", edges=boundary_len):
                if sketch_hit is not None:
                    value, degradation = sketch_hit
                    approximate = True
                elif planner is not None:
                    value = self._integrate_chain(planner, chain, query)
                else:
                    value = self._integrate(edges, query)
            t_integrate = pc()
            with tracer.span("query.account_sensors", mode=self.access_mode):
                if sketch_hit is not None:
                    # Served from the server-side summary: no sensors
                    # contacted, no perimeter aggregation.
                    nodes_accessed = 0
                elif planner is not None:
                    if self.access_mode == "flood":
                        sensor_ids = planner.flood_sensors(regions)
                    else:
                        sensor_ids = planner.chain_sensors(chain)
                    nodes_accessed = len(sensor_ids)
                else:
                    sensors = self._sensors_accessed(regions, edges)
                    nodes_accessed = len(sensors)
            accounted = nodes_accessed
            edges_reached = boundary_len
            if self._simulator is not None and nodes_accessed:
                with tracer.span(
                    "query.fault_dispatch", strategy=self.dispatch_strategy
                ):
                    if planner is not None:
                        contact = [int(s) for s in sensor_ids]
                    else:
                        contact = sorted(sensors)
                    report = self._simulator.dispatch(
                        contact, strategy=self.dispatch_strategy
                    )
                    nodes_accessed = report.sensors_contacted
                    if report.skipped_sensors:
                        if edges is None:
                            edges = planner.decode_edges(chain)
                        value, degradation = self._degrade(
                            edges, query, report
                        )
                        approximate = degradation.lost_walls > 0
                        # A lost wall's partial aggregate never joined
                        # the value: charge only the reached walls.
                        edges_reached = boundary_len - degradation.lost_walls
            end = pc()
            if tracer.enabled:
                qspan.set(value=value, sensors=accounted)

        elapsed = end - start
        if degradation is not None:
            self._record_degradation(degradation)
        self._metric_sensors.inc(nodes_accessed)
        self._metric_edges.inc(edges_reached)
        self._metric_seconds.inc(elapsed)
        self._metric_latency.observe(elapsed)
        provenance = None
        if self.obs.provenance:
            provenance = QueryProvenance(
                planner=self.planner_in_use,
                junction_count=junction_count,
                region_ids=regions,
                boundary_length=boundary_len,
                sensors_accessed=nodes_accessed,
                phase_s={
                    "resolve_junctions": t_junctions - start,
                    "approximate_region": t_regions - t_junctions,
                    "build_boundary": t_boundary - t_regions,
                    "integrate": t_integrate - t_boundary,
                    "account_sensors": end - t_integrate,
                },
            )
        if self.flight is not None:
            self._record_flight(
                query,
                elapsed,
                value=value,
                missed=False,
                stage_s={
                    "resolve_junctions": t_junctions - start,
                    "approximate_region": t_regions - t_junctions,
                    "build_boundary": t_boundary - t_regions,
                    "integrate": t_integrate - t_boundary,
                    "account_sensors": end - t_integrate,
                },
                degradation=degradation,
                provenance=provenance,
            )
        return QueryResult(
            query=query,
            value=value,
            missed=False,
            regions=regions,
            edges_accessed=edges_reached,
            nodes_accessed=nodes_accessed,
            hops=edges_reached,
            elapsed=elapsed,
            provenance=provenance,
            approximate=approximate,
            degradation=degradation,
        )

    def execute_many(
        self, queries: Sequence[RangeQuery]
    ) -> list[QueryResult]:
        return [self.execute(query) for query in queries]

    def execute_batch(
        self, queries: Sequence[RangeQuery]
    ) -> List[QueryResult]:
        """Execute a query battery, amortising the shared work.

        The standard batteries reuse the same rectangles across kinds
        and bounds, so rectangle → junction-set resolution, region
        approximation, boundary-chain construction and sensor
        accounting are each computed once per distinct (box, bound) and
        shared across the batch, through whichever planner the engine
        resolved.  Count stores exposing batched integration
        (:class:`~repro.forms.CompiledTrackingForm`) additionally
        amortise the boundary's merged timestamp series across every
        timestamp evaluated against it.  Results are identical to
        :meth:`execute_many`.

        **Ordering contract**: ``results[i]`` answers ``queries[i]``
        for every ``i``, whatever the internal evaluation order.  The
        sharded engine (:class:`~repro.query.ShardedQueryEngine`)
        relies on this when it scatters sub-batches — workers may
        complete in any interleaving, but each sub-batch comes back in
        its own input order and the parent re-slots by input index.
        The contract is asserted on exit here and in the sharded
        gather.

        Timing attribution: shared cache-fill work is metered
        *separately* from per-query work.  Each result's ``elapsed``
        covers only the work done for that query (integration plus
        cache lookups), so the first query for a ``(box, bound)`` is
        directly comparable to later ones and to the Fig. 11d series;
        the fill cost is accumulated in the
        ``repro_query_batch_fill_seconds_total`` counter, in
        ``batch.fill.*`` tracing spans and — with provenance enabled —
        in the triggering result's ``provenance.shared_fill_s``.
        Results whose shared structures all came from the caches are
        flagged ``cache_served``.

        Fault-aware engines fall back to sequential :meth:`execute`:
        degraded dispatch depends on the live per-query sensor set and
        the injector's attempt stream, which the shared caches cannot
        reproduce.
        """
        if self._simulator is not None:
            return self.execute_many(queries)
        tracer = self.obs.tracer
        registry = self._registry
        planner = self._compiled
        with_provenance = self.obs.provenance
        fill_seconds = registry.counter(
            "repro_query_batch_fill_seconds_total",
            help="Shared cache-fill seconds metered out of per-query "
            "elapsed times in execute_batch",
        )

        cache_counters = {
            (cache, outcome): registry.counter(
                "repro_query_batch_cache_total",
                help="Batch shared-structure cache hits and fills",
                cache=cache,
                outcome=outcome,
            )
            for cache in _BATCH_CACHES
            for outcome in ("hit", "fill")
        }

        # box -> junction index array (compiled) or junction set.
        junctions_by_box: Dict[object, object] = {}
        # (box, bound) -> region tuple or None for a guaranteed miss.
        regions_cache: Dict[
            Tuple[object, str], Optional[Tuple[int, ...]]
        ] = {}
        # region tuple -> BoundaryChain (compiled) or directed-edge list.
        boundary_cache: Dict[Tuple[int, ...], object] = {}
        sensors_cache: Dict[Tuple[int, ...], int] = {}
        results: List[QueryResult] = []
        pc = time.perf_counter
        with tracer.span("query.execute_batch", queries=len(queries)):
            for query in queries:
                self._count_query(query)
                start = pc()
                shared = 0.0
                hits: Dict[str, bool] = {}
                phase_s: Dict[str, float] = {}
                box = query.box
                junctions = junctions_by_box.get(box, _MISSING)
                if junctions is _MISSING:
                    t0 = pc()
                    with tracer.span("batch.fill.junctions"):
                        if planner is not None:
                            junctions = planner.junction_ids(box)
                        else:
                            junctions = self.domain.junctions_in_bbox(box)
                    junctions_by_box[box] = junctions
                    fill = pc() - t0
                    shared += fill
                    phase_s["resolve_junctions"] = fill
                    hits["junctions"] = False
                    cache_counters["junctions", "fill"].inc()
                else:
                    phase_s["resolve_junctions"] = 0.0
                    hits["junctions"] = True
                    cache_counters["junctions", "hit"].inc()
                junction_count = len(junctions)
                if not junction_count:
                    results.append(
                        self._miss(
                            query, start, shared=shared,
                            junction_count=0, cache_hits=hits,
                            phase_s=phase_s,
                        )
                    )
                    continue

                region_key = (box, query.bound)
                if region_key in regions_cache:
                    regions = regions_cache[region_key]
                    phase_s["approximate_region"] = 0.0
                    hits["regions"] = True
                    cache_counters["regions", "hit"].inc()
                else:
                    t0 = pc()
                    with tracer.span("batch.fill.regions", bound=query.bound):
                        regions = self._approximate(
                            planner, junctions, query.bound
                        )
                    regions_cache[region_key] = regions
                    fill = pc() - t0
                    shared += fill
                    phase_s["approximate_region"] = fill
                    hits["regions"] = False
                    cache_counters["regions", "fill"].inc()
                if regions is None:
                    results.append(
                        self._miss(
                            query, start, shared=shared,
                            junction_count=junction_count, cache_hits=hits,
                            phase_s=phase_s,
                        )
                    )
                    continue

                boundary = boundary_cache.get(regions, _MISSING)
                if boundary is _MISSING:
                    t0 = pc()
                    with tracer.span("batch.fill.boundary"):
                        if planner is not None:
                            boundary = planner.boundary(regions)
                        else:
                            boundary = self.network.region_boundary(regions)
                    boundary_cache[regions] = boundary
                    shared += pc() - t0
                    hits["boundary"] = False
                    cache_counters["boundary", "fill"].inc()
                else:
                    hits["boundary"] = True
                    cache_counters["boundary", "hit"].inc()
                boundary_len = (
                    boundary.size if planner is not None else len(boundary)
                )

                sketch_hit = None
                if planner is not None:
                    sketch_hit = self._try_sketch(boundary, query)
                degradation = None
                t_pre_integrate = pc()
                with tracer.span("query.integrate", edges=boundary_len):
                    if sketch_hit is not None:
                        value, degradation = sketch_hit
                    elif planner is not None:
                        value = self._integrate_chain(
                            planner, boundary, query
                        )
                    else:
                        value = self._integrate(boundary, query)
                t_integrate = pc() - t_pre_integrate

                if sketch_hit is not None:
                    elapsed = (pc() - start) - shared
                    fill_seconds.inc(shared)
                    self._record_degradation(degradation)
                    self._metric_edges.inc(boundary_len)
                    self._metric_seconds.inc(elapsed)
                    self._metric_latency.observe(elapsed)
                    provenance = None
                    if with_provenance:
                        provenance = QueryProvenance(
                            planner=self.planner_in_use,
                            junction_count=junction_count,
                            region_ids=regions,
                            boundary_length=boundary_len,
                            sensors_accessed=0,
                            cache_served=all(hits.values()),
                            cache_hits=hits,
                            shared_fill_s=shared,
                            phase_s={"integrate": t_integrate},
                        )
                    if self.flight is not None:
                        self._record_flight(
                            query,
                            elapsed,
                            value=value,
                            missed=False,
                            stage_s={**phase_s, "integrate": t_integrate},
                            degradation=degradation,
                            provenance=provenance,
                        )
                    results.append(
                        QueryResult(
                            query=query,
                            value=value,
                            missed=False,
                            regions=regions,
                            edges_accessed=boundary_len,
                            nodes_accessed=0,
                            hops=boundary_len,
                            elapsed=elapsed,
                            cache_served=all(hits.values()),
                            provenance=provenance,
                            approximate=True,
                            degradation=degradation,
                        )
                    )
                    continue

                n_sensors = sensors_cache.get(regions)
                if n_sensors is None:
                    t0 = pc()
                    with tracer.span("batch.fill.sensors"):
                        if planner is not None:
                            if self.access_mode == "flood":
                                n_sensors = len(
                                    planner.flood_sensors(regions)
                                )
                            else:
                                n_sensors = len(
                                    planner.chain_sensors(boundary)
                                )
                        else:
                            n_sensors = len(
                                self._sensors_accessed(regions, boundary)
                            )
                    sensors_cache[regions] = n_sensors
                    shared += pc() - t0
                    hits["sensors"] = False
                    cache_counters["sensors", "fill"].inc()
                else:
                    hits["sensors"] = True
                    cache_counters["sensors", "hit"].inc()

                elapsed = (pc() - start) - shared
                fill_seconds.inc(shared)
                self._metric_sensors.inc(n_sensors)
                self._metric_edges.inc(boundary_len)
                self._metric_seconds.inc(elapsed)
                self._metric_latency.observe(elapsed)
                provenance = None
                if with_provenance:
                    provenance = QueryProvenance(
                        planner=self.planner_in_use,
                        junction_count=junction_count,
                        region_ids=regions,
                        boundary_length=boundary_len,
                        sensors_accessed=n_sensors,
                        cache_served=all(hits.values()),
                        cache_hits=hits,
                        shared_fill_s=shared,
                        phase_s={"integrate": t_integrate},
                    )
                if self.flight is not None:
                    self._record_flight(
                        query,
                        elapsed,
                        value=value,
                        missed=False,
                        stage_s={**phase_s, "integrate": t_integrate},
                        provenance=provenance,
                    )
                results.append(
                    QueryResult(
                        query=query,
                        value=value,
                        missed=False,
                        regions=regions,
                        edges_accessed=boundary_len,
                        nodes_accessed=n_sensors,
                        hops=boundary_len,
                        elapsed=elapsed,
                        cache_served=all(hits.values()),
                        provenance=provenance,
                    )
                )
        assert len(results) == len(queries) and all(
            result.query is query
            for result, query in zip(results, queries)
        ), "execute_batch broke the input-order result contract"
        return results

    # ------------------------------------------------------------------
    def resolve_junctions(self, query: RangeQuery) -> Set[NodeId]:
        """The junction set the rectangle resolves to (for evaluation)."""
        return self.domain.junctions_in_bbox(query.box)

    def region_junctions(self, result: QueryResult) -> Set[NodeId]:
        """Junctions actually covered by the executed approximation."""
        covered: Set[NodeId] = set()
        for region in result.regions:
            covered |= self.network.region_junctions(region)
        return covered

    # ------------------------------------------------------------------
    # Region approximation (planner dispatch)
    # ------------------------------------------------------------------
    def _approximate(
        self,
        planner: Optional[CompiledQueryPlanner],
        junctions,
        bound: str,
    ) -> Optional[Tuple[int, ...]]:
        """Sorted region tuple of the approximation; ``None`` on a miss."""
        if planner is not None:
            return planner.region_ids(junctions, bound)
        if bound == LOWER:
            resolved = self.network.lower_regions(junctions)
        else:
            resolved, covered = self.network.upper_regions(junctions)
            if not covered:
                resolved = []
        return tuple(resolved) if resolved else None

    # ------------------------------------------------------------------
    # Fault-aware dispatch (graceful degradation)
    # ------------------------------------------------------------------
    def _degrade(
        self,
        boundary,
        query: RangeQuery,
        report: DegradedReport,
    ) -> Tuple[float, QueryDegradation]:
        """Partial aggregate + error bound after a degraded dispatch.

        A boundary wall is *lost* when every sensor owning it was
        skipped by the dispatch — its signed contribution never joins
        the aggregate.  The degraded value integrates only the reached
        walls; the bound charges each lost wall the largest per-wall
        magnitude observed among the reached walls (plus one count of
        slack), which contains the true error whenever the lost walls
        are no heavier than the heaviest reached one.
        """
        skipped = set(report.skipped_sensors)
        network = self.network
        reached: List = []
        lost = 0
        for edge in boundary:
            owners = network.wall_sensors(*edge)
            if owners and owners <= skipped:
                lost += 1
            else:
                reached.append(edge)

        store = self.store
        if query.kind == TRANSIENT:
            contributions = [
                store.net_between(edge, query.t1, query.t2)
                for edge in reached
            ]
            value = float(sum(contributions))
            magnitudes = [abs(c) for c in contributions]
        else:
            at_start = [store.net_until(edge, query.t1) for edge in reached]
            at_end = [store.net_until(edge, query.t2) for edge in reached]
            if self.static_eval == "start":
                value = float(sum(at_start))
                magnitudes = [abs(c) for c in at_start]
            elif self.static_eval == "end":
                value = float(sum(at_end))
                magnitudes = [abs(c) for c in at_end]
            else:
                value = float(min(sum(at_start), sum(at_end)))
                magnitudes = [abs(c) for c in at_start + at_end]

        if lost == 0:
            bound = 0.0
        elif magnitudes:
            bound = lost * (max(magnitudes) + 1.0)
        else:
            bound = math.inf  # nothing reached: the error is unbounded
        degradation = QueryDegradation(
            skipped_sensors=report.skipped_sensors,
            lost_walls=lost,
            boundary_walls=len(boundary),
            error_bound=bound,
            coverage=(
                (len(boundary) - lost) / len(boundary) if boundary else 0.0
            ),
            strategy=report.strategy,
            detours=report.detours,
            server_stitches=report.server_stitches,
            retries=report.retries,
            drops=report.drops,
        )
        return value, degradation

    def _record_degradation(self, degradation: QueryDegradation) -> None:
        registry = self._registry
        if degradation.lost_walls:
            registry.counter(
                "repro_query_degraded_total",
                help="Answered queries that lost part of their boundary "
                "aggregate to faults",
                strategy=degradation.strategy,
            ).inc()
        registry.histogram(
            "repro_query_degradation",
            buckets=DEGRADATION_BUCKETS,
            help="Lost share of the boundary chain per degraded query",
            strategy=degradation.strategy,
        ).observe(degradation.lost_fraction)
        if math.isfinite(degradation.error_bound):
            registry.histogram(
                "repro_query_degradation_bound",
                help="Absolute count-error bound of degraded queries",
                strategy=degradation.strategy,
            ).observe(degradation.error_bound)

    # ------------------------------------------------------------------
    # Sketch fast path (error-bounded approximate tier)
    # ------------------------------------------------------------------
    def _try_sketch(
        self, chain, query: RangeQuery
    ) -> Optional[Tuple[float, QueryDegradation]]:
        """Sketch answer for an id-native chain, or ``None`` to fall
        back to the exact path.

        Only attempted under ``planner="auto"`` (forcing "compiled" or
        "python" pins the exact pipeline), without fault simulation
        (degraded dispatch must sample the live sensor set), and when
        the query states a ``max_error`` tolerance.  A hit is flagged
        ``approximate`` and carries its worst-case bound through
        :class:`~repro.query.QueryDegradation` with
        ``strategy="sketch"``; the bound always contains the exact
        answer (see :class:`~repro.forms.EdgeCountSketch`).
        """
        if (
            self.sketch is None
            or query.max_error is None
            or self.planner != "auto"
            or self._simulator is not None
        ):
            return None
        wall_ids, signs = chain.wall_ids, chain.signs
        sketch = self.sketch
        if query.kind == TRANSIENT:
            estimate, bound = sketch.estimate_between_ids(
                wall_ids, signs, query.t1, query.t2
            )
        elif self.static_eval == "end":
            estimate, bound = sketch.estimate_until_ids(
                wall_ids, signs, query.t2
            )
        elif self.static_eval == "start":
            estimate, bound = sketch.estimate_until_ids(
                wall_ids, signs, query.t1
            )
        else:  # "min": min estimate; max bound covers min() exactly
            e1, b1 = sketch.estimate_until_ids(wall_ids, signs, query.t1)
            e2, b2 = sketch.estimate_until_ids(wall_ids, signs, query.t2)
            estimate, bound = min(e1, e2), max(b1, b2)
        if bound > query.max_error:
            self._metric_sketch_fallbacks.inc()
            return None
        self._metric_sketch_hits.inc()
        degradation = QueryDegradation(
            skipped_sensors=(),
            lost_walls=0,
            boundary_walls=chain.size,
            error_bound=float(bound),
            coverage=1.0,
            strategy="sketch",
        )
        return float(estimate), degradation

    # ------------------------------------------------------------------
    def _integrate(self, boundary, query: RangeQuery) -> float:
        store = self.store
        if query.kind == TRANSIENT:
            batched = getattr(store, "integrate_between", None)
            if batched is not None:
                return batched(boundary, query.t1, query.t2)
            return sum(
                store.net_between(edge, query.t1, query.t2)
                for edge in boundary
            )
        until = getattr(store, "integrate_until", None)
        if until is None:
            def until(edges, t):
                return sum(store.net_until(edge, t) for edge in edges)
        if self.static_eval == "end":
            return until(boundary, query.t2)
        if self.static_eval == "start":
            return until(boundary, query.t1)
        return min(until(boundary, query.t1), until(boundary, query.t2))

    def _integrate_chain(
        self, planner: CompiledQueryPlanner, chain, query: RangeQuery
    ) -> float:
        """Integrate an id-native chain; decode for legacy stores."""
        if self._id_native:
            return planner.integrate(
                self.store, chain, query, self.static_eval
            )
        return self._integrate(planner.decode_edges(chain), query)

    def _sensors_accessed(self, regions, boundary) -> Set[int]:
        if self.access_mode == "flood":
            flooded: Set[int] = set()
            for region in regions:
                for junction in self.network.region_junctions(region):
                    flooded |= self._blocks_at(junction)
            return flooded
        return self.network.sensors_for_boundary(boundary)

    def _blocks_at(self, junction: NodeId) -> Set[int]:
        domain = self.domain
        blocks: Set[int] = set()
        for neighbour in domain.graph.neighbors(junction):
            left, right = domain.dual.faces_of_primal_edge(junction, neighbour)
            blocks.update(
                b for b in (left, right) if b != domain.dual.outer_node
            )
        return blocks

    def _miss(
        self,
        query: RangeQuery,
        start: float,
        shared: float = 0.0,
        junction_count: int = 0,
        cache_hits: Optional[Dict[str, bool]] = None,
        phase_s: Optional[Dict[str, float]] = None,
    ) -> QueryResult:
        self._count_miss(query)
        elapsed = (time.perf_counter() - start) - shared
        # Missed queries consume wall time too: charge them into the
        # same counter as answered ones so the per-query mean the
        # figures report covers the whole battery.
        self._metric_seconds.inc(elapsed)
        self._metric_latency.observe(elapsed)
        provenance = None
        if self.obs.provenance:
            provenance = QueryProvenance(
                planner=self.planner_in_use,
                junction_count=junction_count,
                cache_served=bool(cache_hits) and all(cache_hits.values()),
                cache_hits=cache_hits or {},
                shared_fill_s=shared,
                phase_s=phase_s or {},
            )
        if self.flight is not None:
            self._record_flight(
                query,
                elapsed,
                value=0.0,
                missed=True,
                stage_s=phase_s,
                provenance=provenance,
            )
        return QueryResult(
            query=query,
            value=0.0,
            missed=True,
            elapsed=elapsed,
            cache_served=bool(cache_hits) and all(cache_hits.values()),
            provenance=provenance,
        )

    def _record_flight(
        self,
        query: RangeQuery,
        elapsed: float,
        *,
        value: float,
        missed: bool,
        stage_s: Optional[Dict[str, float]] = None,
        degradation: Optional[QueryDegradation] = None,
        provenance: Optional[QueryProvenance] = None,
    ) -> None:
        """Append one flight record; promote slow queries with the
        detail already in hand (never recomputed)."""
        degraded = None
        if degradation is not None and degradation.lost_walls:
            degraded = (
                f"lost_walls={degradation.lost_walls}"
                f" bound={degradation.error_bound:g}"
            )
        record = self.flight.record(
            query,
            planner=self.planner_in_use,
            elapsed_s=elapsed,
            value=value,
            missed=missed,
            stage_s=stage_s,
            degraded=degraded,
            generation=getattr(self.store, "generation", None),
        )
        if record.slow:
            detail: Dict[str, object] = {"stage_s": dict(stage_s or {})}
            if provenance is not None:
                detail["provenance"] = provenance.as_dict()
            # Memory evidence, only on the already-strict slow path:
            # two O(1) reads, never taken for fast traffic.
            from ..obs import memory_snapshot

            snapshot = memory_snapshot()
            record.peak_rss_bytes = snapshot["peak_rss_bytes"]
            record.alloc_peak_bytes = snapshot["alloc_peak_bytes"]
            profiler = self.obs.profiler
            if profiler is not None:
                detail["profile_top"] = profiler.table.top_rows(5)
            record.detail = detail
