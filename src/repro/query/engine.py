"""The in-network query engine (§4.6-4.7).

Executes :class:`~repro.query.RangeQuery` objects against a
:class:`~repro.sampling.SensorNetwork` and any
:class:`~repro.forms.EdgeCountStore` (exact tracking forms or learned
models):

1. the rectangle resolves to the junction set ``R`` (union of faces of
   the full sensing graph, §5.1.5);
2. ``R`` is approximated by a union of the executing network's regions
   — maximal enclosed (lower bound, R2) or minimal covering (upper
   bound, R1; Fig. 7);
3. the boundary chain of that union is integrated through the count
   store (Theorems 4.2/4.3);
4. communication accounting records edges and sensors touched.

A query *misses* when no region approximation exists (§5.5).

Instrumentation: the engine accepts an
:class:`~repro.obs.Instrumentation` bundle.  Every execution emits
per-phase tracing spans (``query.resolve_junctions`` →
``query.approximate_region`` → ``query.build_boundary`` →
``query.integrate`` → ``query.account_sensors``) through its tracer
and counts queries/misses/sensors in the process-global metrics
registry; with ``provenance=True`` each result carries a
:class:`~repro.obs.QueryProvenance` with the measured internals.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..errors import QueryError
from ..forms import EdgeCountStore
from ..mobility import MobilityDomain
from ..network.faults import FaultInjector, RetryPolicy
from ..network.simulator import (
    DEGRADATION_BUCKETS,
    DegradedReport,
    NetworkSimulator,
)
from ..obs import Instrumentation, NULL_INSTRUMENTATION, QueryProvenance, get_registry
from ..planar import NodeId
from ..sampling import SensorNetwork
from .result import (
    LOWER,
    TRANSIENT,
    QueryDegradation,
    QueryResult,
    RangeQuery,
)

#: Dispatch strategies a fault-aware engine may simulate (§4.6).
DISPATCH_STRATEGIES = ("perimeter_walk", "server_fanout")

#: How the static count of an interval query is evaluated from
#: snapshot counts (Theorem 4.2 gives N(t_q) for any t_q):
#: at the interval end (the paper's "up until t_q"), at the start, or
#: conservatively as the min of both ends.
STATIC_EVAL_MODES = ("end", "start", "min")

#: The shared-structure caches of the batched path, in fill order.
_BATCH_CACHES = ("junctions", "regions", "boundary", "sensors")


@dataclass
class QueryEngine:
    """Binds a sensing network to a count store and executes queries."""

    network: SensorNetwork
    store: EdgeCountStore
    #: "perimeter": contact only perimeter communication sensors (the
    #: in-network differential-form protocol).  "flood": contact every
    #: sensor inside the region (how the unsampled graph and the
    #: baseline behave in Fig. 11c).
    access_mode: str = "perimeter"
    static_eval: str = "end"
    #: Tracing/metrics/provenance bundle; ``None`` means the shared
    #: no-op recorder.
    instrumentation: Optional[Instrumentation] = None
    #: Fault injector; when set, answered queries are dispatched
    #: through a fault-tolerant :class:`~repro.network.NetworkSimulator`
    #: and may return partial aggregates flagged ``approximate`` with a
    #: :class:`~repro.query.QueryDegradation` bound.
    faults: Optional[FaultInjector] = None
    #: Strategy simulated for fault-aware dispatch (§4.6).
    dispatch_strategy: str = "perimeter_walk"
    #: Retry/timeout/backoff of the fault-aware dispatch; ``None``
    #: means the :class:`~repro.network.RetryPolicy` defaults.
    retry_policy: Optional[RetryPolicy] = None

    def __post_init__(self) -> None:
        if self.access_mode not in ("perimeter", "flood"):
            raise QueryError(f"unknown access_mode {self.access_mode!r}")
        if self.static_eval not in STATIC_EVAL_MODES:
            raise QueryError(f"unknown static_eval {self.static_eval!r}")
        if self.dispatch_strategy not in DISPATCH_STRATEGIES:
            raise QueryError(
                f"unknown dispatch_strategy {self.dispatch_strategy!r}"
            )
        self.obs: Instrumentation = (
            self.instrumentation
            if self.instrumentation is not None
            else NULL_INSTRUMENTATION
        )
        #: Metrics go to the registry current at construction time.
        self._registry = get_registry()
        self._simulator: Optional[NetworkSimulator] = None
        if self.faults is not None:
            self._simulator = NetworkSimulator(
                self.network,
                instrumentation=self.obs,
                faults=self.faults,
                retry=self.retry_policy
                if self.retry_policy is not None
                else RetryPolicy(),
            )

    @property
    def domain(self) -> MobilityDomain:
        return self.network.domain

    # ------------------------------------------------------------------
    def execute(self, query: RangeQuery) -> QueryResult:
        """Execute one query; never raises on misses (reports them)."""
        tracer = self.obs.tracer
        registry = self._registry
        registry.counter(
            "repro_queries_total",
            help="Queries executed, by kind and bound",
            kind=query.kind,
            bound=query.bound,
        ).inc()
        pc = time.perf_counter
        start = pc()
        with tracer.span(
            "query.execute", kind=query.kind, bound=query.bound
        ) as qspan:
            with tracer.span("query.resolve_junctions"):
                junctions = self.domain.junctions_in_bbox(query.box)
            t_junctions = pc()
            if not junctions:
                return self._miss(
                    query, start, junction_count=0,
                    phase_s={"resolve_junctions": t_junctions - start},
                )

            with tracer.span("query.approximate_region", bound=query.bound):
                if query.bound == LOWER:
                    regions = self.network.lower_regions(junctions)
                else:
                    regions, covered = self.network.upper_regions(junctions)
                    if not covered:
                        regions = []
            t_regions = pc()
            if not regions:
                return self._miss(
                    query, start, junction_count=len(junctions),
                    phase_s={
                        "resolve_junctions": t_junctions - start,
                        "approximate_region": t_regions - t_junctions,
                    },
                )

            with tracer.span("query.build_boundary", regions=len(regions)):
                boundary = self.network.region_boundary(regions)
            t_boundary = pc()
            with tracer.span("query.integrate", edges=len(boundary)):
                value = self._integrate(boundary, query)
            t_integrate = pc()
            with tracer.span("query.account_sensors", mode=self.access_mode):
                sensors = self._sensors_accessed(regions, boundary)
            nodes_accessed = len(sensors)
            approximate = False
            degradation = None
            if self._simulator is not None and sensors:
                with tracer.span(
                    "query.fault_dispatch", strategy=self.dispatch_strategy
                ):
                    report = self._simulator.dispatch(
                        sorted(sensors), strategy=self.dispatch_strategy
                    )
                    nodes_accessed = report.sensors_contacted
                    if report.skipped_sensors:
                        value, degradation = self._degrade(
                            boundary, query, report
                        )
                        approximate = degradation.lost_walls > 0
            end = pc()
            if tracer.enabled:
                qspan.set(value=value, sensors=len(sensors))

        elapsed = end - start
        if degradation is not None:
            self._record_degradation(degradation)
        registry.counter(
            "repro_query_sensors_accessed_total",
            help="Communication sensors contacted by answered queries",
        ).inc(nodes_accessed)
        registry.counter(
            "repro_query_edges_accessed_total",
            help="Boundary walls integrated by answered queries",
        ).inc(len(boundary))
        registry.counter(
            "repro_query_seconds_total",
            help="Wall seconds spent executing queries",
        ).inc(elapsed)
        provenance = None
        if self.obs.provenance:
            provenance = QueryProvenance(
                junction_count=len(junctions),
                region_ids=tuple(regions),
                boundary_length=len(boundary),
                phase_s={
                    "resolve_junctions": t_junctions - start,
                    "approximate_region": t_regions - t_junctions,
                    "build_boundary": t_boundary - t_regions,
                    "integrate": t_integrate - t_boundary,
                    "account_sensors": end - t_integrate,
                },
            )
        return QueryResult(
            query=query,
            value=value,
            missed=False,
            regions=tuple(regions),
            edges_accessed=len(boundary),
            nodes_accessed=nodes_accessed,
            hops=len(boundary),
            elapsed=elapsed,
            provenance=provenance,
            approximate=approximate,
            degradation=degradation,
        )

    def execute_many(
        self, queries: Sequence[RangeQuery]
    ) -> list[QueryResult]:
        return [self.execute(query) for query in queries]

    def execute_batch(
        self, queries: Sequence[RangeQuery]
    ) -> List[QueryResult]:
        """Execute a query battery, amortising the shared work.

        The standard batteries reuse the same rectangles across kinds
        and bounds, so rectangle → junction-set resolution, region
        approximation, boundary-chain construction and sensor
        accounting are each computed once per distinct (box, bound) and
        shared across the batch.  Count stores exposing batched
        integration (:class:`~repro.forms.CompiledTrackingForm`)
        additionally amortise the boundary's merged timestamp series
        across every timestamp evaluated against it.  Results are
        identical to :meth:`execute_many`.

        Timing attribution: shared cache-fill work is metered
        *separately* from per-query work.  Each result's ``elapsed``
        covers only the work done for that query (integration plus
        cache lookups), so the first query for a ``(box, bound)`` is
        directly comparable to later ones and to the Fig. 11d series;
        the fill cost is accumulated in the
        ``repro_query_batch_fill_seconds_total`` counter, in
        ``batch.fill.*`` tracing spans and — with provenance enabled —
        in the triggering result's ``provenance.shared_fill_s``.
        Results whose shared structures all came from the caches are
        flagged ``cache_served``.

        Fault-aware engines fall back to sequential :meth:`execute`:
        degraded dispatch depends on the live per-query sensor set and
        the injector's attempt stream, which the shared caches cannot
        reproduce.
        """
        if self._simulator is not None:
            return self.execute_many(queries)
        tracer = self.obs.tracer
        registry = self._registry
        with_provenance = self.obs.provenance
        fill_seconds = registry.counter(
            "repro_query_batch_fill_seconds_total",
            help="Shared cache-fill seconds metered out of per-query "
            "elapsed times in execute_batch",
        )

        def cache_event(cache: str, outcome: str):
            registry.counter(
                "repro_query_batch_cache_total",
                help="Batch shared-structure cache hits and fills",
                cache=cache,
                outcome=outcome,
            ).inc()

        junctions_by_box: Dict[object, Set[NodeId]] = {}
        # (box, bound) -> region tuple or None for a guaranteed miss.
        regions_cache: Dict[Tuple[object, str], Optional[Tuple[int, ...]]] = {}
        boundary_cache: Dict[Tuple[int, ...], list] = {}
        sensors_cache: Dict[Tuple[int, ...], int] = {}
        results: List[QueryResult] = []
        pc = time.perf_counter
        with tracer.span("query.execute_batch", queries=len(queries)):
            for query in queries:
                registry.counter(
                    "repro_queries_total",
                    help="Queries executed, by kind and bound",
                    kind=query.kind,
                    bound=query.bound,
                ).inc()
                start = pc()
                shared = 0.0
                hits: Dict[str, bool] = {}
                box = query.box
                junctions = junctions_by_box.get(box)
                if junctions is None:
                    t0 = pc()
                    with tracer.span("batch.fill.junctions"):
                        junctions = self.domain.junctions_in_bbox(box)
                    junctions_by_box[box] = junctions
                    shared += pc() - t0
                    hits["junctions"] = False
                    cache_event("junctions", "fill")
                else:
                    hits["junctions"] = True
                    cache_event("junctions", "hit")
                if not junctions:
                    results.append(
                        self._miss(
                            query, start, shared=shared,
                            junction_count=0, cache_hits=hits,
                        )
                    )
                    continue

                region_key = (box, query.bound)
                if region_key in regions_cache:
                    regions = regions_cache[region_key]
                    hits["regions"] = True
                    cache_event("regions", "hit")
                else:
                    t0 = pc()
                    with tracer.span("batch.fill.regions", bound=query.bound):
                        if query.bound == LOWER:
                            resolved = self.network.lower_regions(junctions)
                        else:
                            resolved, covered = self.network.upper_regions(
                                junctions
                            )
                            if not covered:
                                resolved = []
                        regions = tuple(resolved) if resolved else None
                    regions_cache[region_key] = regions
                    shared += pc() - t0
                    hits["regions"] = False
                    cache_event("regions", "fill")
                if regions is None:
                    results.append(
                        self._miss(
                            query, start, shared=shared,
                            junction_count=len(junctions), cache_hits=hits,
                        )
                    )
                    continue

                chain_key = tuple(sorted(regions))
                boundary = boundary_cache.get(chain_key)
                if boundary is None:
                    t0 = pc()
                    with tracer.span("batch.fill.boundary"):
                        boundary = self.network.region_boundary(regions)
                    boundary_cache[chain_key] = boundary
                    shared += pc() - t0
                    hits["boundary"] = False
                    cache_event("boundary", "fill")
                else:
                    hits["boundary"] = True
                    cache_event("boundary", "hit")

                t_pre_integrate = pc()
                with tracer.span("query.integrate", edges=len(boundary)):
                    value = self._integrate(boundary, query)
                t_integrate = pc() - t_pre_integrate

                n_sensors = sensors_cache.get(chain_key)
                if n_sensors is None:
                    t0 = pc()
                    with tracer.span("batch.fill.sensors"):
                        n_sensors = len(
                            self._sensors_accessed(regions, boundary)
                        )
                    sensors_cache[chain_key] = n_sensors
                    shared += pc() - t0
                    hits["sensors"] = False
                    cache_event("sensors", "fill")
                else:
                    hits["sensors"] = True
                    cache_event("sensors", "hit")

                elapsed = (pc() - start) - shared
                fill_seconds.inc(shared)
                registry.counter(
                    "repro_query_sensors_accessed_total",
                    help="Communication sensors contacted by answered "
                    "queries",
                ).inc(n_sensors)
                registry.counter(
                    "repro_query_edges_accessed_total",
                    help="Boundary walls integrated by answered queries",
                ).inc(len(boundary))
                registry.counter(
                    "repro_query_seconds_total",
                    help="Wall seconds spent executing queries",
                ).inc(elapsed)
                provenance = None
                if with_provenance:
                    provenance = QueryProvenance(
                        junction_count=len(junctions),
                        region_ids=regions,
                        boundary_length=len(boundary),
                        cache_served=all(hits.values()),
                        cache_hits=hits,
                        shared_fill_s=shared,
                        phase_s={"integrate": t_integrate},
                    )
                results.append(
                    QueryResult(
                        query=query,
                        value=value,
                        missed=False,
                        regions=regions,
                        edges_accessed=len(boundary),
                        nodes_accessed=n_sensors,
                        hops=len(boundary),
                        elapsed=elapsed,
                        cache_served=all(hits.values()),
                        provenance=provenance,
                    )
                )
        return results

    # ------------------------------------------------------------------
    def resolve_junctions(self, query: RangeQuery) -> Set[NodeId]:
        """The junction set the rectangle resolves to (for evaluation)."""
        return self.domain.junctions_in_bbox(query.box)

    def region_junctions(self, result: QueryResult) -> Set[NodeId]:
        """Junctions actually covered by the executed approximation."""
        covered: Set[NodeId] = set()
        for region in result.regions:
            covered |= self.network.region_junctions(region)
        return covered

    # ------------------------------------------------------------------
    # Fault-aware dispatch (graceful degradation)
    # ------------------------------------------------------------------
    def _degrade(
        self,
        boundary,
        query: RangeQuery,
        report: DegradedReport,
    ) -> Tuple[float, QueryDegradation]:
        """Partial aggregate + error bound after a degraded dispatch.

        A boundary wall is *lost* when every sensor owning it was
        skipped by the dispatch — its signed contribution never joins
        the aggregate.  The degraded value integrates only the reached
        walls; the bound charges each lost wall the largest per-wall
        magnitude observed among the reached walls (plus one count of
        slack), which contains the true error whenever the lost walls
        are no heavier than the heaviest reached one.
        """
        skipped = set(report.skipped_sensors)
        network = self.network
        reached: List = []
        lost = 0
        for edge in boundary:
            owners = network.wall_sensors(*edge)
            if owners and owners <= skipped:
                lost += 1
            else:
                reached.append(edge)

        store = self.store
        if query.kind == TRANSIENT:
            contributions = [
                store.net_between(edge, query.t1, query.t2)
                for edge in reached
            ]
            value = float(sum(contributions))
            magnitudes = [abs(c) for c in contributions]
        else:
            at_start = [store.net_until(edge, query.t1) for edge in reached]
            at_end = [store.net_until(edge, query.t2) for edge in reached]
            if self.static_eval == "start":
                value = float(sum(at_start))
                magnitudes = [abs(c) for c in at_start]
            elif self.static_eval == "end":
                value = float(sum(at_end))
                magnitudes = [abs(c) for c in at_end]
            else:
                value = float(min(sum(at_start), sum(at_end)))
                magnitudes = [abs(c) for c in at_start + at_end]

        if lost == 0:
            bound = 0.0
        elif magnitudes:
            bound = lost * (max(magnitudes) + 1.0)
        else:
            bound = math.inf  # nothing reached: the error is unbounded
        degradation = QueryDegradation(
            skipped_sensors=report.skipped_sensors,
            lost_walls=lost,
            boundary_walls=len(boundary),
            error_bound=bound,
            coverage=(
                (len(boundary) - lost) / len(boundary) if boundary else 0.0
            ),
            strategy=report.strategy,
            detours=report.detours,
            server_stitches=report.server_stitches,
            retries=report.retries,
            drops=report.drops,
        )
        return value, degradation

    def _record_degradation(self, degradation: QueryDegradation) -> None:
        registry = self._registry
        if degradation.lost_walls:
            registry.counter(
                "repro_query_degraded_total",
                help="Answered queries that lost part of their boundary "
                "aggregate to faults",
                strategy=degradation.strategy,
            ).inc()
        registry.histogram(
            "repro_query_degradation",
            buckets=DEGRADATION_BUCKETS,
            help="Lost share of the boundary chain per degraded query",
            strategy=degradation.strategy,
        ).observe(degradation.lost_fraction)
        if math.isfinite(degradation.error_bound):
            registry.histogram(
                "repro_query_degradation_bound",
                help="Absolute count-error bound of degraded queries",
                strategy=degradation.strategy,
            ).observe(degradation.error_bound)

    # ------------------------------------------------------------------
    def _integrate(self, boundary, query: RangeQuery) -> float:
        store = self.store
        if query.kind == TRANSIENT:
            batched = getattr(store, "integrate_between", None)
            if batched is not None:
                return batched(boundary, query.t1, query.t2)
            return sum(
                store.net_between(edge, query.t1, query.t2)
                for edge in boundary
            )
        until = getattr(store, "integrate_until", None)
        if until is None:
            def until(edges, t):
                return sum(store.net_until(edge, t) for edge in edges)
        if self.static_eval == "end":
            return until(boundary, query.t2)
        if self.static_eval == "start":
            return until(boundary, query.t1)
        return min(until(boundary, query.t1), until(boundary, query.t2))

    def _sensors_accessed(self, regions, boundary) -> Set[int]:
        if self.access_mode == "flood":
            flooded: Set[int] = set()
            for region in regions:
                for junction in self.network.region_junctions(region):
                    flooded |= self._blocks_at(junction)
            return flooded
        return self.network.sensors_for_boundary(boundary)

    def _blocks_at(self, junction: NodeId) -> Set[int]:
        domain = self.domain
        blocks: Set[int] = set()
        for neighbour in domain.graph.neighbors(junction):
            left, right = domain.dual.faces_of_primal_edge(junction, neighbour)
            blocks.update(
                b for b in (left, right) if b != domain.dual.outer_node
            )
        return blocks

    def _miss(
        self,
        query: RangeQuery,
        start: float,
        shared: float = 0.0,
        junction_count: int = 0,
        cache_hits: Optional[Dict[str, bool]] = None,
        phase_s: Optional[Dict[str, float]] = None,
    ) -> QueryResult:
        self._registry.counter(
            "repro_query_misses_total",
            help="Queries with no region approximation, by kind and bound",
            kind=query.kind,
            bound=query.bound,
        ).inc()
        provenance = None
        if self.obs.provenance:
            provenance = QueryProvenance(
                junction_count=junction_count,
                cache_served=bool(cache_hits) and all(cache_hits.values()),
                cache_hits=cache_hits or {},
                shared_fill_s=shared,
                phase_s=phase_s or {},
            )
        return QueryResult(
            query=query,
            value=0.0,
            missed=True,
            elapsed=(time.perf_counter() - start) - shared,
            cache_served=bool(cache_hits) and all(cache_hits.values()),
            provenance=provenance,
        )
