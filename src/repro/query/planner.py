"""The compiled query planner: vectorised region→boundary resolution.

The Python read path resolves every query through per-query sets and
dicts: a fresh junction set per rectangle, a Python subset test per
candidate region, wall-by-wall boundary loops and ``tuple(edges)``
cache keys.  :class:`CompiledQueryPlanner` re-expresses the whole
pipeline over the int32/CSR indexes a
:class:`~repro.sampling.SensorNetwork` compiles on first use
(:meth:`~repro.sampling.SensorNetwork.compiled_index`):

1. rectangle → junction *index array* via the domain's
   sorted-coordinate bbox index (no set materialisation);
2. lower-bound region approximation by membership counting — a region
   is fully enclosed iff its ``np.bincount`` of in-bbox junctions
   equals its size; the upper bound is one ``np.unique`` over the
   touched regions;
3. boundary-chain cancellation by wall-id occurrence counting over the
   selected regions' concatenated CSR wall slices — interior walls
   appear exactly twice (once per adjacent selected region) and drop
   out, mirroring the chain cancellation of the boundary operator;
4. sensor accounting by one CSR gather + ``np.unique`` over the
   wall→owner table (or the junction→block table in flood mode);
5. integration through the count store's id-native fast path
   (:meth:`~repro.forms.CompiledTrackingForm.integrate_until_ids`)
   keyed on a wall-id digest, falling back to decoded directed edges
   for stores without one.

Every step is exactly result-equivalent to the Python path — same
values, misses, region ids, edge/sensor/hop accounting — which the
randomized cross-check suite in ``tests/test_query_planner.py``
asserts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..errors import QueryError
from ..sampling import SensorNetwork
from .result import LOWER, RangeQuery, TRANSIENT

DirectedEdge = Tuple[object, object]

_EMPTY_I32 = np.empty(0, dtype=np.int32)
_EMPTY_I8 = np.empty(0, dtype=np.int8)
_EMPTY_TAKE = np.empty(0, dtype=np.int64)


def _csr_take(offsets: np.ndarray, rows: np.ndarray) -> np.ndarray:
    """Index array selecting ``offsets[r]:offsets[r+1]`` per row."""
    starts = offsets[rows]
    lens = offsets[rows + 1] - starts
    total = int(lens.sum())
    if total == 0:
        return _EMPTY_TAKE
    shift = np.concatenate(([0], np.cumsum(lens)[:-1]))
    return np.repeat(starts - shift, lens) + np.arange(total)


def _csr_gather(
    offsets: np.ndarray, data: np.ndarray, rows: np.ndarray
) -> np.ndarray:
    """Concatenated CSR slices ``data[offsets[r]:offsets[r+1]]`` per row."""
    return data[_csr_take(offsets, rows)]


@dataclass(frozen=True)
class BoundaryChain:
    """An id-native boundary chain: interned wall ids + orientation.

    ``wall_ids`` is ascending (a by-product of the ``np.unique``
    cancellation), ``signs`` is +1 where the inward traversal follows
    the canonical edge orientation and -1 against it.
    """

    wall_ids: np.ndarray
    signs: np.ndarray

    @property
    def size(self) -> int:
        return len(self.wall_ids)


class CompiledQueryPlanner:
    """Array-native resolution pipeline over a network's CSR indexes."""

    def __init__(self, network: SensorNetwork) -> None:
        self.network = network
        self.domain = network.domain
        self.index = network.compiled_index()
        #: Dense-id universe sizes for the bincount scatter tables.
        self._n_walls = len(self.index.wo_offsets) - 1
        self._n_sensor_ids = int(
            self.index.wo_sensors.max() + 1
            if len(self.index.wo_sensors)
            else 0
        )
        #: Dense wall → owners matrix (columns padded with -1): owner
        #: lists are tiny (one or two sensors per wall), so a matrix
        #: row gather beats a CSR gather on the hot perimeter path.
        wo_counts = np.diff(self.index.wo_offsets)
        width = int(wo_counts.max()) if len(wo_counts) else 0
        dense = np.full((self._n_walls, max(width, 1)), -1, dtype=np.int32)
        for column in range(width):
            rows = np.flatnonzero(wo_counts > column)
            dense[rows, column] = self.index.wo_sensors[
                self.index.wo_offsets[rows] + column
            ]
        self._wall_owners_dense = dense
        #: Decoded directed-edge lists per chain digest (for stores
        #: without an id-native integration path, and for the rare
        #: degraded-dispatch bookkeeping).
        self._decoded: Dict[bytes, List[DirectedEdge]] = {}

    def describe(self) -> Dict[str, int]:
        """Static index sizes (the EXPLAIN header's ``index:`` line)."""
        index = self.index
        return {
            "regions": int(index.n_regions),
            "walls": int(self._n_walls),
            "sensors": int(len(self.network.sensors)),
            "junctions": int(len(index.region_of_junction)),
        }

    # ------------------------------------------------------------------
    # Resolution pipeline
    # ------------------------------------------------------------------
    def junction_ids(self, box) -> np.ndarray:
        """Junction indices inside the rectangle (ascending int32)."""
        return self.domain.junction_ids_in_bbox(box)

    def region_ids(
        self, junction_ids: np.ndarray, bound: str
    ) -> Optional[Tuple[int, ...]]:
        """Region approximation as a sorted tuple; ``None`` on a miss.

        Mirrors :meth:`SensorNetwork.lower_regions` /
        :meth:`~repro.sampling.SensorNetwork.upper_regions`: the lower
        bound keeps regions whose in-bbox membership count equals their
        size; the upper bound keeps every touched region and misses
        when the EXT region is touched (no bounded superset exists).
        """
        index = self.index
        touched = index.region_of_junction[junction_ids]
        counts = np.bincount(touched, minlength=index.n_regions)
        if bound == LOWER:
            enclosed = np.flatnonzero(
                (counts > 0) & (counts == index.region_size)
            )
            enclosed = enclosed[enclosed != index.ext_region]
            if len(enclosed) == 0:
                return None
            return tuple(enclosed.tolist())
        if counts[index.ext_region]:
            return None
        regions = np.flatnonzero(counts)
        if len(regions) == 0:
            return None
        return tuple(regions.tolist())

    def boundary(self, regions: Tuple[int, ...]) -> BoundaryChain:
        """Boundary chain of a union of regions, by occurrence counting.

        Each selected region contributes its inward wall slice; a wall
        shared by two selected regions occurs twice (with opposite
        signs) and cancels, exactly like the Python path's
        ``region_of[u] not in selected`` test.
        """
        index = self.index
        if index.ext_region in regions:
            raise QueryError("query regions cannot include the EXT region")
        if len(regions) == 1:
            # One region has no interior walls to cancel; its slice is
            # stored ascending, so it already is the canonical chain.
            lo = index.rw_offsets[regions[0]]
            hi = index.rw_offsets[regions[0] + 1]
            return BoundaryChain(
                index.rw_wall_ids[lo:hi], index.rw_signs[lo:hi]
            )
        rows = np.asarray(regions, dtype=np.int64)
        take = _csr_take(index.rw_offsets, rows)
        if len(take) == 0:
            return BoundaryChain(_EMPTY_I32, _EMPTY_I8)
        ids = index.rw_wall_ids[take]
        signs = index.rw_signs[take]
        # Signed scatter-sum over the wall universe: a wall appears at
        # most twice (once per adjacent region, opposite signs), so the
        # net weight is ±1 on the boundary and 0 on cancelled interior
        # walls.  No sort — unlike np.unique — and ids come out
        # ascending from flatnonzero.
        net = np.bincount(ids, weights=signs, minlength=self._n_walls)
        wall_ids = np.flatnonzero(net)
        return BoundaryChain(
            wall_ids.astype(np.int32),
            net[wall_ids].astype(np.int8),
        )

    def chain_sensors(self, chain: BoundaryChain) -> np.ndarray:
        """Unique owning sensors of a chain (ascending), one gather."""
        if chain.size == 0:
            return _EMPTY_I32
        owners = self._wall_owners_dense[chain.wall_ids].ravel()
        # Shift by one so the -1 padding lands in slot 0, then drop it.
        seen = np.bincount(owners + 1, minlength=self._n_sensor_ids + 1)
        return np.flatnonzero(seen[1:])

    def flood_sensors(self, regions: Tuple[int, ...]) -> np.ndarray:
        """Unique blocks incident to any junction of the regions."""
        index = self.index
        rows = np.asarray(regions, dtype=np.int64)
        junctions = _csr_gather(index.rj_offsets, index.rj_junctions, rows)
        jb_offsets, jb_blocks = index.junction_blocks(self.domain)
        blocks = _csr_gather(jb_offsets, jb_blocks, junctions)
        if len(blocks) == 0:
            return blocks
        seen = np.bincount(blocks)  # block-id universe is small
        return np.flatnonzero(seen)

    # ------------------------------------------------------------------
    # Integration
    # ------------------------------------------------------------------
    def integrate(
        self,
        store,
        chain: BoundaryChain,
        query: RangeQuery,
        static_eval: str,
    ) -> float:
        """Integrate the chain through an id-native store.

        Only valid for stores exposing ``integrate_until_ids`` /
        ``integrate_between_ids`` (:class:`~repro.forms.CompiledTrackingForm`);
        the engine decodes the chain and uses its generic path for
        anything else.
        """
        wall_ids, signs = chain.wall_ids, chain.signs
        if query.kind == TRANSIENT:
            return store.integrate_between_ids(
                wall_ids, signs, query.t1, query.t2
            )
        if static_eval == "end":
            return store.integrate_until_ids(wall_ids, signs, query.t2)
        if static_eval == "start":
            return store.integrate_until_ids(wall_ids, signs, query.t1)
        return min(
            store.integrate_until_ids(wall_ids, signs, query.t1),
            store.integrate_until_ids(wall_ids, signs, query.t2),
        )

    def decode_edges(self, chain: BoundaryChain) -> List[DirectedEdge]:
        """The chain as inward-directed ``(u, v)`` edges (cached)."""
        key = chain.wall_ids.tobytes() + chain.signs.tobytes()
        edges = self._decoded.get(key)
        if edges is None:
            edge_of = self.domain.edge_interner.edge
            edges = []
            for eid, sign in zip(
                chain.wall_ids.tolist(), chain.signs.tolist()
            ):
                u, v = edge_of(eid)
                edges.append((u, v) if sign > 0 else (v, u))
            self._decoded[key] = edges
        return edges
