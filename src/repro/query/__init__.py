"""Query regions, the query engine and results (system S9)."""

from .continuous import ContinuousCountMonitor, RegionState
from .engine import STATIC_EVAL_MODES, QueryEngine
from .result import LOWER, STATIC, TRANSIENT, UPPER, QueryResult, RangeQuery

__all__ = [
    "ContinuousCountMonitor",
    "LOWER",
    "QueryEngine",
    "QueryResult",
    "RangeQuery",
    "RegionState",
    "STATIC",
    "STATIC_EVAL_MODES",
    "TRANSIENT",
    "UPPER",
]
