"""Query regions, the query engine and results (system S9)."""

from .continuous import ContinuousCountMonitor, RegionState
from .engine import (
    DISPATCH_STRATEGIES,
    PLANNER_MODES,
    STATIC_EVAL_MODES,
    QueryEngine,
)
from .planner import BoundaryChain, CompiledQueryPlanner
from .sharded import SHARDED_STAGES, ShardedQueryEngine, shard_of_edges
from .result import (
    LOWER,
    STATIC,
    TRANSIENT,
    UPPER,
    QueryDegradation,
    QueryResult,
    RangeQuery,
)

__all__ = [
    "BoundaryChain",
    "CompiledQueryPlanner",
    "ContinuousCountMonitor",
    "DISPATCH_STRATEGIES",
    "LOWER",
    "PLANNER_MODES",
    "QueryDegradation",
    "QueryEngine",
    "QueryResult",
    "RangeQuery",
    "RegionState",
    "SHARDED_STAGES",
    "STATIC",
    "ShardedQueryEngine",
    "shard_of_edges",
    "STATIC_EVAL_MODES",
    "TRANSIENT",
    "UPPER",
]
