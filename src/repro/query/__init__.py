"""Query regions, the query engine and results (system S9)."""

from .continuous import ContinuousCountMonitor, RegionState
from .engine import DISPATCH_STRATEGIES, STATIC_EVAL_MODES, QueryEngine
from .result import (
    LOWER,
    STATIC,
    TRANSIENT,
    UPPER,
    QueryDegradation,
    QueryResult,
    RangeQuery,
)

__all__ = [
    "ContinuousCountMonitor",
    "DISPATCH_STRATEGIES",
    "LOWER",
    "QueryDegradation",
    "QueryEngine",
    "QueryResult",
    "RangeQuery",
    "RegionState",
    "STATIC",
    "STATIC_EVAL_MODES",
    "TRANSIENT",
    "UPPER",
]
