"""The per-pipeline instrumentation bundle.

:class:`Instrumentation` is what :class:`repro.core.InNetworkFramework`,
:class:`repro.evaluation.Pipeline`, :class:`repro.query.QueryEngine` and
:class:`repro.network.NetworkSimulator` accept: a tracer, a metrics
registry, and a provenance switch.  The default (:data:`NULL_INSTRUMENTATION`)
is a no-op recorder — a shared null tracer, the null registry, and
provenance off — whose overhead budget is ≤5% on the ingest smoke
bench (enforced by ``benchmarks/bench_ingest_throughput.py --smoke``).

``Instrumentation.on()`` builds a live bundle: a fresh
:class:`~repro.obs.trace.Tracer` plus (by default) the process-global
metrics registry, with provenance enabled.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

from .metrics import (
    MetricsRegistry,
    NULL_REGISTRY,
    NullMetricsRegistry,
    get_registry,
)
from .profile import Profiler
from .trace import NULL_TRACER, NullTracer, Tracer


@dataclass
class Instrumentation:
    """Tracer + metrics registry + provenance switch for one pipeline."""

    tracer: Union[Tracer, NullTracer] = field(default_factory=Tracer)
    metrics: Union[MetricsRegistry, NullMetricsRegistry] = field(
        default_factory=get_registry
    )
    provenance: bool = False
    #: Optional continuous sampling profiler (default off; enabled via
    #: ``FrameworkConfig.profile_hz`` or ``demo --profile``).
    profiler: Optional[Profiler] = None

    @property
    def active(self) -> bool:
        """Anything beyond plain global-metrics accounting enabled?"""
        return self.provenance or self.tracer.enabled

    @classmethod
    def off(cls) -> "Instrumentation":
        """The shared no-op bundle (the default everywhere)."""
        return NULL_INSTRUMENTATION

    @classmethod
    def on(
        cls,
        provenance: bool = True,
        metrics: Union[MetricsRegistry, None] = None,
    ) -> "Instrumentation":
        """A live bundle: fresh tracer, global (or given) registry."""
        return cls(
            tracer=Tracer(),
            metrics=metrics if metrics is not None else get_registry(),
            provenance=provenance,
        )


#: The default no-op bundle.  Shared safely: the null tracer and null
#: registry hold no state.
NULL_INSTRUMENTATION = Instrumentation(
    tracer=NULL_TRACER, metrics=NULL_REGISTRY, provenance=False
)
