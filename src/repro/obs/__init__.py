"""Observability substrate: tracing spans, metrics, provenance, logging.

Zero-dependency instrumentation threaded through the deploy → ingest →
query pipeline:

- :mod:`repro.obs.trace` — hierarchical monotonic-clock spans,
  exportable as Chrome trace-viewer JSON and a human-readable tree;
- :mod:`repro.obs.metrics` — a process-global but swappable
  :class:`MetricsRegistry` (counters, gauges, fixed-bucket histograms)
  exportable as JSON and Prometheus text format;
- :mod:`repro.obs.provenance` — the opt-in per-query
  :class:`QueryProvenance` record attached to query results;
- :mod:`repro.obs.instrument` — the :class:`Instrumentation` bundle
  the framework, pipeline, engine and simulator accept (default: the
  no-op :data:`NULL_INSTRUMENTATION`);
- :mod:`repro.obs.logging` — shared stdlib-logging setup with
  ``key=value`` structured extras;
- :mod:`repro.obs.timeseries` — :class:`TimeSeriesRecorder`, sampling
  a registry into aligned fixed-capacity ring-buffer windows;
- :mod:`repro.obs.slo` — declarative :class:`SLO` objects with
  error-budget/burn-rate evaluation and the :class:`AlertLog`;
- :mod:`repro.obs.health` — per-sensor health scoring and fleet
  rollups over the simulator's per-sensor telemetry;
- :mod:`repro.obs.flight` — the always-on bounded query flight
  recorder with slow-query promotion to full detail;
- :mod:`repro.obs.profile` — the continuous span-attributed sampling
  profiler (:class:`Profiler`, :class:`StackTable`) with
  collapsed-stack, speedscope and Chrome-counter exports;
- :mod:`repro.obs.explain` — the measured query EXPLAIN plan;
- :mod:`repro.obs.dashboard` — the self-contained HTML dashboard the
  ``repro monitor`` CLI exports.
"""

from .explain import QueryExplain, build_explain, build_sharded_explain
from .flight import FlightRecord, FlightRecorder, query_digest
from .health import FleetHealth, SensorHealth, fleet_health
from .instrument import Instrumentation, NULL_INSTRUMENTATION
from .logging import configure as configure_logging
from .logging import get_logger, kv
from .metrics import (
    Counter,
    DEFAULT_BUCKETS,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_REGISTRY,
    NullMetricsRegistry,
    SECONDS_BUCKETS,
    diff_dumps,
    get_registry,
    set_registry,
    use_registry,
)
from .profile import (
    DEFAULT_PROFILE_HZ,
    Profiler,
    StackTable,
    memory_snapshot,
    overlay_counters,
)
from .provenance import QueryProvenance
from .slo import (
    Alert,
    AlertLog,
    AvailabilitySLO,
    ContainmentSLO,
    LatencySLO,
    SLO,
    SLOStatus,
    default_slos,
    evaluate_slos,
)
from .timeseries import Sample, SeriesWindow, TimeSeriesRecorder
from .trace import NULL_TRACER, NullTracer, Span, Tracer

__all__ = [
    "Alert",
    "AlertLog",
    "AvailabilitySLO",
    "ContainmentSLO",
    "Counter",
    "DEFAULT_BUCKETS",
    "DEFAULT_PROFILE_HZ",
    "FleetHealth",
    "FlightRecord",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "Instrumentation",
    "LatencySLO",
    "MetricsRegistry",
    "NULL_INSTRUMENTATION",
    "NULL_REGISTRY",
    "NULL_TRACER",
    "NullMetricsRegistry",
    "NullTracer",
    "Profiler",
    "QueryExplain",
    "QueryProvenance",
    "SECONDS_BUCKETS",
    "SLO",
    "SLOStatus",
    "Sample",
    "SensorHealth",
    "SeriesWindow",
    "Span",
    "StackTable",
    "TimeSeriesRecorder",
    "Tracer",
    "build_explain",
    "build_sharded_explain",
    "configure_logging",
    "default_slos",
    "evaluate_slos",
    "fleet_health",
    "get_logger",
    "get_registry",
    "kv",
    "memory_snapshot",
    "overlay_counters",
    "query_digest",
    "set_registry",
    "use_registry",
]
