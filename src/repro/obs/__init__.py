"""Observability substrate: tracing spans, metrics, provenance, logging.

Zero-dependency instrumentation threaded through the deploy → ingest →
query pipeline:

- :mod:`repro.obs.trace` — hierarchical monotonic-clock spans,
  exportable as Chrome trace-viewer JSON and a human-readable tree;
- :mod:`repro.obs.metrics` — a process-global but swappable
  :class:`MetricsRegistry` (counters, gauges, fixed-bucket histograms)
  exportable as JSON and Prometheus text format;
- :mod:`repro.obs.provenance` — the opt-in per-query
  :class:`QueryProvenance` record attached to query results;
- :mod:`repro.obs.instrument` — the :class:`Instrumentation` bundle
  the framework, pipeline, engine and simulator accept (default: the
  no-op :data:`NULL_INSTRUMENTATION`);
- :mod:`repro.obs.logging` — shared stdlib-logging setup with
  ``key=value`` structured extras.
"""

from .instrument import Instrumentation, NULL_INSTRUMENTATION
from .logging import configure as configure_logging
from .logging import get_logger, kv
from .metrics import (
    Counter,
    DEFAULT_BUCKETS,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_REGISTRY,
    NullMetricsRegistry,
    get_registry,
    set_registry,
    use_registry,
)
from .provenance import QueryProvenance
from .trace import NULL_TRACER, NullTracer, Span, Tracer

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "Instrumentation",
    "MetricsRegistry",
    "NULL_INSTRUMENTATION",
    "NULL_REGISTRY",
    "NULL_TRACER",
    "NullMetricsRegistry",
    "NullTracer",
    "QueryProvenance",
    "Span",
    "Tracer",
    "configure_logging",
    "get_logger",
    "get_registry",
    "kv",
    "set_registry",
    "use_registry",
]
