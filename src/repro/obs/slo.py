"""Declarative service-level objectives over recorder windows.

An :class:`SLO` states what fraction of events must be *good* over a
trailing window ("99% of queries answered exactly", "95% of queries
under 2ms", "90% of degraded dispatches lose ≤10% of the boundary").
Evaluating one against a :class:`~repro.obs.TimeSeriesRecorder` yields
an :class:`SLOStatus` carrying the standard error-budget arithmetic:

- ``compliance`` — good/total over the window (1.0 when idle);
- ``error_budget`` — the allowed bad fraction, ``1 - objective``;
- ``budget_used`` — the observed bad fraction;
- ``burn_rate`` — ``budget_used / error_budget``: >1 means the window
  is burning budget faster than the objective allows (the Google
  SRE-workbook multi-window burn-rate number).

Three concrete shapes cover the monitor's needs:

- :class:`AvailabilitySLO` — counter-ratio goodness (bad counters over
  a total counter; misses + degraded queries by default);
- :class:`LatencySLO` — histogram-threshold goodness (observations at
  or under a latency threshold, by cumulative bucket delta);
- :class:`ContainmentSLO` — histogram-threshold goodness over the
  degradation-share histogram (a degraded dispatch is good when the
  skipped share of its boundary chain stays under the cap).

:class:`AlertLog` watches a stream of statuses and records threshold
*crossings* (breach and recovery), not levels — the monitor prints it
and the dashboard renders it as the incident timeline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from .timeseries import TimeSeriesRecorder


@dataclass(frozen=True)
class SLOStatus:
    """One SLO evaluated over one recorder window."""

    name: str
    objective: float
    window_s: Optional[float]
    good: float
    total: float
    description: str = ""

    @property
    def compliance(self) -> float:
        """Good fraction over the window (1.0 when nothing happened)."""
        if self.total <= 0:
            return 1.0
        return self.good / self.total

    @property
    def ok(self) -> bool:
        return self.compliance >= self.objective

    @property
    def error_budget(self) -> float:
        """Allowed bad fraction: ``1 - objective``."""
        return 1.0 - self.objective

    @property
    def budget_used(self) -> float:
        """Observed bad fraction of the window."""
        return 1.0 - self.compliance

    @property
    def burn_rate(self) -> float:
        """``budget_used / error_budget``; >1 burns faster than allowed.

        An objective of exactly 1.0 has no budget: any bad event burns
        at infinite rate (reported as ``inf``).
        """
        if self.budget_used <= 0:
            return 0.0
        if self.error_budget <= 0:
            return float("inf")
        return self.budget_used / self.error_budget

    def as_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "objective": self.objective,
            "window_s": self.window_s,
            "good": self.good,
            "total": self.total,
            "compliance": self.compliance,
            "ok": self.ok,
            "error_budget": self.error_budget,
            "budget_used": self.budget_used,
            "burn_rate": self.burn_rate,
            "description": self.description,
        }


@dataclass(frozen=True)
class SLO:
    """Base declarative objective: ``compliance >= objective``."""

    name: str
    objective: float = 0.99
    description: str = ""

    def good_total(
        self, recorder: TimeSeriesRecorder, window_s: Optional[float]
    ) -> Tuple[float, float]:
        raise NotImplementedError

    def evaluate(
        self,
        recorder: TimeSeriesRecorder,
        window_s: Optional[float] = None,
    ) -> SLOStatus:
        good, total = self.good_total(recorder, window_s)
        return SLOStatus(
            name=self.name,
            objective=self.objective,
            window_s=window_s,
            good=good,
            total=total,
            description=self.description,
        )


@dataclass(frozen=True)
class AvailabilitySLO(SLO):
    """Counter-ratio goodness: ``good = total - sum(bad_metrics)``.

    The default wiring treats a query as *good* when it was answered
    exactly as planned — neither missed (no region approximation) nor
    served by a degraded dispatch (the fault-tolerant dispatcher
    skipped at least one perimeter sensor; ``execute()`` runs one
    dispatch per answered query, so dispatch counts and query counts
    are commensurable).
    """

    total_metric: str = "repro_queries_total"
    bad_metrics: Tuple[str, ...] = (
        "repro_query_misses_total",
        "repro_sim_degraded_dispatches_total",
    )

    def good_total(
        self, recorder: TimeSeriesRecorder, window_s: Optional[float]
    ) -> Tuple[float, float]:
        total = recorder.delta(self.total_metric, window_s)
        bad = sum(recorder.delta(m, window_s) for m in self.bad_metrics)
        return max(total - bad, 0.0), total


@dataclass(frozen=True)
class LatencySLO(SLO):
    """Histogram-threshold goodness: observations ``<= threshold``."""

    histogram: str = "repro_query_latency_seconds"
    threshold: float = 2e-3

    def good_total(
        self, recorder: TimeSeriesRecorder, window_s: Optional[float]
    ) -> Tuple[float, float]:
        return recorder.threshold_fraction(
            self.histogram, self.threshold, window_s
        )


@dataclass(frozen=True)
class ContainmentSLO(SLO):
    """Degradation-bound containment: degraded dispatches whose lost
    boundary share stayed at or under the cap."""

    histogram: str = "repro_query_degradation"
    threshold: float = 0.1

    def good_total(
        self, recorder: TimeSeriesRecorder, window_s: Optional[float]
    ) -> Tuple[float, float]:
        return recorder.threshold_fraction(
            self.histogram, self.threshold, window_s
        )


def default_slos(
    availability: float = 0.9,
    latency_threshold: float = 2e-3,
    latency_objective: float = 0.95,
    containment_cap: float = 0.1,
    containment_objective: float = 0.9,
) -> Tuple[SLO, ...]:
    """The monitor's standard SLO panel."""
    return (
        AvailabilitySLO(
            name="availability",
            objective=availability,
            description="queries answered exactly (no miss, no "
            "fault degradation)",
        ),
        LatencySLO(
            name="latency",
            objective=latency_objective,
            threshold=latency_threshold,
            description=f"query latency <= {latency_threshold * 1e3:g}ms",
        ),
        ContainmentSLO(
            name="containment",
            objective=containment_objective,
            threshold=containment_cap,
            description="degraded dispatches losing <= "
            f"{containment_cap:.0%} of their boundary chain",
        ),
    )


def evaluate_slos(
    slos: Sequence[SLO],
    recorder: TimeSeriesRecorder,
    window_s: Optional[float] = None,
) -> List[SLOStatus]:
    return [slo.evaluate(recorder, window_s) for slo in slos]


@dataclass(frozen=True)
class Alert:
    """One threshold crossing of one SLO."""

    t: float
    slo: str
    #: ``"breach"`` (ok → violated) or ``"recover"`` (violated → ok).
    event: str
    compliance: float
    objective: float
    burn_rate: float

    def format(self) -> str:
        arrow = "!" if self.event == "breach" else "+"
        return (
            f"[{arrow}] t={self.t:.1f}s {self.slo} {self.event}: "
            f"compliance {self.compliance:.1%} vs objective "
            f"{self.objective:.1%} (burn {self.burn_rate:.1f}x)"
        )


class AlertLog:
    """Records SLO threshold crossings across a run."""

    def __init__(self) -> None:
        self.alerts: List[Alert] = []
        self._ok_state: Dict[str, bool] = {}

    def observe(self, t: float, statuses: Sequence[SLOStatus]) -> List[Alert]:
        """Feed one evaluation round; returns newly fired alerts."""
        fired: List[Alert] = []
        for status in statuses:
            previous = self._ok_state.get(status.name, True)
            if status.ok != previous:
                alert = Alert(
                    t=t,
                    slo=status.name,
                    event="recover" if status.ok else "breach",
                    compliance=status.compliance,
                    objective=status.objective,
                    burn_rate=status.burn_rate,
                )
                self.alerts.append(alert)
                fired.append(alert)
            self._ok_state[status.name] = status.ok
        return fired

    def __len__(self) -> int:
        return len(self.alerts)

    def format(self) -> str:
        if not self.alerts:
            return "no SLO threshold crossings"
        return "\n".join(alert.format() for alert in self.alerts)
