"""Time-series sampling of a metrics registry into ring-buffer windows.

The :class:`~repro.obs.MetricsRegistry` is a point-in-time snapshot:
it can say "14 queries have missed" but not "misses started climbing
when sensors began crashing".  :class:`TimeSeriesRecorder` closes that
gap by periodically *sampling* a registry into fixed-capacity ring
buffers — one aligned :class:`Sample` per tick, holding

- **counter rates** — the per-second delta of every counter since the
  previous tick (and the raw cumulative totals, which the SLO layer
  differences over arbitrary windows);
- **gauge last-values**;
- **histogram quantiles** — :meth:`Histogram.quantile` at the
  configured points (p50/p95/p99 by default), plus the cumulative
  bucket counts so windowed threshold fractions stay computable.

All series share the recorder's tick timestamps ("aligned multi-series
snapshots"): a metric that first appears mid-run reads as ``None`` for
the ticks before its birth.  The ring buffer (``deque(maxlen=...)``)
bounds memory regardless of run length; :meth:`to_json` exports the
whole window as a JSON-safe dict for results files and the HTML
dashboard.

Sampling cost is one pass over the registry's instruments per tick —
independent of how many events/queries ran between ticks — which is
how the monitor keeps its overhead inside the ≤5% CI budget
(``benchmarks/bench_monitor_overhead.py``).
"""

from __future__ import annotations

import bisect
import time
from collections import deque
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Deque,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from .metrics import MetricsRegistry, _flat_name, get_registry

#: Quantile points sampled from every histogram by default.
DEFAULT_QUANTILES = (0.5, 0.95, 0.99)

#: Default ring capacity: at one sample per second this holds the last
#: four minutes; at the monitor's per-round cadence, the whole run.
DEFAULT_CAPACITY = 240


def base_name(flat: str) -> str:
    """The metric name of a flat ``name{labels}`` series key."""
    brace = flat.find("{")
    return flat if brace < 0 else flat[:brace]


def _flat(name: str, labels: Mapping[str, str]) -> str:
    if not labels:
        return name
    inner = ",".join(f'{k}="{v}"' for k, v in sorted(labels.items()))
    return name + "{" + inner + "}"


@dataclass(frozen=True)
class Sample:
    """One aligned tick: every instrument's value at the same instant."""

    #: Tick time on the recorder's clock (monotonic seconds).
    t: float
    #: Seconds since the previous tick (0.0 on the first).
    dt: float
    #: Counter flat-name → per-second rate over the last tick interval.
    rates: Mapping[str, float] = field(default_factory=dict)
    #: Counter flat-name → cumulative value at this tick.
    totals: Mapping[str, float] = field(default_factory=dict)
    #: Gauge flat-name → last value.
    gauges: Mapping[str, float] = field(default_factory=dict)
    #: ``"flat:p95"`` → histogram quantile at this tick.
    quantiles: Mapping[str, float] = field(default_factory=dict)
    #: Histogram flat-name → cumulative per-bucket counts (incl. the
    #: +Inf overflow slot), for windowed threshold fractions.
    hist_buckets: Mapping[str, Tuple[int, ...]] = field(default_factory=dict)
    #: Histogram flat-name → (cumulative count, cumulative sum).
    hist_counts: Mapping[str, Tuple[int, float]] = field(default_factory=dict)


@dataclass(frozen=True)
class SeriesWindow:
    """One named series extracted over the recorder's ticks."""

    name: str
    times: Tuple[float, ...]
    #: ``None`` where the metric did not exist yet at that tick.
    values: Tuple[Optional[float], ...]

    @property
    def last(self) -> Optional[float]:
        for value in reversed(self.values):
            if value is not None:
                return value
        return None


class TimeSeriesRecorder:
    """Samples a :class:`MetricsRegistry` into aligned ring buffers."""

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        capacity: int = DEFAULT_CAPACITY,
        quantiles: Sequence[float] = DEFAULT_QUANTILES,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        if capacity < 2:
            raise ValueError("recorder capacity must be >= 2")
        self.registry = registry if registry is not None else get_registry()
        self.capacity = capacity
        self.quantiles = tuple(quantiles)
        self.clock = clock
        self._samples: Deque[Sample] = deque(maxlen=capacity)
        #: Histogram flat-name → bucket upper bounds (for thresholds).
        self._hist_uppers: Dict[str, Tuple[float, ...]] = {}
        #: Cached ``(flat_name, instrument)`` views of the registry,
        #: rebuilt only when an instrument family grows — flat-name
        #: formatting and sort order are paid per new instrument, not
        #: per tick (the ≤5% sampling-overhead budget).
        self._view_sizes: Tuple[int, int, int] = (-1, -1, -1)
        self._counter_view: List[Tuple[str, Any]] = []
        self._gauge_view: List[Tuple[str, Any]] = []
        self._hist_view: List[Tuple[str, Any]] = []

    def _refresh_views(self) -> bool:
        """Sync the flat-name views with the registry's instruments.

        Registries that do not expose their instrument tables (the null
        registry, test doubles) fall back to the ``iter_*`` protocol on
        every tick.  Returns whether cached views are in use.
        """
        registry = self.registry
        counters = getattr(registry, "_counters", None)
        gauges = getattr(registry, "_gauges", None)
        histograms = getattr(registry, "_histograms", None)
        if counters is None or gauges is None or histograms is None:
            return False
        sizes = (len(counters), len(gauges), len(histograms))
        if sizes != self._view_sizes:
            self._counter_view = [
                (_flat_name(name, key), instrument)
                for (name, key), instrument in sorted(counters.items())
            ]
            self._gauge_view = [
                (_flat_name(name, key), instrument)
                for (name, key), instrument in sorted(gauges.items())
            ]
            self._hist_view = [
                (_flat_name(name, key), instrument)
                for (name, key), instrument in sorted(histograms.items())
            ]
            self._view_sizes = sizes
        return True

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------
    def sample(self, now: Optional[float] = None) -> Sample:
        """Take one aligned snapshot of every instrument."""
        t = self.clock() if now is None else now
        previous = self._samples[-1] if self._samples else None
        dt = (t - previous.t) if previous is not None else 0.0

        if self._refresh_views():
            counter_view = self._counter_view
            gauge_view = self._gauge_view
            hist_view = self._hist_view
        else:
            counter_view = [
                (_flat(name, labels), counter)
                for name, labels, counter in self.registry.iter_counters()
            ]
            gauge_view = [
                (_flat(name, labels), gauge)
                for name, labels, gauge in self.registry.iter_gauges()
            ]
            hist_view = [
                (_flat(name, labels), hist)
                for name, labels, hist in self.registry.iter_histograms()
            ]

        totals: Dict[str, float] = {
            flat: counter.value for flat, counter in counter_view
        }
        if previous is not None and dt > 0:
            before = previous.totals
            rates = {
                flat: (value - before.get(flat, 0.0)) / dt
                for flat, value in totals.items()
            }
        else:
            rates = dict.fromkeys(totals, 0.0)

        gauges = {flat: gauge.value for flat, gauge in gauge_view}

        quantile_values: Dict[str, float] = {}
        hist_buckets: Dict[str, Tuple[int, ...]] = {}
        hist_counts: Dict[str, Tuple[int, float]] = {}
        q_labels = [f":p{_q_label(q)}" for q in self.quantiles]
        for flat, hist in hist_view:
            self._hist_uppers.setdefault(flat, tuple(hist.uppers))
            for q, suffix in zip(self.quantiles, q_labels):
                quantile_values[flat + suffix] = hist.quantile(q)
            running = 0
            cumulative: List[int] = []
            for count in hist.counts:
                running += count
                cumulative.append(running)
            hist_buckets[flat] = tuple(cumulative)
            hist_counts[flat] = (hist.count, hist.sum)

        taken = Sample(
            t=t,
            dt=dt,
            rates=rates,
            totals=totals,
            gauges=gauges,
            quantiles=quantile_values,
            hist_buckets=hist_buckets,
            hist_counts=hist_counts,
        )
        self._samples.append(taken)
        return taken

    # ------------------------------------------------------------------
    # Window access
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._samples)

    @property
    def samples(self) -> Tuple[Sample, ...]:
        return tuple(self._samples)

    @property
    def latest(self) -> Optional[Sample]:
        return self._samples[-1] if self._samples else None

    def window_bounds(
        self, window_s: Optional[float] = None
    ) -> Tuple[Optional[Sample], Optional[Sample]]:
        """``(base, last)`` samples spanning the trailing window.

        ``base`` is the newest sample at or before ``last.t - window_s``
        (falling back to the oldest retained sample), so deltas
        ``last - base`` cover at least the requested window where the
        ring still holds it.  ``window_s=None`` spans the whole ring.
        """
        if not self._samples:
            return None, None
        last = self._samples[-1]
        if window_s is None:
            return self._samples[0], last
        cutoff = last.t - window_s
        base = self._samples[0]
        for candidate in self._samples:
            if candidate.t <= cutoff:
                base = candidate
            else:
                break
        return base, last

    def _extract(
        self, field_name: str, key: str
    ) -> SeriesWindow:
        times = tuple(sample.t for sample in self._samples)
        values = tuple(
            getattr(sample, field_name).get(key) for sample in self._samples
        )
        return SeriesWindow(name=key, times=times, values=values)

    def rate_series(self, metric: str) -> SeriesWindow:
        """Per-second rate of a counter, summed across its label sets."""
        return self._aggregate("rates", metric)

    def total_series(self, metric: str) -> SeriesWindow:
        """Cumulative counter values, summed across label sets."""
        return self._aggregate("totals", metric)

    def gauge_series(self, flat: str) -> SeriesWindow:
        """Last-value series of one gauge (exact flat name)."""
        return self._extract("gauges", flat)

    def quantile_series(self, metric: str, q: float) -> SeriesWindow:
        """One histogram quantile over time (exact flat name)."""
        return self._extract("quantiles", f"{metric}:p{_q_label(q)}")

    def _aggregate(self, field_name: str, metric: str) -> SeriesWindow:
        times = tuple(sample.t for sample in self._samples)
        values: List[Optional[float]] = []
        for sample in self._samples:
            mapping = getattr(sample, field_name)
            matched = [
                value
                for flat, value in mapping.items()
                if base_name(flat) == metric
            ]
            values.append(sum(matched) if matched else None)
        return SeriesWindow(name=metric, times=times, values=tuple(values))

    def series_names(self) -> Dict[str, Tuple[str, ...]]:
        """Every series key seen in the newest sample, by category."""
        last = self.latest
        if last is None:
            return {"rates": (), "gauges": (), "quantiles": ()}
        return {
            "rates": tuple(sorted(last.rates)),
            "gauges": tuple(sorted(last.gauges)),
            "quantiles": tuple(sorted(last.quantiles)),
        }

    # ------------------------------------------------------------------
    # Windowed aggregates (the SLO layer's inputs)
    # ------------------------------------------------------------------
    def delta(self, metric: str, window_s: Optional[float] = None) -> float:
        """Counter increase over the window, summed across label sets."""
        base, last = self.window_bounds(window_s)
        if base is None or last is None:
            return 0.0
        total = 0.0
        for flat, value in last.totals.items():
            if base_name(flat) == metric:
                total += value - base.totals.get(flat, 0.0)
        return total

    def threshold_fraction(
        self,
        metric: str,
        threshold: float,
        window_s: Optional[float] = None,
    ) -> Tuple[float, float]:
        """``(good, total)`` histogram observations within the window
        whose value was ``<= threshold`` (by cumulative bucket delta),
        summed across label sets.  ``good`` conservatively counts an
        observation as good only when its whole bucket is under the
        threshold."""
        base, last = self.window_bounds(window_s)
        if base is None or last is None:
            return 0.0, 0.0
        good = 0.0
        total = 0.0
        for flat, buckets in last.hist_buckets.items():
            if base_name(flat) != metric:
                continue
            uppers = self._hist_uppers.get(flat, ())
            base_buckets = base.hist_buckets.get(flat, (0,) * len(buckets))
            count_now = last.hist_counts[flat][0]
            count_before = (
                base.hist_counts[flat][0] if flat in base.hist_counts else 0
            )
            total += count_now - count_before
            # Cumulative count at the last bucket whose upper bound is
            # within the threshold.
            idx = bisect.bisect_right(uppers, threshold) - 1
            if idx >= 0:
                good += buckets[idx] - base_buckets[idx]
        return good, total

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def to_json(self) -> Dict[str, Any]:
        """The whole ring as a JSON-safe dict of aligned arrays."""
        times = [sample.t for sample in self._samples]
        series: Dict[str, Dict[str, Any]] = {}

        def put(kind: str, field_name: str) -> None:
            keys: set = set()
            for sample in self._samples:
                keys.update(getattr(sample, field_name).keys())
            for key in sorted(keys):
                series[key] = {
                    "kind": kind,
                    "values": [
                        _json_scalar(getattr(sample, field_name).get(key))
                        for sample in self._samples
                    ],
                }

        put("counter_rate", "rates")
        put("gauge", "gauges")
        put("histogram_quantile", "quantiles")
        return {
            "capacity": self.capacity,
            "samples": len(self._samples),
            "times": times,
            "series": series,
        }


def _q_label(q: float) -> str:
    """``0.95 -> "95"``, ``0.5 -> "50"``, ``0.999 -> "99.9"``."""
    scaled = q * 100
    if abs(scaled - round(scaled)) < 1e-9:
        return str(int(round(scaled)))
    return f"{scaled:g}"


def _json_scalar(value: Optional[float]) -> Optional[float]:
    if value is None:
        return None
    value = float(value)
    if value != value:  # NaN: JSON has no spelling for it
        return None
    return value
