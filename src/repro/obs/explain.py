"""Query EXPLAIN: a compact text plan of what one execution did.

``EXPLAIN`` for the in-network engine: which resolution pipeline ran
(compiled CSR planner vs reference python path), what the rectangle
resolved to (|R| junctions), which regions approximated it, how long
the boundary chain was (|∂R|), which batch caches served it, how many
sensors the dispatch touched, per-phase wall times, and — under fault
injection — the degradation outcome and error bound.

Everything is read from the engine's *measured* internals (the
:class:`~repro.obs.QueryProvenance` attached to the result plus the
result's own accounting), never re-derived, so the plan always matches
what actually executed — the acceptance test asserts field-for-field
equality against a plain ``execute()`` of the same query.

Build one via :meth:`repro.query.QueryEngine.explain` (which runs the
query with provenance forced on) or :func:`build_explain` from an
already-executed provenance-carrying result.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Tuple, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids a cycle
    from ..query.engine import QueryEngine
    from ..query.result import QueryResult
    from ..query.sharded import ShardedQueryEngine

#: Phase order of the execution pipeline (engine span names).
PHASES = (
    "resolve_junctions",
    "approximate_region",
    "build_boundary",
    "integrate",
    "account_sensors",
)


@dataclass(frozen=True)
class QueryExplain:
    """The measured plan of one query execution."""

    # Query description.
    kind: str
    bound: str
    box: Tuple[float, float, float, float]
    t1: float
    t2: float
    # Engine configuration.
    planner: str
    access_mode: str
    static_eval: str
    store: str
    network: str
    # Planner internals (compiled planner only; empty otherwise).
    planner_stats: Mapping[str, int] = field(default_factory=dict)
    # Measured execution.
    missed: bool = False
    junction_count: int = 0
    region_ids: Tuple[int, ...] = ()
    boundary_length: int = 0
    sensors_accessed: int = 0
    edges_accessed: int = 0
    value: float = 0.0
    elapsed_s: float = 0.0
    phase_s: Mapping[str, float] = field(default_factory=dict)
    cache_hits: Mapping[str, bool] = field(default_factory=dict)
    # Fault outcome (None when the dispatch lost nothing).
    dispatch_strategy: Optional[str] = None
    skipped_sensors: Tuple[int, ...] = ()
    lost_walls: int = 0
    error_bound: Optional[float] = None
    # Scatter-gather execution (sharded engine only; 0/empty otherwise).
    shards: int = 0
    fanout: int = 0
    stage_s: Mapping[str, float] = field(default_factory=dict)
    # Sampled per-stage self time from the continuous profiler
    # (leaf span name -> seconds; empty without a profiler).  Unlike
    # ``phase_s`` this is *cumulative* sampler evidence across the
    # process lifetime, not this execution's wall time.
    profile_self_s: Mapping[str, float] = field(default_factory=dict)

    def format(self) -> str:
        """The compact text plan."""
        x0, y0, x1, y1 = self.box
        lines = [
            f"QUERY PLAN  {self.kind}/{self.bound}  "
            f"box=[{x0:.1f},{y0:.1f} .. {x1:.1f},{y1:.1f}]  "
            f"t=[{self.t1:g},{self.t2:g}]",
            f"  engine: planner={self.planner} store={self.store} "
            f"network={self.network} access={self.access_mode} "
            f"static_eval={self.static_eval}",
        ]
        if self.planner_stats:
            stats = " ".join(
                f"{key}={value}"
                for key, value in sorted(self.planner_stats.items())
            )
            lines.append(f"  index: {stats}")
        lines.append(
            f"  resolve_junctions   |R|={self.junction_count}"
            f"{self._phase_ms('resolve_junctions')}"
        )
        if self.missed:
            lines.append("  -> MISS (no region approximation)")
            lines.append(f"  total {self.elapsed_s * 1e3:.3f}ms")
            return "\n".join(lines)
        region_preview = ",".join(str(r) for r in self.region_ids[:8])
        if len(self.region_ids) > 8:
            region_preview += ",..."
        lines.append(
            f"  approximate_region  regions={len(self.region_ids)} "
            f"[{region_preview}]{self._phase_ms('approximate_region')}"
        )
        lines.append(
            f"  build_boundary      |dR|={self.boundary_length}"
            f"{self._phase_ms('build_boundary')}"
        )
        lines.append(
            f"  integrate           value={self.value:g}"
            f"{self._phase_ms('integrate')}"
        )
        lines.append(
            f"  account_sensors     sensors={self.sensors_accessed} "
            f"edges={self.edges_accessed}"
            f"{self._phase_ms('account_sensors')}"
        )
        if self.cache_hits:
            served = ",".join(
                cache for cache, hit in sorted(self.cache_hits.items()) if hit
            )
            lines.append(f"  batch caches: hit[{served or '-'}]")
        if self.shards:
            stages = " ".join(
                f"{stage}={self.stage_s[stage] * 1e3:.3f}ms"
                for stage in ("route", "scatter", "worker_wait", "merge")
                if stage in self.stage_s
            )
            lines.append(
                f"  scatter_gather      shards={self.shards} "
                f"fanout={self.fanout}" + (f"  [{stages}]" if stages else "")
            )
        if self.dispatch_strategy is not None:
            bound_txt = (
                "inf"
                if self.error_bound is not None
                and math.isinf(self.error_bound)
                else f"{self.error_bound:g}"
                if self.error_bound is not None
                else "0"
            )
            lines.append(
                f"  dispatch            strategy={self.dispatch_strategy} "
                f"skipped={len(self.skipped_sensors)} "
                f"lost_walls={self.lost_walls} bound=+-{bound_txt}"
            )
        if self.profile_self_s:
            ranked = sorted(
                self.profile_self_s.items(), key=lambda kv: -kv[1]
            )[:6]
            entries = " ".join(
                f"{name}={seconds * 1e3:.1f}ms" for name, seconds in ranked
            )
            lines.append(f"  profile self-time   {entries}")
        lines.append(f"  total {self.elapsed_s * 1e3:.3f}ms")
        return "\n".join(lines)

    def _phase_ms(self, phase: str) -> str:
        seconds = self.phase_s.get(phase)
        if seconds is None:
            return ""
        return f"  {seconds * 1e3:.3f}ms"

    def as_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "bound": self.bound,
            "box": list(self.box),
            "t1": self.t1,
            "t2": self.t2,
            "planner": self.planner,
            "access_mode": self.access_mode,
            "static_eval": self.static_eval,
            "store": self.store,
            "network": self.network,
            "planner_stats": dict(self.planner_stats),
            "missed": self.missed,
            "junction_count": self.junction_count,
            "region_ids": list(self.region_ids),
            "boundary_length": self.boundary_length,
            "sensors_accessed": self.sensors_accessed,
            "edges_accessed": self.edges_accessed,
            "value": self.value,
            "elapsed_s": self.elapsed_s,
            "phase_s": dict(self.phase_s),
            "cache_hits": dict(self.cache_hits),
            "dispatch_strategy": self.dispatch_strategy,
            "skipped_sensors": list(self.skipped_sensors),
            "lost_walls": self.lost_walls,
            "error_bound": self.error_bound,
            "shards": self.shards,
            "fanout": self.fanout,
            "stage_s": dict(self.stage_s),
            "profile_self_s": dict(self.profile_self_s),
        }


def _profile_self_s(profiler) -> Dict[str, float]:
    """Sampled self time per leaf span, ``query.`` prefix stripped so
    the plan's profile line aligns with the phase names."""
    if profiler is None:
        return {}
    out: Dict[str, float] = {}
    for leaf, seconds in profiler.table.leaf_self_seconds().items():
        if leaf == "(no span)":
            continue
        name = leaf[6:] if leaf.startswith("query.") else leaf
        out[name] = out.get(name, 0.0) + seconds
    return out


def build_explain(
    engine: "QueryEngine", result: "QueryResult"
) -> QueryExplain:
    """Fold an executed, provenance-carrying result into a plan.

    Raises ``ValueError`` when the result carries no provenance —
    the plan reports measured internals only, never re-derived ones.
    """
    provenance = result.provenance
    if provenance is None:
        raise ValueError(
            "explain needs a provenance-carrying result; execute with "
            "Instrumentation(provenance=True) or use QueryEngine.explain()"
        )
    query = result.query
    planner = engine._compiled
    planner_stats: Dict[str, int] = (
        planner.describe() if planner is not None else {}
    )
    degradation = result.degradation
    dispatch_strategy = None
    if engine.faults is not None:
        dispatch_strategy = engine.dispatch_strategy
    box = query.box
    return QueryExplain(
        kind=query.kind,
        bound=query.bound,
        box=(box.min_x, box.min_y, box.max_x, box.max_y),
        t1=query.t1,
        t2=query.t2,
        planner=engine.planner_in_use,
        access_mode=engine.access_mode,
        static_eval=engine.static_eval,
        store=type(engine.store).__name__,
        network=engine.network.name,
        planner_stats=planner_stats,
        missed=result.missed,
        junction_count=provenance.junction_count,
        region_ids=tuple(provenance.region_ids),
        boundary_length=provenance.boundary_length,
        sensors_accessed=result.nodes_accessed,
        edges_accessed=result.edges_accessed,
        value=result.value,
        elapsed_s=result.elapsed,
        phase_s=dict(provenance.phase_s),
        cache_hits=dict(provenance.cache_hits),
        dispatch_strategy=dispatch_strategy,
        skipped_sensors=(
            degradation.skipped_sensors if degradation is not None else ()
        ),
        lost_walls=degradation.lost_walls if degradation is not None else 0,
        error_bound=(
            degradation.error_bound if degradation is not None else None
        ),
        profile_self_s=_profile_self_s(engine.obs.profiler),
    )


def build_sharded_explain(
    engine: "ShardedQueryEngine",
    result: "QueryResult",
    *,
    junction_count: int,
    fanout: int,
    stage_s: Mapping[str, float],
) -> QueryExplain:
    """Fold a scatter-gather execution into a plan.

    The sharded path has no single-process provenance: the plan is
    assembled from the parent's measured routing (junctions resolved,
    shards reached, per-stage wall times) and the merged shard
    accounting already on the result.  Field parity with
    :func:`build_explain` holds for everything region-determined —
    regions, boundary length, sensors, edges, value — because the
    gather re-emits results field-identical to the single-process
    compiled planner.
    """
    query = result.query
    box = query.box
    planner = engine._planner
    return QueryExplain(
        kind=query.kind,
        bound=query.bound,
        box=(box.min_x, box.min_y, box.max_x, box.max_y),
        t1=query.t1,
        t2=query.t2,
        planner="sharded",
        access_mode=engine.access_mode,
        static_eval=engine.static_eval,
        store=f"{engine.shards}xCompiledTrackingForm(shm)",
        network=engine.network.name,
        planner_stats=planner.describe() if planner is not None else {},
        missed=result.missed,
        junction_count=junction_count,
        region_ids=tuple(result.regions),
        boundary_length=result.edges_accessed,
        sensors_accessed=result.nodes_accessed,
        edges_accessed=result.edges_accessed,
        value=result.value,
        elapsed_s=result.elapsed,
        shards=engine.shards,
        fanout=fanout,
        stage_s=dict(stage_s),
        profile_self_s=_profile_self_s(engine.obs.profiler),
    )
