"""Always-on query flight recorder: a bounded ring of cheap per-query
records, with slow-query promotion to full detail.

Every query execution appends one :class:`FlightRecord` to a
:class:`FlightRecorder` — a ``deque(maxlen=capacity)`` ring buffer, so
memory is bounded no matter how long the process runs and the oldest
record is evicted first.  The hot-path cost is one ``__slots__`` object
and two deque operations (well under a microsecond); anything expensive
— the query digest, JSON shaping — is deferred to dump time.

Records whose latency exceeds ``slow_threshold_s`` (strictly greater)
are *promoted*: flagged ``slow``, copied into a second ring that slow
traffic cannot be flushed out of by fast traffic, and offered back to
the caller so it can attach a ``detail`` payload (measured provenance,
grafted worker spans) while the evidence is still at hand.

The recorder is deliberately engine-agnostic: :class:`~repro.query.QueryEngine`
records ``stage_s`` phase timings, :class:`~repro.query.ShardedQueryEngine`
records scatter-gather stage timings plus the shard fan-out, and the
framework exposes the shared ring via ``flight_log()``.
"""

from __future__ import annotations

import hashlib
import json
import time
from collections import deque
from typing import Any, Deque, Dict, List, Optional, Tuple

#: Default ring capacity: enough recent traffic for post-hoc debugging,
#: small enough that an always-on recorder is memory-trivial.
DEFAULT_CAPACITY = 256

#: Slow records kept even after the main ring has cycled past them.
DEFAULT_SLOW_CAPACITY = 32

#: Default promotion threshold in seconds.
DEFAULT_SLOW_THRESHOLD_S = 0.1


class FlightRecord:
    """One query's flight-recorder entry.

    Holds a *reference* to the query (digesting it is deferred to
    :meth:`as_dict`) plus the scalars the recording engine already had
    in hand — nothing here is computed for the recorder's sake.
    """

    __slots__ = (
        "seq",
        "wall_time",
        "query",
        "planner",
        "elapsed_s",
        "value",
        "missed",
        "fanout",
        "stage_s",
        "degraded",
        "generation",
        "slow",
        "detail",
        "peak_rss_bytes",
        "alloc_peak_bytes",
    )

    def __init__(
        self,
        seq: int,
        wall_time: float,
        query: Any,
        planner: str,
        elapsed_s: float,
        value: Optional[float],
        missed: bool,
        fanout: int,
        stage_s: Optional[Dict[str, float]],
        degraded: Optional[str],
        generation: Optional[int] = None,
    ) -> None:
        self.seq = seq
        self.wall_time = wall_time
        self.query = query
        self.planner = planner
        self.elapsed_s = elapsed_s
        self.value = value
        self.missed = missed
        self.fanout = fanout
        self.stage_s = stage_s
        self.degraded = degraded
        self.generation = generation
        self.slow = False
        #: Promotion payload (provenance dict, serialized spans, …);
        #: attached by the caller when ``slow`` is True.
        self.detail: Optional[Dict[str, Any]] = None
        #: Memory snapshot taken only on the strict slow path
        #: (:func:`repro.obs.memory_snapshot`): process peak RSS and,
        #: when tracemalloc is tracing, its traced-allocation peak.
        self.peak_rss_bytes: Optional[int] = None
        self.alloc_peak_bytes: Optional[int] = None

    @property
    def digest(self) -> str:
        """Short stable digest of the query parameters (lazy)."""
        return query_digest(self.query, generation=self.generation)

    def as_dict(self) -> Dict[str, Any]:
        """JSON-safe representation; this is where lazy work happens."""
        query = self.query
        out: Dict[str, Any] = {
            "seq": self.seq,
            "wall_time": self.wall_time,
            "digest": self.digest,
            "kind": getattr(query, "kind", None),
            "bound": getattr(query, "bound", None),
            "planner": self.planner,
            "elapsed_s": self.elapsed_s,
            "value": self.value,
            "missed": self.missed,
            "fanout": self.fanout,
            "stage_s": dict(self.stage_s) if self.stage_s else {},
            "degraded": self.degraded,
            "generation": self.generation,
            "slow": self.slow,
        }
        if self.peak_rss_bytes is not None:
            out["peak_rss_bytes"] = self.peak_rss_bytes
        if self.alloc_peak_bytes is not None:
            out["alloc_peak_bytes"] = self.alloc_peak_bytes
        if self.detail is not None:
            out["detail"] = self.detail
        return out

    def __repr__(self) -> str:
        flag = " SLOW" if self.slow else ""
        return (
            f"FlightRecord(#{self.seq} {self.planner} "
            f"{self.elapsed_s * 1e3:.3f}ms fanout={self.fanout}{flag})"
        )


def query_digest(query: Any, generation: Optional[int] = None) -> str:
    """Deterministic 12-hex-char digest of a query's parameters.

    Same rectangle/interval/kind/bound → same digest, so repeated slow
    queries group in the flight log.  Computed only at dump time.

    ``generation`` is the data version of the store the query ran
    against (streaming stores bump it on every append).  Mixing it in
    keeps digests truthful over mutable data: the same rectangle asked
    before and after an append is a *different* answer and must not
    group.  ``None`` — a static, build-once store — leaves the digest
    exactly as before.
    """
    box = getattr(query, "box", None)
    key = (
        repr(tuple(box) if box is not None else None),
        getattr(query, "t1", None),
        getattr(query, "t2", None),
        getattr(query, "kind", None),
        getattr(query, "bound", None),
    )
    if generation is not None:
        key = key + (int(generation),)
    return hashlib.sha1(repr(key).encode()).hexdigest()[:12]


class FlightRecorder:
    """Bounded always-on ring of per-query :class:`FlightRecord` entries."""

    __slots__ = (
        "capacity",
        "slow_threshold_s",
        "_ring",
        "_slow",
        "_seq",
        "slow_total",
    )

    def __init__(
        self,
        capacity: int = DEFAULT_CAPACITY,
        slow_threshold_s: float = DEFAULT_SLOW_THRESHOLD_S,
        slow_capacity: int = DEFAULT_SLOW_CAPACITY,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"flight-recorder capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.slow_threshold_s = slow_threshold_s
        self._ring: Deque[FlightRecord] = deque(maxlen=capacity)
        self._slow: Deque[FlightRecord] = deque(maxlen=slow_capacity)
        self._seq = 0
        #: Slow queries ever promoted (survives ring eviction).
        self.slow_total = 0

    # ------------------------------------------------------------------
    def record(
        self,
        query: Any,
        *,
        planner: str,
        elapsed_s: float,
        value: Optional[float] = None,
        missed: bool = False,
        fanout: int = 0,
        stage_s: Optional[Dict[str, float]] = None,
        degraded: Optional[str] = None,
        generation: Optional[int] = None,
    ) -> FlightRecord:
        """Append one record; returns it so a slow caller can attach
        ``detail``.  Promotion fires iff ``elapsed_s`` strictly exceeds
        the threshold.  ``generation`` is the store's data version at
        execution time (``None`` for static stores)."""
        self._seq += 1
        entry = FlightRecord(
            self._seq,
            time.time(),
            query,
            planner,
            elapsed_s,
            value,
            missed,
            fanout,
            stage_s,
            degraded,
            generation,
        )
        self._ring.append(entry)
        if elapsed_s > self.slow_threshold_s:
            entry.slow = True
            self._slow.append(entry)
            self.slow_total += 1
        return entry

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._ring)

    @property
    def total(self) -> int:
        """Queries ever recorded (monotonic; ring holds the newest)."""
        return self._seq

    @property
    def records(self) -> Tuple[FlightRecord, ...]:
        """Current ring contents, oldest first."""
        return tuple(self._ring)

    @property
    def slow_records(self) -> Tuple[FlightRecord, ...]:
        """Promoted slow-query records, oldest first."""
        return tuple(self._slow)

    # ------------------------------------------------------------------
    def as_dict(self) -> Dict[str, Any]:
        """JSON-safe dump of both rings plus recorder configuration."""
        return {
            "capacity": self.capacity,
            "slow_threshold_s": self.slow_threshold_s,
            "total": self.total,
            "slow_total": self.slow_total,
            "records": [entry.as_dict() for entry in self._ring],
            "slow": [entry.as_dict() for entry in self._slow],
        }

    def to_json(self, indent: Optional[int] = 1) -> str:
        return json.dumps(self.as_dict(), indent=indent)

    def dump(self, path: Any) -> None:
        """Write the JSON dump to ``path``."""
        with open(path, "w") as handle:
            handle.write(self.to_json())

    def format_slow(self, limit: int = 10) -> List[str]:
        """Human-readable lines for the newest slow queries (dashboard
        table, CLI summaries)."""
        lines: List[str] = []
        for entry in list(self._slow)[-limit:][::-1]:
            stages = " ".join(
                f"{name}={seconds * 1e3:.2f}ms"
                for name, seconds in (entry.stage_s or {}).items()
            )
            memory = ""
            if entry.peak_rss_bytes is not None:
                memory = f" rss={entry.peak_rss_bytes / 1e6:.1f}MB"
            if entry.alloc_peak_bytes is not None:
                memory += f" alloc={entry.alloc_peak_bytes / 1e6:.2f}MB"
            lines.append(
                f"#{entry.seq} {entry.digest} {entry.planner} "
                f"{entry.elapsed_s * 1e3:.3f}ms fanout={entry.fanout}"
                + (f" [{stages}]" if stages else "")
                + (f" degraded={entry.degraded}" if entry.degraded else "")
                + memory
            )
        return lines
