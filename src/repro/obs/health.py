"""Per-sensor health scoring and fleet rollups.

The fault-tolerant dispatcher (:class:`~repro.network.NetworkSimulator`)
and its active probe sweeps record per-sensor-labeled telemetry —
``repro_sensor_attempts_total``, ``_acks_total``, ``_drops_total``,
``_retries_total``, ``_detours_total`` and ``_latency_total``, each
labeled ``sensor="<id>"``.  This module folds those counters into one
:class:`SensorHealth` per sensor:

- ``score`` — the acknowledged fraction of contact attempts in
  ``[0, 1]`` (every retry is an attempt, so flaky sensors score low
  without a separate penalty term);
- ``status`` — ``"failed"`` (contacted, never acknowledged),
  ``"degraded"`` (score under the healthy threshold), ``"healthy"``,
  or ``"idle"`` (never contacted — a sensor the workload and probes
  did not reach says nothing about its health).

:func:`fleet_health` rolls the fleet up (counts per status, mean
score, worst offenders) and formats the report the ``repro monitor``
CLI prints and the dashboard renders as the sensor heatmap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Tuple

from .metrics import MetricsRegistry, get_registry

#: Score below which a responding sensor is reported ``degraded``.
DEGRADED_THRESHOLD = 0.8

#: Minimum attempts before a never-acknowledging sensor is ``failed``
#: (a single dropped message should not condemn a healthy sensor).
FAILED_MIN_ATTEMPTS = 2

#: The per-sensor counter families the simulator emits.
SENSOR_METRICS = {
    "attempts": "repro_sensor_attempts_total",
    "acks": "repro_sensor_acks_total",
    "drops": "repro_sensor_drops_total",
    "retries": "repro_sensor_retries_total",
    "detours": "repro_sensor_detours_total",
    "latency": "repro_sensor_latency_total",
}


@dataclass(frozen=True)
class SensorHealth:
    """Cumulative contact telemetry and derived health of one sensor."""

    sensor: int
    attempts: int = 0
    acks: int = 0
    drops: int = 0
    retries: int = 0
    detours: int = 0
    latency: float = 0.0

    @property
    def score(self) -> float:
        """Acknowledged fraction of contact attempts (1.0 when idle)."""
        if self.attempts <= 0:
            return 1.0
        return self.acks / self.attempts

    @property
    def status(self) -> str:
        if self.attempts <= 0:
            return "idle"
        if self.acks == 0 and self.attempts >= FAILED_MIN_ATTEMPTS:
            return "failed"
        if self.score < DEGRADED_THRESHOLD:
            return "degraded"
        return "healthy"

    def as_dict(self) -> Dict[str, Any]:
        return {
            "sensor": self.sensor,
            "attempts": self.attempts,
            "acks": self.acks,
            "drops": self.drops,
            "retries": self.retries,
            "detours": self.detours,
            "latency": self.latency,
            "score": self.score,
            "status": self.status,
        }


@dataclass(frozen=True)
class FleetHealth:
    """Health of every known sensor plus fleet-level rollups."""

    sensors: Tuple[SensorHealth, ...]

    def by_status(self, status: str) -> Tuple[SensorHealth, ...]:
        return tuple(s for s in self.sensors if s.status == status)

    @property
    def counts(self) -> Dict[str, int]:
        rollup = {"healthy": 0, "degraded": 0, "failed": 0, "idle": 0}
        for sensor in self.sensors:
            rollup[sensor.status] += 1
        return rollup

    @property
    def failed_sensors(self) -> Tuple[int, ...]:
        return tuple(s.sensor for s in self.by_status("failed"))

    @property
    def mean_score(self) -> float:
        """Mean score over contacted sensors (1.0 for an idle fleet)."""
        contacted = [s for s in self.sensors if s.attempts > 0]
        if not contacted:
            return 1.0
        return sum(s.score for s in contacted) / len(contacted)

    def worst_offenders(self, n: int = 10) -> Tuple[SensorHealth, ...]:
        """The ``n`` contacted sensors burning the most budget: lowest
        score first, ties broken by most attempts (louder failures
        first)."""
        contacted = [s for s in self.sensors if s.attempts > 0]
        contacted.sort(key=lambda s: (s.score, -s.attempts, s.sensor))
        return tuple(contacted[:n])

    def format_report(self, n_offenders: int = 10) -> str:
        counts = self.counts
        lines = [
            "fleet health: "
            f"{counts['healthy']} healthy, {counts['degraded']} degraded, "
            f"{counts['failed']} failed, {counts['idle']} idle "
            f"(mean score {self.mean_score:.2f})"
        ]
        offenders = self.worst_offenders(n_offenders)
        if offenders:
            lines.append(
                "  sensor   score  status    att   ack  drop  retry  detour"
            )
            for s in offenders:
                lines.append(
                    f"  {s.sensor:>6}  {s.score:>6.2f}  {s.status:<8}"
                    f"{s.attempts:>5} {s.acks:>5} {s.drops:>5} "
                    f"{s.retries:>6} {s.detours:>7}"
                )
        return "\n".join(lines)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "counts": self.counts,
            "mean_score": self.mean_score,
            "failed_sensors": list(self.failed_sensors),
            "sensors": [s.as_dict() for s in self.sensors],
        }


def collect_sensor_stats(
    registry: Optional[MetricsRegistry] = None,
) -> Dict[int, Dict[str, float]]:
    """Raw per-sensor telemetry from a registry's labeled counters."""
    registry = registry if registry is not None else get_registry()
    wanted = {name: key for key, name in SENSOR_METRICS.items()}
    stats: Dict[int, Dict[str, float]] = {}
    for name, labels, counter in registry.iter_counters():
        key = wanted.get(name)
        if key is None or "sensor" not in labels:
            continue
        try:
            sensor = int(labels["sensor"])
        except ValueError:
            continue
        stats.setdefault(sensor, {})[key] = counter.value
    return stats


def fleet_health(
    registry: Optional[MetricsRegistry] = None,
    known_sensors: Optional[Iterable[int]] = None,
) -> FleetHealth:
    """Fold per-sensor counters into a :class:`FleetHealth`.

    ``known_sensors`` (e.g. a deployed network's sensor set) adds
    never-contacted sensors as ``idle`` rows so the rollup covers the
    whole fleet, not just the sensors queries happened to touch.
    """
    stats = collect_sensor_stats(registry)
    universe = set(stats)
    if known_sensors is not None:
        universe.update(int(s) for s in known_sensors)
    rows: List[SensorHealth] = []
    for sensor in sorted(universe):
        values = stats.get(sensor, {})
        rows.append(
            SensorHealth(
                sensor=sensor,
                attempts=int(values.get("attempts", 0)),
                acks=int(values.get("acks", 0)),
                drops=int(values.get("drops", 0)),
                retries=int(values.get("retries", 0)),
                detours=int(values.get("detours", 0)),
                latency=float(values.get("latency", 0.0)),
            )
        )
    return FleetHealth(sensors=tuple(rows))
