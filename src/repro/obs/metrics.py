"""Process-global, swappable metrics registry (counters/gauges/histograms).

Zero-dependency instrument set modelled on the Prometheus client
surface, sized for the hot paths of this codebase:

- :class:`Counter` — monotone ``inc(n)`` (floats allowed, so seconds
  totals work);
- :class:`Gauge` — ``set(v)`` / ``inc(n)``;
- :class:`Histogram` — fixed upper-bound buckets, cumulative on export.

Instruments are memoised per ``(name, labels)`` inside a
:class:`MetricsRegistry`, so call sites may either cache the instrument
reference (hot loops) or re-fetch it on every use (one dict lookup).
The registry exports as JSON (:meth:`MetricsRegistry.snapshot`) and
Prometheus text exposition format (:meth:`MetricsRegistry.to_prometheus`).

The *process-global* registry is swappable: :func:`get_registry` /
:func:`set_registry` / the :func:`use_registry` context manager.  The
default global registry is a real :class:`MetricsRegistry` (increments
are a dict hit + an add, cheap enough for per-query accounting); tests
and the CLI swap in a fresh registry to isolate counts.  Objects that
cache instrument references at construction time (compiled forms,
engines) keep writing to the registry that was current when they were
built — swap the registry *before* building the pipeline you want
measured.
"""

from __future__ import annotations

import bisect
import contextlib
import math
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

LabelKey = Tuple[Tuple[str, str], ...]

#: Default histogram buckets: powers-of-2-ish span covering message
#: counts, hop counts and boundary lengths at every benchmark scale.
DEFAULT_BUCKETS = (1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 5000)

#: Wall-time buckets (seconds) for latency histograms: per-query times
#: span tens of microseconds (compiled batch) to tens of milliseconds
#: (python planner on large boundaries).
SECONDS_BUCKETS = (
    1e-5, 2e-5, 5e-5, 1e-4, 2e-4, 5e-4,
    1e-3, 2e-3, 5e-3, 1e-2, 2e-2, 5e-2, 0.1, 0.5, 1.0, 5.0,
)


def _label_key(labels: Dict[str, Any]) -> LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """Monotonically increasing value (int or float)."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelKey = ()) -> None:
        self.name = name
        self.labels = labels
        self.value: float = 0

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease")
        self.value += amount


class Gauge:
    """A value that can go up and down."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelKey = ()) -> None:
        self.name = name
        self.labels = labels
        self.value: float = 0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1) -> None:
        self.value += amount


class Histogram:
    """Fixed-bucket histogram (cumulative ``le`` buckets on export)."""

    __slots__ = ("name", "labels", "uppers", "counts", "sum", "count")

    def __init__(
        self,
        name: str,
        labels: LabelKey = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        self.name = name
        self.labels = labels
        self.uppers: Tuple[float, ...] = tuple(sorted(buckets))
        #: Per-bucket (non-cumulative) counts + one overflow slot.
        self.counts: List[int] = [0] * (len(self.uppers) + 1)
        self.sum: float = 0.0
        self.count: int = 0

    def observe(self, value: float) -> None:
        self.counts[bisect.bisect_left(self.uppers, value)] += 1
        self.sum += value
        self.count += 1

    def cumulative(self) -> List[Tuple[float, int]]:
        """``(upper_bound, cumulative_count)`` pairs ending at +Inf."""
        out: List[Tuple[float, int]] = []
        running = 0
        for upper, count in zip(self.uppers, self.counts):
            running += count
            out.append((upper, running))
        out.append((math.inf, running + self.counts[-1]))
        return out

    def quantile(self, q: float) -> float:
        """The ``q``-quantile estimated by linear interpolation within
        buckets (the ``histogram_quantile`` convention).

        Observations landing in the overflow bucket clamp to the top
        finite bound — the histogram does not know how far past it they
        went.  Returns NaN for an empty histogram.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q!r}")
        if self.count == 0 or not self.uppers:
            return math.nan
        target = q * self.count
        running = 0
        for i, upper in enumerate(self.uppers):
            in_bucket = self.counts[i]
            if in_bucket and running + in_bucket >= target:
                lower = self.uppers[i - 1] if i > 0 else min(0.0, upper)
                fraction = (target - running) / in_bucket
                return lower + (upper - lower) * fraction
            running += in_bucket
        return self.uppers[-1]


class MetricsRegistry:
    """Memoised instrument store with JSON/Prometheus exports."""

    def __init__(self) -> None:
        self._counters: Dict[Tuple[str, LabelKey], Counter] = {}
        self._gauges: Dict[Tuple[str, LabelKey], Gauge] = {}
        self._histograms: Dict[Tuple[str, LabelKey], Histogram] = {}
        self._help: Dict[str, str] = {}

    # ------------------------------------------------------------------
    def counter(self, name: str, help: str = "", **labels: Any) -> Counter:
        key = (name, _label_key(labels))
        instrument = self._counters.get(key)
        if instrument is None:
            instrument = self._counters[key] = Counter(name, key[1])
            if help:
                self._help.setdefault(name, help)
        return instrument

    def gauge(self, name: str, help: str = "", **labels: Any) -> Gauge:
        key = (name, _label_key(labels))
        instrument = self._gauges.get(key)
        if instrument is None:
            instrument = self._gauges[key] = Gauge(name, key[1])
            if help:
                self._help.setdefault(name, help)
        return instrument

    def histogram(
        self,
        name: str,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
        help: str = "",
        **labels: Any,
    ) -> Histogram:
        key = (name, _label_key(labels))
        instrument = self._histograms.get(key)
        if instrument is None:
            instrument = self._histograms[key] = Histogram(
                name, key[1], buckets
            )
            if help:
                self._help.setdefault(name, help)
        return instrument

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def value(self, name: str, **labels: Any) -> float:
        """Current value of a counter or gauge (0 if never touched)."""
        key = (name, _label_key(labels))
        instrument = self._counters.get(key) or self._gauges.get(key)
        return instrument.value if instrument is not None else 0

    def sum_values(self, name: str) -> float:
        """Sum of a counter's value across every label combination."""
        return sum(
            c.value for (n, _), c in self._counters.items() if n == name
        )

    def iter_counters(self) -> Iterator[Tuple[str, Dict[str, str], Counter]]:
        """``(name, labels, instrument)`` for every counter, sorted."""
        for (name, labels), counter in sorted(self._counters.items()):
            yield name, dict(labels), counter

    def iter_gauges(self) -> Iterator[Tuple[str, Dict[str, str], Gauge]]:
        """``(name, labels, instrument)`` for every gauge, sorted."""
        for (name, labels), gauge in sorted(self._gauges.items()):
            yield name, dict(labels), gauge

    def iter_histograms(
        self,
    ) -> Iterator[Tuple[str, Dict[str, str], Histogram]]:
        """``(name, labels, instrument)`` for every histogram, sorted."""
        for (name, labels), hist in sorted(self._histograms.items()):
            yield name, dict(labels), hist

    # ------------------------------------------------------------------
    # Structured dumps and cross-process merging
    # ------------------------------------------------------------------
    def dump(self) -> Dict[str, Any]:
        """Round-trippable instrument dump (unlike :meth:`snapshot`,
        which flattens labels into display names).

        Each entry keeps ``(name, labels, state)`` separately so
        :meth:`absorb` can re-key it into another registry — the
        transport the sharded query engine uses to merge worker-process
        metrics into the parent registry.  JSON-safe and picklable.
        """
        return {
            "counters": [
                [name, list(labels), counter.value]
                for (name, labels), counter in sorted(self._counters.items())
            ],
            "gauges": [
                [name, list(labels), gauge.value]
                for (name, labels), gauge in sorted(self._gauges.items())
            ],
            "histograms": [
                [
                    name,
                    list(labels),
                    {
                        "uppers": list(hist.uppers),
                        "counts": list(hist.counts),
                        "sum": hist.sum,
                        "count": hist.count,
                    },
                ]
                for (name, labels), hist in sorted(self._histograms.items())
            ],
            "help": dict(self._help),
        }

    def absorb(
        self, dump: Dict[str, Any], skip: Sequence[str] = ()
    ) -> None:
        """Merge a :meth:`dump` (or :func:`diff_dumps` delta) into this
        registry: counters and histogram buckets *add*, gauges take the
        dumped value.  Metric names in ``skip`` are ignored — the
        sharded engine uses this to keep per-query accounting it
        already did in the parent from being double counted.
        """
        skipped = set(skip)
        for name, labels, value in dump.get("counters", ()):
            if name in skipped or not value:
                continue
            key = (name, tuple((k, v) for k, v in labels))
            counter = self._counters.get(key)
            if counter is None:
                counter = self._counters[key] = Counter(name, key[1])
            counter.value += value
        for name, labels, value in dump.get("gauges", ()):
            if name in skipped:
                continue
            key = (name, tuple((k, v) for k, v in labels))
            gauge = self._gauges.get(key)
            if gauge is None:
                gauge = self._gauges[key] = Gauge(name, key[1])
            gauge.value = value
        for name, labels, state in dump.get("histograms", ()):
            if name in skipped or not state["count"]:
                continue
            key = (name, tuple((k, v) for k, v in labels))
            hist = self._histograms.get(key)
            if hist is None:
                hist = self._histograms[key] = Histogram(
                    name, key[1], buckets=state["uppers"]
                )
            if tuple(hist.uppers) != tuple(state["uppers"]):
                raise ValueError(
                    f"histogram {name} bucket mismatch: "
                    f"{hist.uppers} vs {tuple(state['uppers'])}"
                )
            for i, count in enumerate(state["counts"]):
                hist.counts[i] += count
            hist.sum += state["sum"]
            hist.count += state["count"]
        for name, text in dump.get("help", {}).items():
            self._help.setdefault(name, text)

    # ------------------------------------------------------------------
    # Exports
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """JSON-safe dict of every instrument (for results files)."""
        out: Dict[str, Any] = {"counters": {}, "gauges": {}, "histograms": {}}
        for (name, labels), counter in sorted(self._counters.items()):
            out["counters"][_flat_name(name, labels)] = counter.value
        for (name, labels), gauge in sorted(self._gauges.items()):
            out["gauges"][_flat_name(name, labels)] = gauge.value
        for (name, labels), hist in sorted(self._histograms.items()):
            out["histograms"][_flat_name(name, labels)] = {
                "sum": hist.sum,
                "count": hist.count,
                "buckets": [
                    [upper if math.isfinite(upper) else "+Inf", cum]
                    for upper, cum in hist.cumulative()
                ],
            }
        return out

    def to_json(self) -> Dict[str, Any]:
        return self.snapshot()

    def to_prometheus(self) -> str:
        """Prometheus text exposition format (version 0.0.4)."""
        lines: List[str] = []
        emitted_meta: set = set()

        def meta(name: str, kind: str) -> None:
            if name in emitted_meta:
                return
            emitted_meta.add(name)
            if name in self._help:
                lines.append(f"# HELP {name} {self._help[name]}")
            lines.append(f"# TYPE {name} {kind}")

        for (name, labels), counter in sorted(self._counters.items()):
            meta(name, "counter")
            lines.append(
                f"{name}{_prom_labels(labels)} {_prom_value(counter.value)}"
            )
        for (name, labels), gauge in sorted(self._gauges.items()):
            meta(name, "gauge")
            lines.append(
                f"{name}{_prom_labels(labels)} {_prom_value(gauge.value)}"
            )
        for (name, labels), hist in sorted(self._histograms.items()):
            meta(name, "histogram")
            for upper, cumulative in hist.cumulative():
                le = "+Inf" if math.isinf(upper) else _prom_value(upper)
                bucket_labels = _prom_labels(labels + (("le", le),))
                lines.append(f"{name}_bucket{bucket_labels} {cumulative}")
            lines.append(
                f"{name}_sum{_prom_labels(labels)} {_prom_value(hist.sum)}"
            )
            lines.append(f"{name}_count{_prom_labels(labels)} {hist.count}")
        return "\n".join(lines) + ("\n" if lines else "")


class _NullInstrument:
    """Accepts every instrument method and does nothing."""

    __slots__ = ()
    value = 0
    sum = 0.0
    count = 0

    def inc(self, amount: float = 1) -> None:
        return None

    def set(self, value: float) -> None:
        return None

    def observe(self, value: float) -> None:
        return None

    def cumulative(self) -> List[Tuple[float, int]]:
        return [(math.inf, 0)]

    def quantile(self, q: float) -> float:
        return math.nan


_NULL_INSTRUMENT = _NullInstrument()


class NullMetricsRegistry:
    """No-op registry: every instrument is a shared null object."""

    def counter(self, name: str, help: str = "", **labels: Any):
        return _NULL_INSTRUMENT

    def gauge(self, name: str, help: str = "", **labels: Any):
        return _NULL_INSTRUMENT

    def histogram(self, name, buckets=DEFAULT_BUCKETS, help="", **labels):
        return _NULL_INSTRUMENT

    def value(self, name: str, **labels: Any) -> float:
        return 0

    def sum_values(self, name: str) -> float:
        return 0

    def iter_counters(self):
        return iter(())

    def iter_gauges(self):
        return iter(())

    def iter_histograms(self):
        return iter(())

    def snapshot(self) -> Dict[str, Any]:
        return {"counters": {}, "gauges": {}, "histograms": {}}

    def to_json(self) -> Dict[str, Any]:
        return self.snapshot()

    def to_prometheus(self) -> str:
        return ""


NULL_REGISTRY = NullMetricsRegistry()

#: The process-global registry.  Real by default (increments are cheap
#: and the figure benchmarks snapshot it into their results files).
_GLOBAL_REGISTRY: MetricsRegistry = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The current process-global registry."""
    return _GLOBAL_REGISTRY


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the process-global registry; returns the previous one."""
    global _GLOBAL_REGISTRY
    previous = _GLOBAL_REGISTRY
    _GLOBAL_REGISTRY = registry
    return previous


@contextlib.contextmanager
def use_registry(registry: Optional[MetricsRegistry] = None) -> Iterator[MetricsRegistry]:
    """Temporarily install ``registry`` (default: a fresh one)."""
    registry = registry if registry is not None else MetricsRegistry()
    previous = set_registry(registry)
    try:
        yield registry
    finally:
        set_registry(previous)


def diff_dumps(
    new: Dict[str, Any], old: Optional[Dict[str, Any]]
) -> Dict[str, Any]:
    """The delta between two :meth:`MetricsRegistry.dump` snapshots.

    Counters and histogram states subtract (instruments absent from
    ``old`` pass through whole); gauges keep the latest value.  Feeding
    the result to :meth:`MetricsRegistry.absorb` applies exactly the
    activity that happened between the two dumps — how a long-lived
    worker process ships each batch's metrics without resending its
    lifetime totals.
    """
    if old is None:
        return new

    def keyed(entries):
        return {(name, tuple(map(tuple, labels))): state
                for name, labels, state in entries}

    old_counters = keyed(old.get("counters", ()))
    counters = []
    for name, labels, value in new.get("counters", ()):
        delta = value - old_counters.get(
            (name, tuple(map(tuple, labels))), 0
        )
        if delta:
            counters.append([name, labels, delta])

    old_hists = keyed(old.get("histograms", ()))
    histograms = []
    for name, labels, state in new.get("histograms", ()):
        previous = old_hists.get((name, tuple(map(tuple, labels))))
        if previous is None:
            if state["count"]:
                histograms.append([name, labels, state])
            continue
        count = state["count"] - previous["count"]
        if not count:
            continue
        histograms.append(
            [
                name,
                labels,
                {
                    "uppers": state["uppers"],
                    "counts": [
                        n - o
                        for n, o in zip(state["counts"], previous["counts"])
                    ],
                    "sum": state["sum"] - previous["sum"],
                    "count": count,
                },
            ]
        )

    return {
        "counters": counters,
        "gauges": [list(entry) for entry in new.get("gauges", ())],
        "histograms": histograms,
        "help": dict(new.get("help", {})),
    }


# ----------------------------------------------------------------------
def _prom_labels(labels: LabelKey) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{key}="{_escape(value)}"' for key, value in labels
    )
    return "{" + inner + "}"


def _escape(value: str) -> str:
    return value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")


def _prom_value(value: float) -> str:
    if isinstance(value, float):
        # Exposition-format spellings for non-finite values: Prometheus
        # parsers accept +Inf/-Inf/NaN, not Python's repr() inf/nan.
        if math.isnan(value):
            return "NaN"
        if math.isinf(value):
            return "+Inf" if value > 0 else "-Inf"
        if not value.is_integer():
            return repr(value)
    return str(int(value))


def _flat_name(name: str, labels: LabelKey) -> str:
    return name + _prom_labels(labels)
