"""Per-query provenance: what a query *actually* touched and cost.

The headline numbers of the paper (speedup, sensors accessed, storage)
are accounting claims; :class:`QueryProvenance` records the measured
internals of one execution so the figure benchmarks can report them
directly instead of re-deriving estimates:

- the resolved junction count and the region ids the rectangle was
  approximated by;
- the boundary-chain length the integration walked;
- per-phase wall times (``resolve_junctions``, ``approximate_region``,
  ``build_boundary``, ``integrate``, ``account_sensors``);
- batched execution cache accounting — which of the shared caches
  (junctions / regions / boundary / sensors) served this query, and
  how much shared cache-fill time the query triggered (metered
  separately from its own ``elapsed``; see
  :meth:`repro.query.QueryEngine.execute_batch`).

Provenance is opt-in (``Instrumentation(provenance=True)``); the
default pipeline attaches nothing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Tuple


@dataclass
class QueryProvenance:
    """Measured internals of one query execution."""

    #: Resolution pipeline that executed ("compiled" or "python").
    planner: str = ""
    #: Junctions the query rectangle resolved to (|R|, §5.1.5).
    junction_count: int = 0
    #: Region ids of the executed approximation.
    region_ids: Tuple[int, ...] = ()
    #: Directed boundary-chain length integrated over.
    boundary_length: int = 0
    #: Communication sensors the accounting charged (pre-dispatch).
    sensors_accessed: int = 0
    #: True when every shared structure this query needed came from the
    #: batch caches (always False under ``execute()``).
    cache_served: bool = False
    #: Per-cache hit flags under batched execution
    #: (``junctions`` / ``regions`` / ``boundary`` / ``sensors``).
    cache_hits: Dict[str, bool] = field(default_factory=dict)
    #: Shared cache-fill seconds this query *triggered* (excluded from
    #: the result's ``elapsed`` so per-query times are comparable).
    shared_fill_s: float = 0.0
    #: Per-phase wall times in seconds.
    phase_s: Dict[str, float] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, Any]:
        """JSON-safe representation (results files, trace attributes)."""
        return {
            "planner": self.planner,
            "junction_count": self.junction_count,
            "region_ids": list(self.region_ids),
            "boundary_length": self.boundary_length,
            "sensors_accessed": self.sensors_accessed,
            "cache_served": self.cache_served,
            "cache_hits": dict(self.cache_hits),
            "shared_fill_s": self.shared_fill_s,
            "phase_s": dict(self.phase_s),
        }
