"""Self-contained HTML dashboard for the fleet monitor.

Renders one static HTML page — no external scripts, stylesheets or
fonts, so the file works as a CI build artifact opened from disk:

- a metadata header (workload configuration, fleet size, totals);
- a sparkline grid of the recorder's key series (inline SVG);
- the sharded stage-breakdown panel (route/scatter/worker_wait/merge
  p95 wall times, rendered only when the sharded engine ran);
- the SLO panel (compliance, error-budget burn bars, status);
- the per-sensor health heatmap table (cell color = health score);
- the alert timeline (SLO threshold crossings);
- the recent slow queries of the flight recorder (when given one),
  with their peak-RSS / traced-allocation evidence when recorded;
- the continuous profiler's top-frames panel (when given its
  :class:`~repro.obs.StackTable`): heaviest (span path, frame) rows
  with sampled self time and share bars;
- the query EXPLAIN plan of a sample query.

Everything it shows comes from the telemetry layers
(:mod:`~repro.obs.timeseries`, :mod:`~repro.obs.slo`,
:mod:`~repro.obs.health`, :mod:`~repro.obs.flight`,
:mod:`~repro.obs.profile`, :mod:`~repro.obs.explain`); this module
only formats.
"""

from __future__ import annotations

import html
from typing import Mapping, Optional, Sequence

from .flight import FlightRecorder
from .health import FleetHealth
from .profile import StackTable
from .slo import Alert, SLOStatus
from .timeseries import SeriesWindow, TimeSeriesRecorder

#: Scatter-gather stage-breakdown sparklines (flat histogram names as
#: the recorder samples them); silently skipped when the sharded
#: engine never ran.
STAGE_PANELS = tuple(
    (
        f"{stage} p95 (s)",
        f'repro_sharded_stage_seconds{{stage="{stage}"}}',
        "quantile",
        0.95,
    )
    for stage in ("route", "scatter", "worker_wait", "merge")
)

#: Streaming-ingestion sparklines (tail-vs-block layout of the
#: :class:`~repro.stream.StreamingEventStore`); silently skipped when
#: no streaming store ran.
STREAM_PANELS = (
    ("ingest/s", "repro_stream_events_total", "rate", None),
    ("compactions/s", "repro_stream_compactions_total", "rate", None),
    ("tail events", "repro_stream_tail_events", "gauge", None),
    ("block events", "repro_stream_block_events", "gauge", None),
    ("blocks", "repro_stream_blocks", "gauge", None),
)

#: Sparklines rendered when their metric exists, in display order:
#: (title, metric, kind, quantile-or-None).
DEFAULT_PANELS = (
    ("queries/s", "repro_queries_total", "rate", None),
    ("misses/s", "repro_query_misses_total", "rate", None),
    ("degraded/s", "repro_query_degraded_total", "rate", None),
    ("drops/s", "repro_sim_drops_total", "rate", None),
    ("retries/s", "repro_sim_retries_total", "rate", None),
    ("detours/s", "repro_sim_detours_total", "rate", None),
    ("sensors touched/s", "repro_query_sensors_accessed_total", "rate", None),
    ("p95 latency (s)", "repro_query_latency_seconds", "quantile", 0.95),
    ("p99 latency (s)", "repro_query_latency_seconds", "quantile", 0.99),
    ("p95 degradation", "repro_sim_degradation", "quantile", 0.95),
) + STREAM_PANELS + STAGE_PANELS

_CSS = """
body { font: 13px/1.45 system-ui, sans-serif; margin: 24px;
       color: #1f2430; background: #fafbfc; }
h1 { font-size: 19px; margin: 0 0 4px; }
h2 { font-size: 15px; margin: 26px 0 8px; }
.meta { color: #5b6472; margin-bottom: 14px; }
.meta td { padding: 1px 14px 1px 0; }
.grid { display: flex; flex-wrap: wrap; gap: 14px; }
.panel { background: #fff; border: 1px solid #e3e6ea; border-radius: 6px;
         padding: 8px 10px; }
.panel .title { font-size: 11px; color: #5b6472; }
.panel .value { font-size: 15px; font-weight: 600; }
table.slo, table.heat { border-collapse: collapse; background: #fff; }
table.slo td, table.slo th { border: 1px solid #e3e6ea; padding: 4px 10px;
                             text-align: left; font-size: 12px; }
.bar { background: #eef1f4; border-radius: 3px; width: 140px;
       height: 10px; display: inline-block; vertical-align: middle; }
.bar span { display: block; height: 10px; border-radius: 3px; }
.ok { color: #11734b; font-weight: 600; }
.bad { color: #b3261e; font-weight: 600; }
table.heat td { width: 26px; height: 22px; text-align: center;
                font-size: 10px; border: 1px solid #fff; color: #1f2430; }
pre { background: #fff; border: 1px solid #e3e6ea; border-radius: 6px;
      padding: 10px 12px; font-size: 12px; overflow-x: auto; }
.legend span { display: inline-block; padding: 1px 8px; margin-right: 6px;
               border-radius: 3px; font-size: 11px; }
"""


def _sparkline(
    series: SeriesWindow, width: int = 220, height: int = 44
) -> str:
    """Inline SVG polyline of one series (None values break the line)."""
    points = [
        (i, float(v))
        for i, v in enumerate(series.values)
        if v is not None and v == v  # drop None and NaN
    ]
    if not points:
        return (
            f'<svg width="{width}" height="{height}">'
            f'<text x="4" y="{height // 2}" fill="#9aa2ad" '
            f'font-size="10">no data</text></svg>'
        )
    n = max(len(series.values) - 1, 1)
    lo = min(v for _, v in points)
    hi = max(v for _, v in points)
    span = (hi - lo) or 1.0
    pad = 3

    def x(i: float) -> float:
        return pad + (width - 2 * pad) * i / n

    def y(v: float) -> float:
        return height - pad - (height - 2 * pad) * (v - lo) / span

    coords = " ".join(f"{x(i):.1f},{y(v):.1f}" for i, v in points)
    last_i, last_v = points[-1]
    return (
        f'<svg width="{width}" height="{height}" role="img">'
        f'<polyline points="{coords}" fill="none" stroke="#3564c4" '
        f'stroke-width="1.5"/>'
        f'<circle cx="{x(last_i):.1f}" cy="{y(last_v):.1f}" r="2.2" '
        f'fill="#3564c4"/></svg>'
    )


def _score_color(score: float) -> str:
    """Green → amber → red by health score."""
    score = min(max(score, 0.0), 1.0)
    hue = int(score * 120)  # 0 = red, 120 = green
    return f"hsl({hue}, 72%, 72%)"


def _slo_rows(statuses: Sequence[SLOStatus]) -> str:
    rows = []
    for status in statuses:
        burn = status.burn_rate
        burn_txt = "inf" if burn == float("inf") else f"{burn:.2f}x"
        used = min(max(status.budget_used / max(status.error_budget, 1e-9),
                       0.0), 1.0)
        state = (
            '<span class="ok">OK</span>'
            if status.ok
            else '<span class="bad">VIOLATED</span>'
        )
        bar_color = "#2e9e68" if status.ok else "#cf4a3d"
        rows.append(
            "<tr>"
            f"<td>{html.escape(status.name)}</td>"
            f"<td>{html.escape(status.description)}</td>"
            f"<td>{status.objective:.1%}</td>"
            f"<td>{status.compliance:.2%}</td>"
            f"<td>{status.good:g}/{status.total:g}</td>"
            f'<td><span class="bar"><span style="width:{used:.0%};'
            f'background:{bar_color}"></span></span> '
            f"{status.budget_used:.2%} of {status.error_budget:.1%}</td>"
            f"<td>{burn_txt}</td>"
            f"<td>{state}</td>"
            "</tr>"
        )
    return "".join(rows)


def _heatmap(health: FleetHealth, columns: int = 20) -> str:
    cells = []
    for i, sensor in enumerate(health.sensors):
        title = (
            f"sensor {sensor.sensor}: {sensor.status}, "
            f"score {sensor.score:.2f}, {sensor.attempts} attempts, "
            f"{sensor.acks} acks, {sensor.drops} drops, "
            f"{sensor.retries} retries, {sensor.detours} detours"
        )
        color = (
            "#eef1f4" if sensor.status == "idle"
            else _score_color(sensor.score)
        )
        cells.append(
            f'<td style="background:{color}" title="{html.escape(title)}">'
            f"{sensor.sensor}</td>"
        )
        if (i + 1) % columns == 0:
            cells.append("</tr><tr>")
    return f"<table class='heat'><tr>{''.join(cells)}</tr></table>"


def _slow_query_rows(flight: FlightRecorder, limit: int = 10) -> str:
    rows = []
    for entry in list(flight.slow_records)[-limit:][::-1]:
        stages = " ".join(
            f"{name}={seconds * 1e3:.2f}ms"
            for name, seconds in (entry.stage_s or {}).items()
        )
        rss = (
            f"{entry.peak_rss_bytes / 1e6:.1f}"
            if entry.peak_rss_bytes is not None
            else "-"
        )
        alloc = (
            f"{entry.alloc_peak_bytes / 1e6:.2f}"
            if entry.alloc_peak_bytes is not None
            else "-"
        )
        rows.append(
            "<tr>"
            f"<td>{entry.seq}</td>"
            f"<td>{html.escape(entry.digest)}</td>"
            f"<td>{html.escape(entry.planner)}</td>"
            f"<td>{entry.elapsed_s * 1e3:.3f}</td>"
            f"<td>{entry.fanout}</td>"
            f"<td>{html.escape(stages or '-')}</td>"
            f"<td>{rss}</td>"
            f"<td>{alloc}</td>"
            f"<td>{html.escape(entry.degraded or '-')}</td>"
            "</tr>"
        )
    return "".join(rows)


def _profile_rows(profile: StackTable, limit: int = 15) -> str:
    """Rows of the top-frames panel: share bars scaled to the heaviest
    row so relative weight reads at a glance."""
    rows = []
    top = profile.top_rows(limit)
    widest = max((row["share"] for row in top), default=1.0) or 1.0
    for row in top:
        width = min(row["share"] / widest, 1.0)
        rows.append(
            "<tr>"
            f"<td>{html.escape(row['span_path'])}</td>"
            f"<td>{html.escape(row['frame'])}</td>"
            f"<td>{row['samples']}</td>"
            f"<td>{row['self_s'] * 1e3:.1f}</td>"
            f"<td>{row['share']:.1%} "
            f'<span class="bar"><span style="width:{width:.0%};'
            'background:#c4742e"></span></span></td>'
            "</tr>"
        )
    return "".join(rows)


def _storage_rows(storage: Mapping[str, object]) -> str:
    """Rows of the storage panel: one per store, then its components
    as bars scaled to the largest component on the page."""
    rows = []
    widest = max(
        (
            nbytes
            for report in storage.get("stores", ())
            for nbytes in report["components"].values()
        ),
        default=1,
    )
    for report in storage.get("stores", ()):
        rows.append(
            "<tr>"
            f"<td><b>{html.escape(str(report['store']))}</b></td>"
            f"<td>{report['events']}</td>"
            f"<td><b>{report['total_bytes']}</b></td><td></td></tr>"
        )
        for name, nbytes in sorted(report["components"].items()):
            width = min(max(nbytes / max(widest, 1), 0.0), 1.0)
            rows.append(
                "<tr>"
                f"<td style='padding-left:2em'>{html.escape(name)}</td>"
                f"<td></td><td>{nbytes}</td>"
                f'<td><span class="bar"><span style="width:{width:.0%};'
                'background:#4a7dcf"></span></span></td></tr>'
            )
    return "".join(rows)


def render_dashboard(
    *,
    title: str,
    meta: Mapping[str, object],
    recorder: TimeSeriesRecorder,
    statuses: Sequence[SLOStatus],
    alerts: Sequence[Alert],
    health: FleetHealth,
    explain_text: Optional[str] = None,
    flight: Optional[FlightRecorder] = None,
    storage: Optional[Mapping[str, object]] = None,
    profile: Optional[StackTable] = None,
    panels: Sequence[tuple] = DEFAULT_PANELS,
) -> str:
    """The full dashboard page as one HTML string.

    ``storage`` is an optional framework
    :meth:`~repro.core.InNetworkFramework.storage_report` payload; when
    given, the page gains a per-component storage breakdown panel.
    ``profile`` is an optional profiler :class:`~repro.obs.StackTable`;
    when given (and non-empty), the page gains the top-frames panel.
    """
    meta_rows = "".join(
        f"<tr><td>{html.escape(str(key))}</td>"
        f"<td><b>{html.escape(str(value))}</b></td></tr>"
        for key, value in meta.items()
    )

    sparkline_cards = []
    for label, metric, kind, q in panels:
        if kind == "rate":
            series = recorder.rate_series(metric)
        elif kind == "gauge":
            series = recorder.gauge_series(metric)
        else:
            series = recorder.quantile_series(metric, q)
        if all(v is None for v in series.values):
            continue
        last = series.last
        last_txt = "-" if last is None else f"{last:.4g}"
        sparkline_cards.append(
            '<div class="panel">'
            f'<div class="title">{html.escape(label)}</div>'
            f'<div class="value">{last_txt}</div>'
            f"{_sparkline(series)}</div>"
        )

    counts = health.counts
    legend = (
        '<div class="legend">'
        f'<span style="background:{_score_color(1.0)}">healthy '
        f"{counts['healthy']}</span>"
        f'<span style="background:{_score_color(0.5)}">degraded '
        f"{counts['degraded']}</span>"
        f'<span style="background:{_score_color(0.0)}">failed '
        f"{counts['failed']}</span>"
        f'<span style="background:#eef1f4">idle {counts["idle"]}</span>'
        "</div>"
    )

    if alerts:
        alert_items = "".join(
            f"<li>{html.escape(alert.format())}</li>" for alert in alerts
        )
        alerts_html = f"<ul>{alert_items}</ul>"
    else:
        alerts_html = "<p>No SLO threshold crossings.</p>"

    explain_html = (
        f"<h2>Query EXPLAIN</h2><pre>{html.escape(explain_text)}</pre>"
        if explain_text
        else ""
    )

    flight_html = ""
    if flight is not None and flight.slow_records:
        flight_html = (
            "<h2>Recent slow queries</h2>"
            f"<p>{flight.slow_total} promoted of {flight.total} recorded "
            f"(threshold {flight.slow_threshold_s * 1e3:g}ms)</p>"
            '<table class="slo">'
            "<tr><th>#</th><th>digest</th><th>planner</th>"
            "<th>elapsed (ms)</th><th>fan-out</th><th>stages</th>"
            "<th>rss (MB)</th><th>alloc (MB)</th>"
            "<th>degraded</th></tr>"
            f"{_slow_query_rows(flight)}</table>"
        )

    profile_html = ""
    if profile is not None and len(profile):
        profile_html = (
            "<h2>Profile — top frames</h2>"
            f"<p>{profile.total} samples over {len(profile)} distinct "
            f"stacks @{profile.hz:g}Hz (sampled self time, "
            "span-attributed)</p>"
            '<table class="slo">'
            "<tr><th>span path</th><th>frame</th><th>samples</th>"
            "<th>self (ms)</th><th>share</th></tr>"
            f"{_profile_rows(profile)}</table>"
        )

    storage_html = ""
    if storage is not None and storage.get("stores"):
        storage_html = (
            "<h2>Storage</h2>"
            f"<p>{storage['total_bytes']} bytes across "
            f"{len(storage['stores'])} store tier(s)</p>"
            '<table class="slo">'
            "<tr><th>store / component</th><th>events</th>"
            "<th>bytes</th><th></th></tr>"
            f"{_storage_rows(storage)}</table>"
        )

    offenders = health.worst_offenders(10)
    offender_rows = "".join(
        "<tr>"
        f"<td>{s.sensor}</td><td>{s.score:.2f}</td><td>{s.status}</td>"
        f"<td>{s.attempts}</td><td>{s.acks}</td><td>{s.drops}</td>"
        f"<td>{s.retries}</td><td>{s.detours}</td>"
        "</tr>"
        for s in offenders
    )

    return f"""<!doctype html>
<html lang="en"><head><meta charset="utf-8">
<title>{html.escape(title)}</title>
<style>{_CSS}</style></head>
<body>
<h1>{html.escape(title)}</h1>
<table class="meta">{meta_rows}</table>

<h2>Fleet telemetry</h2>
<div class="grid">{''.join(sparkline_cards)}</div>

<h2>SLOs</h2>
<table class="slo">
<tr><th>SLO</th><th>definition</th><th>objective</th><th>compliance</th>
<th>good/total</th><th>error budget used</th><th>burn</th>
<th>status</th></tr>
{_slo_rows(statuses)}
</table>

<h2>Sensor health</h2>
{legend}
{_heatmap(health)}

<h2>Worst offenders</h2>
<table class="slo">
<tr><th>sensor</th><th>score</th><th>status</th><th>attempts</th>
<th>acks</th><th>drops</th><th>retries</th><th>detours</th></tr>
{offender_rows}
</table>

<h2>Alerts</h2>
{alerts_html}
{storage_html}
{flight_html}
{profile_html}
{explain_html}
</body></html>
"""
