"""Hierarchical tracing spans over the deploy → ingest → query pipeline.

A :class:`Tracer` records a forest of :class:`Span` objects — named,
monotonically-clocked intervals with free-form attributes — via the
``span()`` context manager.  Spans nest through a tracer-local stack,
so any code running inside ``with tracer.span("ingest"):`` that opens
its own span becomes a child of ``ingest`` without explicit plumbing.

Two exports:

- :meth:`Tracer.to_chrome_trace` — the Chrome trace-viewer JSON object
  format (load in ``chrome://tracing`` or Perfetto);
- :meth:`Tracer.format_tree` — a human-readable indented tree with
  durations and attributes.

:class:`NullTracer` is the no-op implementation used by the default
(uninstrumented) pipeline; its ``span()`` returns a shared singleton
context manager so disabled tracing costs one call and one ``with``
per site.
"""

from __future__ import annotations

import json
import os
import threading
import time
from typing import Any, Dict, Iterator, List, Optional, Tuple


class Span:
    """One named interval on the monotonic clock, with attributes.

    ``pid``/``tid`` are ``None`` for spans recorded in the current
    process; spans grafted from another process carry the recording
    worker's ids so exports can lay them out in their own lanes.
    """

    __slots__ = ("name", "start", "end", "attributes", "children", "pid", "tid")

    def __init__(self, name: str, start: float, **attributes: Any) -> None:
        self.name = name
        self.start = start
        self.end: Optional[float] = None
        self.attributes: Dict[str, Any] = dict(attributes)
        self.children: List["Span"] = []
        self.pid: Optional[int] = None
        self.tid: Optional[int] = None

    @property
    def duration(self) -> float:
        """Span length in seconds (0.0 while still open)."""
        if self.end is None:
            return 0.0
        return self.end - self.start

    def set(self, **attributes: Any) -> "Span":
        """Attach (or overwrite) attributes; returns self for chaining."""
        self.attributes.update(attributes)
        return self

    def walk(self) -> Iterator["Span"]:
        """This span and every descendant, depth first."""
        yield self
        for child in self.children:
            yield from child.walk()

    # ------------------------------------------------------------------
    # Cross-process serialization
    # ------------------------------------------------------------------
    def to_dict(self, pid: Optional[int] = None, tid: Optional[int] = None) -> Dict[str, Any]:
        """Plain-dict form that survives pickling across processes.

        ``pid``/``tid`` stamp the whole subtree with the recording
        process; children inherit them on :meth:`from_dict` unless they
        carry their own.
        """
        out: Dict[str, Any] = {
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "attributes": _jsonable(self.attributes),
        }
        own_pid = self.pid if self.pid is not None else pid
        own_tid = self.tid if self.tid is not None else tid
        if own_pid is not None:
            out["pid"] = own_pid
        if own_tid is not None:
            out["tid"] = own_tid
        if self.children:
            out["children"] = [child.to_dict(own_pid, own_tid) for child in self.children]
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Span":
        """Rebuild a span subtree produced by :meth:`to_dict`."""
        span = cls(data["name"], data["start"], **data.get("attributes", {}))
        span.end = data.get("end")
        span.pid = data.get("pid")
        span.tid = data.get("tid")
        span.children = [cls.from_dict(child) for child in data.get("children", ())]
        return span

    def __repr__(self) -> str:
        return (
            f"Span({self.name!r}, {self.duration * 1e3:.3f}ms, "
            f"children={len(self.children)})"
        )


class _SpanContext:
    """Context manager opening one span on a tracer's stack."""

    __slots__ = ("_tracer", "span")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self.span = span

    def __enter__(self) -> Span:
        return self.span

    def __exit__(self, *exc_info: Any) -> None:
        self._tracer._close(self.span)


class Tracer:
    """Records a forest of nested spans on the monotonic clock."""

    #: Real tracers record; the null tracer advertises False so hot
    #: paths can skip attribute computation entirely.
    enabled = True

    def __init__(self) -> None:
        self.roots: List[Span] = []
        #: Open-span stack per thread id: spans nest within the thread
        #: that opened them, and the profiler's sampler joins sampled
        #: thread ids against these stacks (:meth:`open_path`).
        self._stacks: Dict[int, List[Span]] = {}
        #: perf_counter origin so exported timestamps start near zero.
        self._origin = time.perf_counter()

    @property
    def origin(self) -> float:
        """The perf_counter origin of exported timestamps (shared with
        the profiler's counter-track overlay)."""
        return self._origin

    # ------------------------------------------------------------------
    def span(self, name: str, **attributes: Any) -> _SpanContext:
        """Open a child span of the innermost open span (or a root)."""
        opened = Span(name, time.perf_counter(), **attributes)
        stack = self._stacks.setdefault(threading.get_ident(), [])
        if stack:
            stack[-1].children.append(opened)
        else:
            self.roots.append(opened)
        stack.append(opened)
        return _SpanContext(self, opened)

    def _close(self, span: Span) -> None:
        stack = self._stacks.get(threading.get_ident(), [])
        if not any(open_span is span for open_span in stack):
            # Already closed (or never opened on this thread): a second
            # close must not unwind unrelated open spans.
            return
        span.end = time.perf_counter()
        # Close any forgotten descendants too (exception unwinds).
        while stack[-1] is not span:
            dangling = stack.pop()
            if dangling.end is None:
                dangling.end = span.end
        stack.pop()

    def open_path(self, thread_id: Optional[int] = None) -> Tuple[str, ...]:
        """Names of the spans currently open on ``thread_id`` (default:
        the calling thread), outermost first.

        This is the profiler's attribution join: the sampler calls it
        with each sampled thread id to label the sample with the span
        path it ran under.  Reads are lock-free — the GIL makes the
        list-copy atomic enough for sampling, and a span racing closed
        merely attributes one sample a level too deep.
        """
        if thread_id is None:
            thread_id = threading.get_ident()
        stack = self._stacks.get(thread_id)
        if not stack:
            return ()
        return tuple(span.name for span in list(stack))

    # ------------------------------------------------------------------
    def graft(
        self,
        span_dicts: List[Dict[str, Any]],
        under: Optional[Span] = None,
    ) -> List[Span]:
        """Attach serialized foreign spans (:meth:`Span.to_dict`) to this
        tracer's forest.

        ``under`` nests them beneath an existing span (typically the
        parent's ``scatter`` interval); otherwise they become roots.
        Timestamps are kept verbatim: ``perf_counter`` reads the shared
        ``CLOCK_MONOTONIC`` on Linux, so spans recorded by forked
        workers land on the same axis as the parent's.
        """
        grafted = [Span.from_dict(data) for data in span_dicts]
        if under is not None:
            under.children.extend(grafted)
        else:
            self.roots.extend(grafted)
        return grafted

    # ------------------------------------------------------------------
    def walk(self) -> Iterator[Span]:
        """Every recorded span, depth first across roots."""
        for root in self.roots:
            yield from root.walk()

    def find(self, name: str) -> List[Span]:
        """All spans with the given name."""
        return [span for span in self.walk() if span.name == name]

    # ------------------------------------------------------------------
    # Exports
    # ------------------------------------------------------------------
    def to_chrome_trace(self) -> Dict[str, Any]:
        """Chrome trace-viewer JSON object (``traceEvents`` complete
        events, microsecond timestamps).

        Spans recorded in this process land in the local pid's lane;
        grafted worker spans keep their recording pid so Perfetto draws
        one swimlane per shard worker.  ``process_name`` metadata events
        label the lanes whenever more than one pid is present.
        """
        local_pid = os.getpid()
        events: List[Dict[str, Any]] = []
        seen_pids: Dict[int, bool] = {}
        for span in self.walk():
            end = span.end if span.end is not None else span.start
            pid = span.pid if span.pid is not None else local_pid
            seen_pids.setdefault(pid, span.pid is not None)
            events.append(
                {
                    "name": span.name,
                    "ph": "X",
                    "ts": (span.start - self._origin) * 1e6,
                    "dur": (end - span.start) * 1e6,
                    "pid": pid,
                    "tid": span.tid if span.tid is not None else 1,
                    "cat": "repro",
                    "args": _jsonable(span.attributes),
                }
            )
        if len(seen_pids) > 1:
            for pid, foreign in sorted(seen_pids.items()):
                name = f"shard-worker {pid}" if foreign else f"parent {pid}"
                events.append(
                    {
                        "name": "process_name",
                        "ph": "M",
                        "pid": pid,
                        "tid": 0,
                        "args": {"name": name},
                    }
                )
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def export_chrome(self, path) -> None:
        """Write the Chrome trace JSON to ``path``."""
        with open(path, "w") as handle:
            json.dump(self.to_chrome_trace(), handle, indent=1)

    def format_tree(self) -> str:
        """Indented human-readable span tree with durations."""
        lines: List[str] = []
        for root in self.roots:
            self._format_span(root, 0, lines)
        return "\n".join(lines)

    def _format_span(self, span: Span, depth: int, lines: List[str]) -> None:
        attrs = " ".join(
            f"{key}={value}" for key, value in sorted(span.attributes.items())
        )
        suffix = f"  [{attrs}]" if attrs else ""
        lines.append(
            f"{'  ' * depth}{span.name}: {span.duration * 1e3:.3f}ms{suffix}"
        )
        for child in span.children:
            self._format_span(child, depth + 1, lines)


class _NullSpanContext:
    """Shared do-nothing span context (and span) for the null tracer."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpanContext":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        return None

    def set(self, **attributes: Any) -> "_NullSpanContext":
        return self


_NULL_SPAN = _NullSpanContext()


class NullTracer:
    """No-op tracer: ``span()`` returns a shared singleton context."""

    enabled = False

    @property
    def roots(self) -> Tuple[Span, ...]:
        """Always empty, and immutable: a class-level list here would be
        shared global state that any accidental append leaks across
        every tracer."""
        return ()

    @property
    def origin(self) -> float:
        return 0.0

    def span(self, name: str, **attributes: Any) -> _NullSpanContext:
        return _NULL_SPAN

    def open_path(self, thread_id: Optional[int] = None) -> Tuple[str, ...]:
        return ()

    def graft(
        self,
        span_dicts: List[Dict[str, Any]],
        under: Optional[Span] = None,
    ) -> List[Span]:
        return []

    def walk(self) -> Iterator[Span]:
        return iter(())

    def find(self, name: str) -> List[Span]:
        return []

    def to_chrome_trace(self) -> Dict[str, Any]:
        return {"traceEvents": [], "displayTimeUnit": "ms"}

    def export_chrome(self, path) -> None:
        with open(path, "w") as handle:
            json.dump(self.to_chrome_trace(), handle)

    def format_tree(self) -> str:
        return ""


#: Process-wide shared null tracer (safe: it holds no state).
NULL_TRACER = NullTracer()


def _jsonable(attributes: Dict[str, Any]) -> Dict[str, Any]:
    """Coerce attribute values to JSON-safe scalars."""
    safe: Dict[str, Any] = {}
    for key, value in attributes.items():
        if isinstance(value, (str, int, float, bool)) or value is None:
            safe[key] = value
        elif isinstance(value, (tuple, list, set, frozenset)):
            safe[key] = [
                v if isinstance(v, (str, int, float, bool)) else repr(v)
                for v in value
            ]
        else:
            safe[key] = repr(value)
    return safe
