"""Shared logging setup for the CLI and table output.

Routes what used to be bare ``print()`` calls through stdlib
``logging`` without changing the default output by a single byte:

- the default format is ``%(message)s`` on stdout (exactly ``print``);
- ``configure(verbosity=1)`` (CLI ``--verbose``) drops the level to
  DEBUG and prefixes records with ``level logger:``;
- ``configure(verbosity=-1)`` (CLI ``--quiet``) raises it to WARNING.

The handler resolves ``sys.stdout`` at emit time, so pytest's capsys
(and any stream redirection) sees the output.

Structured extras go through :func:`kv`, which renders keyword pairs
as a canonical ``key=value`` suffix — callers emit them at DEBUG so
the default output stays stable::

    log = get_logger("demo")
    log.debug("deploy %s", kv(sensors=32, walls=118))
"""

from __future__ import annotations

import logging
import sys
from typing import Any, Optional

ROOT = "repro"

_configured = False


class _DynamicStdoutHandler(logging.StreamHandler):
    """StreamHandler bound to the *current* ``sys.stdout`` at emit."""

    def __init__(self) -> None:
        super().__init__(stream=sys.stdout)

    @property
    def stream(self):
        return sys.stdout

    @stream.setter
    def stream(self, value) -> None:  # base __init__ assigns; ignore
        pass


def configure(verbosity: int = 0) -> logging.Logger:
    """(Re)configure the ``repro`` logger tree.

    ``verbosity``: -1 quiet (WARNING), 0 default (INFO, bare
    messages — byte-identical to the old ``print`` output), 1 verbose
    (DEBUG, prefixed records).
    """
    global _configured
    root = logging.getLogger(ROOT)
    for handler in list(root.handlers):
        root.removeHandler(handler)
    handler = _DynamicStdoutHandler()
    if verbosity >= 1:
        handler.setFormatter(
            logging.Formatter("%(levelname).1s %(name)s: %(message)s")
        )
        root.setLevel(logging.DEBUG)
    else:
        handler.setFormatter(logging.Formatter("%(message)s"))
        root.setLevel(logging.WARNING if verbosity < 0 else logging.INFO)
    root.addHandler(handler)
    root.propagate = False
    _configured = True
    return root


def get_logger(name: Optional[str] = None) -> logging.Logger:
    """A logger under the ``repro`` tree, auto-configured on first use."""
    if not _configured:
        configure()
    if not name or name == ROOT:
        return logging.getLogger(ROOT)
    return logging.getLogger(f"{ROOT}.{name}")


def kv(**fields: Any) -> str:
    """Render keyword fields as a stable ``key=value`` string."""
    return " ".join(f"{key}={_scalar(value)}" for key, value in fields.items())


def _scalar(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.6g}"
    if isinstance(value, str) and (" " in value or not value):
        return repr(value)
    return str(value)
