"""Continuous span-attributed sampling profiler.

The observability stack so far can say *that* a span was slow
(:mod:`repro.obs.trace`), *how often* something happened
(:mod:`repro.obs.metrics`) and *which* queries were slow
(:mod:`repro.obs.flight`) — but not *where the cycles went*.  This
module closes that gap with a zero-dependency, always-on-capable
sampling profiler:

- a background :class:`_Sampler` thread walks ``sys._current_frames()``
  at a configurable rate (default :data:`DEFAULT_PROFILE_HZ`), so the
  profiled code pays nothing per call — cost is ``hz × sample_cost``
  regardless of how hot the code is;
- every sample is *attributed to the active tracer span stack*: the
  sampler joins the sampled thread id against the
  :class:`~repro.obs.Tracer`'s per-thread open spans
  (:meth:`~repro.obs.Tracer.open_path`), so a stack lands under
  ``query.execute > query.integrate`` rather than as a bare frame list;
- samples aggregate into a compact :class:`StackTable` keyed on
  ``(span path, collapsed frame stack)`` — memory stays bounded by the
  number of *distinct* stacks, not the number of samples;
- with ``memory=True`` each tick also reads
  ``tracemalloc.get_traced_memory()`` and maintains per-span-path
  *sampled peak watermarks* (the highest traced allocation observed
  while that span path was open on the sampled thread).

Exports: collapsed-stack text (``flamegraph.pl`` / speedscope paste
format, round-trippable via :meth:`StackTable.from_collapsed`),
speedscope JSON (:meth:`StackTable.to_speedscope`), and Chrome-trace
*counter tracks* (:meth:`Profiler.chrome_counter_events` /
:func:`overlay_counters`) that overlay the sampler's activity and
traced-allocation series on the Perfetto swimlanes exported by
:meth:`~repro.obs.Tracer.to_chrome_trace`.

Cross-process: sharded workers run their own worker-local profiler;
each ``_worker_run`` call ships the drained stack table home next to
the metric deltas and the parent merges it under the grafted
``worker.run`` span paths (:meth:`StackTable.merge`), so one
flamegraph covers the parent and every shard worker.

Lifecycle: the sampler thread is **finalizer-owned**, exactly like the
sharded engine's shared-memory segments — ``weakref.finalize`` stops
and joins it when the :class:`Profiler` is stopped, garbage-collected
or the interpreter exits, so an abandoned profiler never leaves a
dangling thread behind ``framework.close()``.
"""

from __future__ import annotations

import json
import os
import sys
import threading
import time
import tracemalloc
import weakref
from typing import Any, Dict, Iterable, List, Optional, Tuple

#: Default sampling rate.  Prime, so the sampler never locks step with
#: periodic work (metric ticks, compaction cadences) and under-samples
#: one phase systematically.
DEFAULT_PROFILE_HZ = 97.0

#: Frames deeper than this are truncated (runaway recursion guard).
MAX_STACK_DEPTH = 128

#: Collapsed-stack prefix marking a tracer-span component, so span
#: path and code frames survive a text round trip unambiguously.
SPAN_PREFIX = "span:"

#: Counter-track names of the Chrome-trace overlay.
COUNTER_SAMPLES = "profile.sampled_threads"
COUNTER_ALLOC = "profile.alloc_bytes"

_PROFILE_FILE = os.path.abspath(__file__)


def _format_frame(frame) -> str:
    code = frame.f_code
    filename = os.path.basename(code.co_filename)
    return f"{code.co_name} ({filename}:{frame.f_lineno})"


def memory_snapshot() -> Dict[str, Optional[int]]:
    """Cheap process-memory snapshot for slow-query flight records.

    ``peak_rss_bytes`` is the high-water resident set of the process
    (``ru_maxrss``); ``alloc_peak_bytes`` is tracemalloc's traced
    allocation peak — ``None`` unless tracing is on (a profiler with
    ``memory=True``, or the caller's own ``tracemalloc.start()``).
    Both reads are O(1): this is safe on the strict slow-query
    promotion path.
    """
    peak_rss: Optional[int] = None
    try:
        import resource

        rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        # Linux reports kilobytes, macOS bytes.
        peak_rss = int(rss) * (1 if sys.platform == "darwin" else 1024)
    except Exception:  # pragma: no cover - exotic platforms
        peak_rss = None
    alloc_peak: Optional[int] = None
    if tracemalloc.is_tracing():
        alloc_peak = int(tracemalloc.get_traced_memory()[1])
    return {"peak_rss_bytes": peak_rss, "alloc_peak_bytes": alloc_peak}


class StackTable:
    """Aggregated profile: sample counts keyed on (span path, stack).

    The key is ``(span_path, frames)`` — both tuples of strings, the
    span path outermost-first (tracer span names) and the frame stack
    root-first (``func (file:line)``).  Counts are additive, which is
    what makes the cross-process story exact: the merge of per-worker
    tables equals the table a single profiler observing all of them
    would have built (asserted by the merge-identity test).
    """

    __slots__ = ("hz", "counts")

    def __init__(self, hz: float = DEFAULT_PROFILE_HZ) -> None:
        if hz <= 0:
            raise ValueError(f"profile hz must be > 0, got {hz}")
        self.hz = float(hz)
        self.counts: Dict[Tuple[Tuple[str, ...], Tuple[str, ...]], int] = {}

    # ------------------------------------------------------------------
    def add(
        self,
        span_path: Tuple[str, ...],
        frames: Tuple[str, ...],
        count: int = 1,
    ) -> None:
        key = (tuple(span_path), tuple(frames))
        self.counts[key] = self.counts.get(key, 0) + int(count)

    @property
    def total(self) -> int:
        """Samples aggregated (sum over all rows)."""
        return sum(self.counts.values())

    def __len__(self) -> int:
        return len(self.counts)

    # ------------------------------------------------------------------
    def merge(
        self,
        other: "StackTable | Dict[str, Any]",
        prefix: Tuple[str, ...] = (),
    ) -> None:
        """Fold another table (or its :meth:`as_dict` form) into this
        one, optionally nesting its span paths under ``prefix``.

        The sharded parent merges each worker's shipped table with
        ``prefix=("query.execute_sharded", "sharded.scatter")`` so
        worker samples land exactly where the grafted ``worker.run``
        spans sit in the parent's trace.
        """
        prefix = tuple(prefix)
        if isinstance(other, StackTable):
            rows: Iterable = (
                (path, frames, count)
                for (path, frames), count in other.counts.items()
            )
        else:
            rows = (
                (tuple(path), tuple(frames), int(count))
                for path, frames, count in other.get("rows", ())
            )
        for path, frames, count in rows:
            self.add(prefix + tuple(path), frames, count)

    def drain(self) -> Dict[str, Any]:
        """The :meth:`as_dict` payload, clearing the table (per-call
        delta shipping from sharded workers)."""
        payload = self.as_dict()
        self.counts.clear()
        return payload

    # ------------------------------------------------------------------
    # Aggregations
    # ------------------------------------------------------------------
    def self_seconds_by_span(self) -> Dict[Tuple[str, ...], float]:
        """Self time (seconds) attributed to each span path."""
        out: Dict[Tuple[str, ...], float] = {}
        period = 1.0 / self.hz
        for (path, _frames), count in self.counts.items():
            out[path] = out.get(path, 0.0) + count * period
        return out

    def leaf_self_seconds(self) -> Dict[str, float]:
        """Self time keyed on the innermost open span name (samples
        with no open span land under ``"(no span)"``)."""
        out: Dict[str, float] = {}
        for path, seconds in self.self_seconds_by_span().items():
            leaf = path[-1] if path else "(no span)"
            out[leaf] = out.get(leaf, 0.0) + seconds
        return out

    def top_rows(self, limit: int = 15) -> List[Dict[str, Any]]:
        """Heaviest rows for dashboards and CLI summaries."""
        period = 1.0 / self.hz
        ranked = sorted(
            self.counts.items(), key=lambda item: item[1], reverse=True
        )
        total = self.total or 1
        rows = []
        for (path, frames), count in ranked[:limit]:
            rows.append(
                {
                    "span_path": " > ".join(path) if path else "(no span)",
                    "frame": frames[-1] if frames else "(no frame)",
                    "samples": count,
                    "self_s": count * period,
                    "share": count / total,
                }
            )
        return rows

    # ------------------------------------------------------------------
    # Wire format
    # ------------------------------------------------------------------
    def as_dict(self) -> Dict[str, Any]:
        return {
            "hz": self.hz,
            "total": self.total,
            "rows": [
                [list(path), list(frames), count]
                for (path, frames), count in sorted(self.counts.items())
            ],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "StackTable":
        table = cls(hz=data.get("hz", DEFAULT_PROFILE_HZ))
        table.merge(data)
        return table

    # ------------------------------------------------------------------
    # Collapsed-stack text (flamegraph.pl / speedscope paste format)
    # ------------------------------------------------------------------
    def to_collapsed(self) -> str:
        """One ``a;b;c count`` line per distinct stack; span-path
        components carry the :data:`SPAN_PREFIX` marker so
        :meth:`from_collapsed` reconstructs the attribution exactly."""
        lines = []
        for (path, frames), count in sorted(self.counts.items()):
            parts = [SPAN_PREFIX + name for name in path]
            parts.extend(frames)
            lines.append(f"{';'.join(parts)} {count}")
        return "\n".join(lines) + ("\n" if lines else "")

    @classmethod
    def from_collapsed(
        cls, text: str, hz: float = DEFAULT_PROFILE_HZ
    ) -> "StackTable":
        table = cls(hz=hz)
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            stack_txt, _, count_txt = line.rpartition(" ")
            parts = stack_txt.split(";") if stack_txt else []
            path: List[str] = []
            while parts and parts[0].startswith(SPAN_PREFIX):
                path.append(parts.pop(0)[len(SPAN_PREFIX):])
            table.add(tuple(path), tuple(parts), int(count_txt))
        return table

    # ------------------------------------------------------------------
    # speedscope JSON
    # ------------------------------------------------------------------
    def to_speedscope(self, name: str = "repro profile") -> Dict[str, Any]:
        """The speedscope file format (one ``sampled`` profile whose
        weights are seconds).  Span-path components become synthetic
        outer frames (``span:…``), so the flamegraph nests code under
        the tracer spans it ran in — worker stacks under their grafted
        ``worker.run`` paths included.
        """
        frame_index: Dict[str, int] = {}
        frames: List[Dict[str, str]] = []

        def intern(frame_name: str) -> int:
            index = frame_index.get(frame_name)
            if index is None:
                index = len(frames)
                frame_index[frame_name] = index
                frames.append({"name": frame_name})
            return index

        samples: List[List[int]] = []
        weights: List[float] = []
        period = 1.0 / self.hz
        for (path, stack), count in sorted(self.counts.items()):
            sample = [intern(SPAN_PREFIX + component) for component in path]
            sample.extend(intern(frame) for frame in stack)
            samples.append(sample)
            weights.append(count * period)
        total = float(sum(weights))
        return {
            "$schema": "https://www.speedscope.app/file-format-schema.json",
            "name": name,
            "exporter": "repro.obs.profile",
            "activeProfileIndex": 0,
            "shared": {"frames": frames},
            "profiles": [
                {
                    "type": "sampled",
                    "name": name,
                    "unit": "seconds",
                    "startValue": 0.0,
                    "endValue": total,
                    "samples": samples,
                    "weights": weights,
                }
            ],
        }


class _NullSpanSource:
    """Span source of a tracer-less profiler: everything unattributed."""

    __slots__ = ()

    def open_path(self, thread_id: int) -> Tuple[str, ...]:
        return ()


_NULL_SPAN_SOURCE = _NullSpanSource()


def _release_sampler(
    stop: threading.Event,
    thread: Optional[threading.Thread],
    stop_tracemalloc: bool,
) -> None:
    """Finalizer target: stop and join the sampler thread.

    Module-level on purpose — a bound method would keep the profiler
    alive through its own finalizer and defeat garbage collection.
    """
    stop.set()
    if thread is not None and thread.is_alive():
        thread.join(timeout=5.0)
    if stop_tracemalloc and tracemalloc.is_tracing():
        tracemalloc.stop()


def _sampler_loop(
    stop: threading.Event,
    profiler_ref: "weakref.ReferenceType[Profiler]",
    period: float,
) -> None:
    """Sampler thread body.

    Module-level with only a weak reference to the profiler: a
    ``target=self._run`` bound method would pin the profiler alive
    through the thread object, so an abandoned profiler could never be
    collected and its finalizer would never reap this thread.  The
    strong reference is taken only around the sample and dropped before
    the next wait.
    """
    while not stop.wait(period):
        profiler = profiler_ref()
        if profiler is None:
            return
        try:
            profiler.sample_once()
        except Exception:  # pragma: no cover - never kill the app
            pass
        del profiler


class Profiler:
    """Background sampling profiler with tracer-span attribution.

    >>> profiler = Profiler(tracer=obs.tracer, hz=97).start()
    >>> ...  # run the workload
    >>> profiler.stop()
    >>> open("out.speedscope.json", "w").write(
    ...     json.dumps(profiler.table.to_speedscope()))

    ``memory=True`` additionally enables :mod:`tracemalloc` (if not
    already tracing) and keeps per-span-path sampled peak watermarks in
    :attr:`mem_peak_bytes`.  The sampler thread is daemonic *and*
    finalizer-owned: :meth:`stop`, garbage collection and interpreter
    exit all reap it deterministically.
    """

    def __init__(
        self,
        tracer: Optional[object] = None,
        hz: float = DEFAULT_PROFILE_HZ,
        memory: bool = False,
        max_timeline: int = 4096,
    ) -> None:
        if hz <= 0 or hz > 10_000:
            raise ValueError(f"profile hz must be in (0, 10000], got {hz}")
        self.hz = float(hz)
        self.memory = bool(memory)
        self.table = StackTable(hz=self.hz)
        #: Sampled traced-allocation peak per span path (bytes).
        self.mem_peak_bytes: Dict[Tuple[str, ...], int] = {}
        #: Bounded (perf_counter, threads_sampled, alloc_bytes|None)
        #: series feeding the Chrome-trace counter tracks.
        self.timeline: List[Tuple[float, int, Optional[int]]] = []
        self._max_timeline = int(max_timeline)
        self._spans = (
            tracer
            if tracer is not None and hasattr(tracer, "open_path")
            else _NULL_SPAN_SOURCE
        )
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._finalizer: Optional[weakref.finalize] = None
        self._started_tracemalloc = False

    # ------------------------------------------------------------------
    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> "Profiler":
        """Start the sampler thread (idempotent while running)."""
        if self.running:
            return self
        if self.memory and not tracemalloc.is_tracing():
            tracemalloc.start()
            self._started_tracemalloc = True
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=_sampler_loop,
            args=(self._stop, weakref.ref(self), 1.0 / self.hz),
            name="repro-profiler",
            daemon=True,
        )
        self._thread.start()
        # Finalizer-owned shutdown, like the sharded engine's shm
        # segments: stop+join on stop()/GC/atexit, never a dangling
        # thread after framework.close().
        self._finalizer = weakref.finalize(
            self,
            _release_sampler,
            self._stop,
            self._thread,
            self._started_tracemalloc,
        )
        return self

    def stop(self) -> "Profiler":
        """Stop and join the sampler thread (idempotent)."""
        if self._finalizer is not None:
            self._finalizer()
        elif self._started_tracemalloc and tracemalloc.is_tracing():
            tracemalloc.stop()
        self._thread = None
        return self

    def __enter__(self) -> "Profiler":
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        self.stop()

    # ------------------------------------------------------------------
    def sample_once(self) -> int:
        """Take one sample of every application thread; returns the
        number of threads sampled.

        Called by the background thread on each tick, and directly by
        code that wants a guaranteed sample (the sharded worker anchors
        one per sub-batch so short batches still appear under their
        ``worker.run`` span even between ticks).
        """
        sampler = self._thread.ident if self._thread is not None else None
        spans = self._spans
        table = self.table
        sampled = 0
        for tid, frame in sys._current_frames().items():
            if tid == sampler:
                # Never profile the profiler: the sampler thread's own
                # wait loop is not application time.
                continue
            stack: List[str] = []
            depth = 0
            while frame is not None and depth < MAX_STACK_DEPTH:
                if frame.f_code.co_filename != _PROFILE_FILE:
                    stack.append(_format_frame(frame))
                frame = frame.f_back
                depth += 1
            stack.reverse()
            try:
                span_path = tuple(spans.open_path(tid))
            except Exception:  # racing span close: attribute bare
                span_path = ()
            table.add(span_path, tuple(stack))
            sampled += 1
            if self.memory and tracemalloc.is_tracing():
                current = tracemalloc.get_traced_memory()[0]
                previous = self.mem_peak_bytes.get(span_path, 0)
                if current > previous:
                    self.mem_peak_bytes[span_path] = current
        alloc = (
            int(tracemalloc.get_traced_memory()[0])
            if self.memory and tracemalloc.is_tracing()
            else None
        )
        if len(self.timeline) < self._max_timeline:
            self.timeline.append((time.perf_counter(), sampled, alloc))
        return sampled

    # ------------------------------------------------------------------
    # Exports
    # ------------------------------------------------------------------
    def chrome_counter_events(
        self, origin: float = 0.0, pid: Optional[int] = None
    ) -> List[Dict[str, Any]]:
        """Chrome-trace counter events (``ph: "C"``) of the sampler's
        activity and traced-allocation series, on the same time axis as
        :meth:`~repro.obs.Tracer.to_chrome_trace` (pass the tracer's
        :attr:`~repro.obs.Tracer.origin`)."""
        pid = pid if pid is not None else os.getpid()
        events: List[Dict[str, Any]] = []
        for t, sampled, alloc in self.timeline:
            ts = (t - origin) * 1e6
            events.append(
                {
                    "name": COUNTER_SAMPLES,
                    "ph": "C",
                    "ts": ts,
                    "pid": pid,
                    "tid": 0,
                    "cat": "repro.profile",
                    "args": {"threads": sampled},
                }
            )
            if alloc is not None:
                events.append(
                    {
                        "name": COUNTER_ALLOC,
                        "ph": "C",
                        "ts": ts,
                        "pid": pid,
                        "tid": 0,
                        "cat": "repro.profile",
                        "args": {"bytes": alloc},
                    }
                )
        return events

    def write(self, directory: str, name: str = "profile") -> Dict[str, str]:
        """Write the collapsed-stack text and speedscope JSON under
        ``directory`` (created if missing); returns the paths."""
        os.makedirs(directory, exist_ok=True)
        collapsed = os.path.join(directory, f"{name}.collapsed")
        speedscope = os.path.join(directory, f"{name}.speedscope.json")
        with open(collapsed, "w") as handle:
            handle.write(self.table.to_collapsed())
        with open(speedscope, "w") as handle:
            json.dump(self.table.to_speedscope(name=name), handle, indent=1)
        paths = {"collapsed": collapsed, "speedscope": speedscope}
        if self.mem_peak_bytes:
            watermarks = os.path.join(directory, f"{name}.memory.json")
            with open(watermarks, "w") as handle:
                json.dump(
                    {
                        " > ".join(path) or "(no span)": peak
                        for path, peak in sorted(self.mem_peak_bytes.items())
                    },
                    handle,
                    indent=1,
                )
            paths["memory"] = watermarks
        return paths


def overlay_counters(
    trace: Dict[str, Any], profiler: Profiler, origin: float = 0.0
) -> Dict[str, Any]:
    """Merge the profiler's counter tracks into a Chrome-trace object
    (as returned by :meth:`~repro.obs.Tracer.to_chrome_trace`), in
    place.  Counter events carry this process's pid, so they draw in
    the parent's lane alongside the per-worker swimlanes."""
    trace.setdefault("traceEvents", []).extend(
        profiler.chrome_counter_events(origin)
    )
    return trace
