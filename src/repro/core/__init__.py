"""Public framework API (system S13)."""

from .config import FrameworkConfig
from .framework import InNetworkFramework

__all__ = ["FrameworkConfig", "InNetworkFramework"]
