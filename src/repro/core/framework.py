"""The public framework facade: deploy -> ingest -> query.

:class:`InNetworkFramework` wires the substrates into the paper's
pipeline with a small surface:

>>> framework = InNetworkFramework.from_road_graph(road)
>>> framework.deploy(FrameworkConfig(selector="quadtree", budget=50))
>>> framework.ingest_trips(trips)
>>> result = framework.query(box, t1, t2)          # lower-bound static
>>> result.value, result.nodes_accessed

The framework keeps both the deployed (sampled) configuration and the
full reference network, so callers can ask for the exact answer too
(``query_exact``) and measure the approximation themselves.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Set

import numpy as np

from ..errors import ConfigurationError, QueryError
from ..forms import EdgeCountStore, TrackingForm
from ..geometry import BBox
from ..mobility import MobilityDomain, voronoi_strata
from ..network import FaultConfig, FaultInjector, RetryPolicy
from ..models import (
    LinearModel,
    ModeledCountStore,
    PeriodicModel,
    PiecewiseLinearModel,
    PolynomialModel,
    StepHistogramModel,
)
from ..obs import (
    FlightRecorder,
    Instrumentation,
    NULL_INSTRUMENTATION,
    Profiler,
    Tracer,
    get_registry,
)
from ..planar import NodeId, PlanarGraph
from ..query import (
    LOWER,
    STATIC,
    QueryEngine,
    QueryResult,
    RangeQuery,
    ShardedQueryEngine,
)
from ..query.continuous import ContinuousCountMonitor
from ..sampling import SensorNetwork, full_network, sampled_network, wall_network
from ..stream import StreamingEventStore
from ..selection import (
    KDTreeSelector,
    QuadTreeSelector,
    SensorCandidates,
    StratifiedSelector,
    SubmodularSelector,
    SystematicSelector,
    UniformSelector,
)
from ..trajectories import CrossingEvent, EventColumns, Trip, all_events
from .config import FrameworkConfig

_MODEL_FACTORIES = {
    "linear": LinearModel,
    "polynomial": PolynomialModel,
    "piecewise": PiecewiseLinearModel,
    "histogram": StepHistogramModel,
    "periodic": PeriodicModel,
}


class InNetworkFramework:
    """End-to-end in-network spatiotemporal range-count framework."""

    def __init__(
        self,
        domain: MobilityDomain,
        instrumentation: Optional[Instrumentation] = None,
        flight: Optional[FlightRecorder] = None,
    ) -> None:
        self.obs = (
            instrumentation
            if instrumentation is not None
            else NULL_INSTRUMENTATION
        )
        #: Always-on query flight recorder, shared by every engine the
        #: framework hands out.  A caller-provided recorder is kept
        #: verbatim; the default one is re-sized from the deployed
        #: config's ``flight_capacity``/``slow_query_s``.
        self._flight_injected = flight is not None
        self.flight: FlightRecorder = (
            flight if flight is not None else FlightRecorder()
        )
        self.domain = domain
        self.config: Optional[FrameworkConfig] = None
        self.network: Optional[SensorNetwork] = None
        self._events: List[CrossingEvent] = []
        self._form: Optional[TrackingForm] = None
        self._full_form: Optional[TrackingForm] = None
        self._store: Optional[EdgeCountStore] = None
        self._columns: Optional[EventColumns] = None
        self._sharded: Optional[ShardedQueryEngine] = None
        self._streaming: Optional[StreamingEventStore] = None
        self._sketch = None
        self._closed = False
        #: Dirty flags of the streaming path: appends leave the full
        #: reference form and the columnar snapshot stale; both are
        #: rebuilt lazily on first use instead of per arrival window.
        self._full_dirty = False
        self._columns_dirty = False
        with self.obs.tracer.span("deploy.full_reference_network"):
            self._full = full_network(domain)
        self._query_history: List[Set[NodeId]] = []

    @classmethod
    def from_road_graph(
        cls,
        road_graph: PlanarGraph,
        instrumentation: Optional[Instrumentation] = None,
        flight: Optional[FlightRecorder] = None,
    ) -> "InNetworkFramework":
        """Build the framework from a planar road network."""
        obs = (
            instrumentation
            if instrumentation is not None
            else NULL_INSTRUMENTATION
        )
        with obs.tracer.span(
            "planarize",
            nodes=road_graph.node_count,
            edges=road_graph.edge_count,
        ):
            domain = MobilityDomain(road_graph)
        return cls(domain, instrumentation=instrumentation, flight=flight)

    # ------------------------------------------------------------------
    # Deployment
    # ------------------------------------------------------------------
    def record_query_region(self, box: BBox) -> None:
        """Register a historical query region for submodular deployment."""
        junctions = self.domain.junctions_in_bbox(box)
        if junctions:
            self._query_history.append(junctions)

    def deploy(self, config: FrameworkConfig = FrameworkConfig()) -> SensorNetwork:
        """Select sensors and materialise the sampled sensing network.

        Re-deploying re-ingests previously ingested events into the new
        configuration automatically.
        """
        self._guard_open()
        self._ensure_profiler(config)
        tracer = self.obs.tracer
        with tracer.span(
            "deploy", selector=config.selector, budget=config.budget
        ) as span:
            rng = np.random.default_rng(config.seed)
            candidates = SensorCandidates.from_domain(self.domain)
            budget = min(config.budget, len(candidates))

            if config.selector == "submodular":
                if not self._query_history:
                    raise ConfigurationError(
                        "submodular deployment needs record_query_region() "
                        "calls (historical query regions) first"
                    )
                with tracer.span("deploy.select_sensors"):
                    plan = SubmodularSelector(
                        self.domain, self._query_history
                    ).plan(budget)
                with tracer.span("deploy.materialise_network"):
                    network = wall_network(
                        self.domain, plan.walls, plan.sensors,
                        name="submodular",
                    )
            else:
                selector = {
                    "uniform": UniformSelector,
                    "systematic": SystematicSelector,
                    "kdtree": KDTreeSelector,
                    "quadtree": QuadTreeSelector,
                }.get(config.selector)
                with tracer.span("deploy.select_sensors"):
                    if selector is not None:
                        chosen = selector().select(candidates, budget, rng)
                    else:  # stratified
                        strata = voronoi_strata(
                            self.domain.bounds,
                            rng=np.random.default_rng(config.seed),
                        )
                        chosen = StratifiedSelector(strata).select(
                            candidates, budget, rng
                        )
                with tracer.span("deploy.materialise_network"):
                    network = sampled_network(
                        self.domain,
                        chosen,
                        connectivity=config.connectivity,
                        k=config.knn_k,
                        name=config.selector,
                    )

            registry = get_registry()
            registry.counter(
                "repro_deploys_total",
                help="Sensing-network deployments, by selector",
                selector=config.selector,
            ).inc()
            registry.gauge(
                "repro_deployed_sensors",
                help="Communication sensors in the deployed network",
            ).set(len(network.sensors))
            registry.gauge(
                "repro_deployed_walls",
                help="Monitored walls in the deployed network",
            ).set(len(network.walls))
            registry.gauge(
                "repro_deployed_regions",
                help="Sensing regions of the deployed network",
            ).set(network.region_count)
            if tracer.enabled:
                span.set(
                    sensors=len(network.sensors),
                    walls=len(network.walls),
                    regions=network.region_count,
                )

            self.config = config
            if not self._flight_injected and (
                self.flight.capacity != config.flight_capacity
                or self.flight.slow_threshold_s != config.slow_query_s
            ):
                self.flight = FlightRecorder(
                    capacity=config.flight_capacity,
                    slow_threshold_s=config.slow_query_s,
                )
            self.network = network
            self._form = None
            self._store = None
            self._streaming = None
            self._sketch = None
            self._drop_sharded()
            if self._events or config.streaming:
                self._rebuild_stores()
        return network

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------
    def ingest_trips(self, trips: Sequence[Trip]) -> int:
        """Ingest trips as anonymous crossing events."""
        with self.obs.tracer.span("ingest.extract_events", trips=len(trips)):
            events = all_events(self.domain, trips)
        return self.ingest_events(events)

    def ingest_events(self, events: Iterable[CrossingEvent]) -> int:
        """Ingest an anonymous crossing-event stream.

        With a batch deployment every ingest rebuilds the stores from
        the cumulative event list.  With ``streaming=True`` the events
        are appended to the live
        :class:`~repro.stream.StreamingEventStore` — the query indexes
        update incrementally (tail fold, periodic compaction), the
        cached sharded engine is invalidated, and the full reference
        form is merely marked dirty (rebuilt lazily by
        :meth:`query_exact`).
        """
        self._guard_open()
        events = list(events)
        with self.obs.tracer.span("ingest", events=len(events)):
            self._events.extend(events)
            if self._streaming is not None:
                with self.obs.tracer.span(
                    "ingest.stream_append", events=len(events)
                ):
                    self._streaming.append_events(events)
                self._drop_sharded()
                self._full_dirty = True
                self._columns_dirty = True
            else:
                self._rebuild_stores()
        get_registry().counter(
            "repro_events_ingested_total",
            help="Crossing events ingested by the framework",
        ).inc(len(events))
        return len(events)

    def _ensure_profiler(self, config: FrameworkConfig) -> None:
        """Start (or stop) the continuous profiler to match the config.

        ``profile_hz`` > 0 wants a sampler: reuse a running one at the
        same rate, otherwise start a fresh :class:`~repro.obs.Profiler`
        attributed to this framework's tracer.  The shared
        :data:`~repro.obs.NULL_INSTRUMENTATION` bundle is never mutated
        — profiling an uninstrumented framework upgrades it to a fresh
        bundle with a live tracer, so samples have spans to join.
        """
        profiler = self.obs.profiler
        if config.profile_hz <= 0:
            if profiler is not None:
                profiler.stop()
            return
        if (
            profiler is not None
            and profiler.running
            and profiler.hz == config.profile_hz
            and profiler.memory == config.profile_memory
        ):
            return
        if profiler is not None:
            profiler.stop()
        if self.obs is NULL_INSTRUMENTATION:
            self.obs = Instrumentation(
                tracer=Tracer(), metrics=get_registry(), provenance=False
            )
        self.obs.profiler = Profiler(
            tracer=self.obs.tracer,
            hz=config.profile_hz,
            memory=config.profile_memory,
        ).start()

    @property
    def profiler(self) -> Optional[Profiler]:
        """The continuous sampling profiler (``None`` unless deployed
        with ``profile_hz`` > 0 or handed an instrumented bundle that
        carries one)."""
        return self.obs.profiler

    def _drop_sharded(self) -> None:
        """Invalidate the cached sharded engine (its shards no longer
        reflect the deployed network or ingested events)."""
        if self._sharded is not None:
            self._sharded.close()
            self._sharded = None

    def _guard_open(self) -> None:
        if self._closed:
            raise QueryError(
                "framework is closed; create a new InNetworkFramework"
            )

    def _columnarize(self) -> EventColumns:
        """Columnarise the cumulative event list, applying the
        succinct tier's ingest-boundary quantization when deployed
        with ``compress=True``.

        Quantizing *here* — once, before any store is built — is what
        makes compressed and uncompressed paths byte-identical: the
        sampled form, the full reference form, the sharded partitions
        and ``query_exact`` all see the same (quantized) multiset.
        """
        with self.obs.tracer.span(
            "ingest.columnarize", events=len(self._events)
        ):
            columns = EventColumns.from_events(self.domain, self._events)
        if self.config is not None and self.config.compress:
            columns = columns.quantized(self.config.tick_bits)
        return columns

    def _rebuild_stores(self) -> None:
        tracer = self.obs.tracer
        self._drop_sharded()
        columns = self._columnarize()
        self._columns = columns
        self._columns_dirty = False
        with tracer.span("ingest.build_form", network="full"):
            self._full_form = self._full.build_form(columns)
        self._full_dirty = False
        if self.network is None:
            return
        config = self.config
        self._sketch = None
        if config is not None and config.sketch_bins:
            with tracer.span(
                "ingest.build_sketch", bins=config.sketch_bins
            ):
                from ..forms import EdgeCountSketch

                observed = columns.filter_edges(
                    self.network._wall_lookup()
                )
                self._sketch = EdgeCountSketch.from_columns(
                    observed, bins=config.sketch_bins
                )
        if config is not None and config.streaming:
            with tracer.span(
                "ingest.build_stream", events=len(self._events)
            ):
                store = StreamingEventStore(
                    self.network,
                    compact_every=config.compact_every,
                    compress=config.compress,
                    tick_bits=config.tick_bits,
                )
                if self._events:
                    store.append_events(self._events)
            self._streaming = store
            self._form = None
            self._store = store
            return
        self._streaming = None
        with tracer.span("ingest.build_form", network=self.network.name):
            self._form = self.network.build_form(
                columns,
                compress=config.compress if config is not None else False,
                tick_bits=config.tick_bits if config is not None else 0,
            )
        if config is not None and config.store != "exact":
            factory = _MODEL_FACTORIES[config.store]
            with tracer.span("ingest.fit_models", store=config.store):
                self._store = ModeledCountStore.fit(self._form, factory)
        else:
            self._store = self._form

    def _refresh_columns(self) -> None:
        """Re-columnarise the cumulative event list after streaming
        appends left the snapshot stale (sharded rebuilds and
        ``query_exact`` need it; streamed queries do not).  Applies
        the same quantization as :meth:`_rebuild_stores`, or the
        compressed sharded/exact paths would diverge from streamed
        answers."""
        self._columns = self._columnarize()
        self._columns_dirty = False

    # ------------------------------------------------------------------
    # Querying
    # ------------------------------------------------------------------
    def fault_injector(
        self, config: FaultConfig = FaultConfig()
    ) -> FaultInjector:
        """Seeded fault schedule over the deployed network's sensors."""
        if self.network is None:
            raise QueryError("deploy() first")
        return FaultInjector.for_network(self.network, config)

    def engine(
        self,
        faults: Optional[FaultInjector] = None,
        dispatch_strategy: str = "perimeter_walk",
        retry_policy: Optional[RetryPolicy] = None,
        sharded: Optional[bool] = None,
    ):
        """A query engine over the deployed network and current store.

        ``query()`` builds one per call; monitoring loops and EXPLAIN
        want a persistent engine so the dispatcher (and its fault
        telemetry) survives across queries.

        With a sharded config (``shards=N`` or ``planner="sharded"``)
        and no fault injector this returns the framework's cached
        :class:`~repro.query.ShardedQueryEngine` — one partition and
        worker pool shared across calls, invalidated on re-deploy or
        re-ingest, released by :meth:`close`.  Fault injection always
        runs the single-process engine: degraded dispatch consumes the
        injector's per-query attempt stream, which does not decompose
        over shards.  Pass ``sharded=False`` to force the
        single-process engine.
        """
        self._guard_open()
        if self.network is None or self._store is None:
            raise QueryError("deploy() and ingest first")
        config = self.config
        if sharded is None:
            sharded = config is not None and config.sharded
        if sharded and faults is None:
            if self._sharded is None or self._sharded.closed:
                if self._columns_dirty:
                    self._refresh_columns()
                self._sharded = ShardedQueryEngine(
                    self.network,
                    self._columns,
                    shards=config.effective_shards,
                    instrumentation=self.obs,
                    store=self._store,
                    seed=config.seed,
                    flight=self.flight,
                    compress=config.compress,
                    tick_bits=config.tick_bits,
                )
            return self._sharded
        planner = config.planner if config is not None else "auto"
        return QueryEngine(
            self.network,
            self._store,
            planner="auto" if planner == "sharded" else planner,
            instrumentation=self.obs,
            faults=faults,
            dispatch_strategy=dispatch_strategy,
            retry_policy=retry_policy,
            flight=self.flight,
            sketch=self._sketch,
        )

    def close(self) -> None:
        """Shut the framework down: release the cached sharded
        engine's worker processes and shared-memory segments, close
        the streaming store, and mark the framework terminal.  Further
        ``deploy``/``ingest_events``/``engine``/``query`` calls raise a
        structured :class:`~repro.errors.QueryError` instead of
        failing deep inside a released resource.  Idempotent."""
        self._drop_sharded()
        if self._streaming is not None:
            self._streaming.close()
        if self.obs.profiler is not None:
            # Finalizer-owned, like the shm segments: stop() joins the
            # sampler thread so close() never leaves it dangling.
            self.obs.profiler.stop()
        self._closed = True

    def flight_log(self) -> FlightRecorder:
        """The always-on query flight recorder shared by every engine
        this framework hands out: recent per-query records (digest,
        planner, fan-out, stage timings) plus the promoted slow-query
        ring.  Dump it with ``flight_log().dump(path)``."""
        return self.flight

    def query(
        self,
        box: BBox,
        t1: float,
        t2: float,
        kind: str = STATIC,
        bound: str = LOWER,
        faults: Optional[FaultInjector] = None,
        dispatch_strategy: str = "perimeter_walk",
        retry_policy: Optional[RetryPolicy] = None,
        max_error: Optional[float] = None,
    ) -> QueryResult:
        """Answer a range count query on the deployed sampled network.

        With a ``faults`` injector the dispatch is simulated
        fault-tolerantly: the result may be a partial aggregate flagged
        ``approximate`` carrying a :class:`~repro.query.QueryDegradation`
        error bound.

        ``max_error`` is the absolute count-error tolerance for the
        sketch fast tier (deployments with ``sketch_bins`` > 0): when
        the sketch's worst-case bound fits, the answer is served from
        the summary without contacting any sensor and carries the
        bound in ``result.degradation`` (``strategy="sketch"``).
        """
        engine = self.engine(
            faults=faults,
            dispatch_strategy=dispatch_strategy,
            retry_policy=retry_policy,
        )
        return engine.execute(
            RangeQuery(
                box, t1, t2, kind=kind, bound=bound, max_error=max_error
            )
        )

    def explain(
        self,
        box: BBox,
        t1: float,
        t2: float,
        kind: str = STATIC,
        bound: str = LOWER,
        faults: Optional[FaultInjector] = None,
        dispatch_strategy: str = "perimeter_walk",
        retry_policy: Optional[RetryPolicy] = None,
    ):
        """EXPLAIN one query: execute it and return the measured
        :class:`~repro.obs.QueryExplain` plan.

        Runs on whichever engine the deployed config selects: the
        single-process engine reports per-phase provenance; the sharded
        engine reports the scatter-gather plan (shard fan-out and
        route/scatter/worker_wait/merge stage times).
        """
        engine = self.engine(
            faults=faults,
            dispatch_strategy=dispatch_strategy,
            retry_policy=retry_policy,
        )
        return engine.explain(
            RangeQuery(box, t1, t2, kind=kind, bound=bound)
        )

    def query_exact(
        self,
        box: BBox,
        t1: float,
        t2: float,
        kind: str = STATIC,
    ) -> QueryResult:
        """Exact answer from the full (unsampled) sensing graph."""
        self._guard_open()
        if self._full_dirty:
            if self._columns_dirty:
                self._refresh_columns()
            with self.obs.tracer.span("ingest.build_form", network="full"):
                self._full_form = self._full.build_form(self._columns)
            self._full_dirty = False
        if self._full_form is None:
            raise QueryError("ingest trips or events first")
        engine = QueryEngine(
            self._full,
            self._full_form,
            access_mode="flood",
            instrumentation=self.obs,
        )
        return engine.execute(RangeQuery(box, t1, t2, kind=kind))

    # ------------------------------------------------------------------
    # Streaming
    # ------------------------------------------------------------------
    @property
    def streaming_store(self) -> Optional[StreamingEventStore]:
        """The live streaming store (``None`` unless deployed with
        ``streaming=True``)."""
        return self._streaming

    def monitor(self, keep_history: bool = False) -> ContinuousCountMonitor:
        """A standing-query monitor folded on every streamed arrival.

        Requires a streaming deployment: the monitor is attached to
        the :class:`~repro.stream.StreamingEventStore`, so each
        ``ingest_events`` updates its regional counts in the same pass
        that appends to the tail, and
        :meth:`~repro.stream.StreamingEventStore.resync` recovers
        exact counts from the store whenever the fold may have
        drifted (duplicate deliveries, replays).
        """
        self._guard_open()
        if self._streaming is None:
            raise QueryError(
                "monitor() needs a streaming deployment "
                "(FrameworkConfig(streaming=True))"
            )
        if self.network is None:
            raise QueryError("deploy() first")
        monitor = ContinuousCountMonitor(
            self.network, keep_history=keep_history
        )
        self._streaming.attach_monitor(monitor)
        return monitor

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has been called."""
        return self._closed

    @property
    def storage_bytes(self) -> int:
        """Storage of the deployed count representation.

        Exact stores report the nominal 8 bytes per stored timestamp
        (the paper's storage accounting); compressed deployments
        report the actual compressed footprint from
        :meth:`storage_report`.
        """
        if isinstance(self._store, ModeledCountStore):
            return self._store.storage_bytes
        if self.config is not None and self.config.compress:
            store = self._streaming if self._streaming is not None else self._form
            if store is not None:
                return int(store.storage_report()["total_bytes"])
        if self._streaming is not None:
            return self._streaming.total_events * 8
        if self._form is not None:
            return self._form.total_events * 8
        return 0

    def storage_report(self) -> dict:
        """Unified bytes-per-component accounting of every live tier.

        Returns ``{"stores": [report, ...], "total_bytes": int}``
        where each report follows the common store schema
        (``{"store", "events", "total_bytes", "components"}``) — the
        deployed count store plus, when present, the sketch tier.
        Surfaced by ``repro demo --storage`` and the dashboard storage
        panel.
        """
        reports = []
        store = self._store
        if store is not None and hasattr(store, "storage_report"):
            reports.append(store.storage_report())
        if self._sketch is not None:
            reports.append(self._sketch.storage_report())
        return {
            "stores": reports,
            "total_bytes": int(
                sum(r["total_bytes"] for r in reports)
            ),
        }

    @property
    def deployed_fraction(self) -> float:
        if self.network is None:
            return 0.0
        return self.network.size_fraction

    def __repr__(self) -> str:
        deployed = self.network.name if self.network else "undeployed"
        return (
            f"InNetworkFramework({self.domain!r}, deployed={deployed!r}, "
            f"events={len(self._events)})"
        )
