"""Framework configuration."""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError


@dataclass(frozen=True)
class FrameworkConfig:
    """Deployment configuration for :class:`~repro.core.InNetworkFramework`.

    ``selector`` is one of ``uniform``, ``systematic``, ``stratified``,
    ``kdtree``, ``quadtree`` or ``submodular`` (the latter requires a
    query history).  ``budget`` is the number of communication sensors.
    ``connectivity`` is ``triangulation`` or ``knn`` (§4.5);
    ``store`` picks the count representation: ``exact`` timestamps or
    one of the learned models (``linear``, ``polynomial``,
    ``piecewise``, ``histogram``) from §4.8.  ``planner`` picks the
    query resolution pipeline: ``auto`` (compiled whenever the store
    supports id-native integration), ``compiled`` or ``python``.
    """

    selector: str = "quadtree"
    budget: int = 50
    connectivity: str = "triangulation"
    knn_k: int = 5
    store: str = "exact"
    planner: str = "auto"
    seed: int = 0

    _SELECTORS = (
        "uniform",
        "systematic",
        "stratified",
        "kdtree",
        "quadtree",
        "submodular",
    )
    _STORES = (
        "exact",
        "linear",
        "polynomial",
        "piecewise",
        "histogram",
        "periodic",
    )

    def __post_init__(self) -> None:
        if self.selector not in self._SELECTORS:
            raise ConfigurationError(
                f"unknown selector {self.selector!r}; "
                f"choose from {self._SELECTORS}"
            )
        if self.connectivity not in ("triangulation", "knn"):
            raise ConfigurationError(
                f"unknown connectivity {self.connectivity!r}"
            )
        if self.store not in self._STORES:
            raise ConfigurationError(
                f"unknown store {self.store!r}; choose from {self._STORES}"
            )
        if self.planner not in ("auto", "compiled", "python"):
            raise ConfigurationError(
                f"unknown planner {self.planner!r}; "
                "choose from ('auto', 'compiled', 'python')"
            )
        if self.budget < 2:
            raise ConfigurationError("budget must be at least 2 sensors")
        if self.knn_k < 1:
            raise ConfigurationError("knn_k must be >= 1")
