"""Framework configuration."""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError

#: Districts used by ``planner="sharded"`` when ``shards`` is left at
#: its default of 1.
DEFAULT_SHARDS = 4


@dataclass(frozen=True)
class FrameworkConfig:
    """Deployment configuration for :class:`~repro.core.InNetworkFramework`.

    ``selector`` is one of ``uniform``, ``systematic``, ``stratified``,
    ``kdtree``, ``quadtree`` or ``submodular`` (the latter requires a
    query history).  ``budget`` is the number of communication sensors.
    ``connectivity`` is ``triangulation`` or ``knn`` (§4.5);
    ``store`` picks the count representation: ``exact`` timestamps or
    one of the learned models (``linear``, ``polynomial``,
    ``piecewise``, ``histogram``) from §4.8.  ``planner`` picks the
    query resolution pipeline: ``auto`` (compiled whenever the store
    supports id-native integration), ``compiled``, ``python`` or
    ``sharded`` (scatter-gather over district shards,
    :class:`~repro.query.ShardedQueryEngine`).  ``shards`` sets the
    district count for the sharded engine; any value > 1 turns
    sharding on regardless of ``planner`` (and ``planner="sharded"``
    with the default ``shards`` uses :data:`DEFAULT_SHARDS`
    districts).  Sharding requires the exact store — learned models
    are not sharded.

    ``flight_capacity`` sizes the framework's always-on query flight
    recorder (:class:`~repro.obs.FlightRecorder` ring buffer) and
    ``slow_query_s`` is its slow-query promotion threshold: queries
    slower than this carry full detail (provenance, grafted worker
    spans) in the flight log.

    ``streaming`` switches ingestion to the append-only
    :class:`~repro.stream.StreamingEventStore` (LSM-style mutable tail
    + compacted CSR blocks): ``ingest_events`` then updates indexes
    incrementally instead of rebuilding, and ``compact_every`` sets
    the tail size that triggers a compaction.  Streaming requires the
    exact store — learned models refit from scratch.

    ``compress`` switches the exact store to the succinct tier
    (:class:`~repro.forms.CompressedTrackingForm`): timestamps are
    quantized once at ingest to ``2**tick_bits`` ticks per second and
    stored delta-encoded + bit-packed (~4× smaller), with sharded
    workers attaching the compressed shared-memory form directly.
    Query results are byte-identical to the uncompressed store built
    from the same quantized events.  ``sketch_bins`` > 0 additionally
    builds an error-bounded :class:`~repro.forms.EdgeCountSketch` with
    that many time bins; queries carrying ``max_error`` are then
    served from the sketch whenever its worst-case bound fits.

    ``profile_hz`` > 0 turns on the continuous sampling profiler
    (:class:`~repro.obs.Profiler`): a background thread samples every
    application thread at that rate, attributing stacks to the open
    tracer spans.  Sharded workers run a worker-local sampler at the
    same rate and ship their stack tables home with each batch.
    ``profile_memory`` additionally enables :mod:`tracemalloc` peak
    watermarks per span path (heavier; off by default).
    """

    selector: str = "quadtree"
    budget: int = 50
    connectivity: str = "triangulation"
    knn_k: int = 5
    store: str = "exact"
    planner: str = "auto"
    shards: int = 1
    seed: int = 0
    flight_capacity: int = 256
    slow_query_s: float = 0.1
    streaming: bool = False
    compact_every: int = 4096
    compress: bool = False
    tick_bits: int = 0
    sketch_bins: int = 0
    profile_hz: float = 0.0
    profile_memory: bool = False

    _SELECTORS = (
        "uniform",
        "systematic",
        "stratified",
        "kdtree",
        "quadtree",
        "submodular",
    )
    _STORES = (
        "exact",
        "linear",
        "polynomial",
        "piecewise",
        "histogram",
        "periodic",
    )

    def __post_init__(self) -> None:
        if self.selector not in self._SELECTORS:
            raise ConfigurationError(
                f"unknown selector {self.selector!r}; "
                f"choose from {self._SELECTORS}"
            )
        if self.connectivity not in ("triangulation", "knn"):
            raise ConfigurationError(
                f"unknown connectivity {self.connectivity!r}"
            )
        if self.store not in self._STORES:
            raise ConfigurationError(
                f"unknown store {self.store!r}; choose from {self._STORES}"
            )
        if self.planner not in ("auto", "compiled", "python", "sharded"):
            raise ConfigurationError(
                f"unknown planner {self.planner!r}; "
                "choose from ('auto', 'compiled', 'python', 'sharded')"
            )
        if self.budget < 2:
            raise ConfigurationError("budget must be at least 2 sensors")
        if self.knn_k < 1:
            raise ConfigurationError("knn_k must be >= 1")
        if self.shards < 1:
            raise ConfigurationError("shards must be >= 1")
        if self.flight_capacity < 1:
            raise ConfigurationError("flight_capacity must be >= 1")
        if self.slow_query_s <= 0:
            raise ConfigurationError("slow_query_s must be > 0")
        if self.sharded and self.store != "exact":
            raise ConfigurationError(
                "sharded querying requires store='exact' (learned "
                "models are not sharded)"
            )
        if self.compact_every < 1:
            raise ConfigurationError("compact_every must be >= 1")
        if self.streaming and self.store != "exact":
            raise ConfigurationError(
                "streaming ingestion requires store='exact' (learned "
                "models refit from scratch, they cannot be appended to)"
            )
        if self.compress and self.store != "exact":
            raise ConfigurationError(
                "compress=True requires store='exact' (learned models "
                "store parameters, not timestamp columns)"
            )
        if not 0 <= self.tick_bits <= 20:
            raise ConfigurationError(
                "tick_bits must be in [0, 20] (2**tick_bits ticks "
                "per second)"
            )
        if self.sketch_bins < 0:
            raise ConfigurationError("sketch_bins must be >= 0")
        if self.sketch_bins and self.store != "exact":
            raise ConfigurationError(
                "sketch_bins requires store='exact' (the sketch bound "
                "is relative to the exact count)"
            )
        if self.sketch_bins and self.streaming:
            raise ConfigurationError(
                "sketch_bins is incompatible with streaming=True (the "
                "sketch is built at ingest and would go stale under "
                "incremental appends)"
            )
        if not 0 <= self.profile_hz <= 1000:
            raise ConfigurationError(
                "profile_hz must be in [0, 1000] samples per second "
                "(0 disables the profiler)"
            )
        if self.profile_memory and not self.profile_hz:
            raise ConfigurationError(
                "profile_memory requires profile_hz > 0 (memory "
                "watermarks ride on the sampler thread)"
            )

    @property
    def sharded(self) -> bool:
        """Whether queries run through the sharded engine."""
        return self.planner == "sharded" or self.shards > 1

    @property
    def effective_shards(self) -> int:
        """District count the sharded engine will use."""
        if self.shards > 1:
            return self.shards
        return DEFAULT_SHARDS if self.planner == "sharded" else 1
