"""Learned (regression) count models (system S10, §4.8)."""

from .base import BYTES_PER_PARAMETER, RegressionModel
from .incremental import IncrementalEdgeStore
from .periodic import PeriodicModel
from .regressors import (
    LinearModel,
    PiecewiseLinearModel,
    PolynomialModel,
    StepHistogramModel,
    default_model_factories,
)
from .store import BufferedEdgeStore, ModeledCountStore

__all__ = [
    "BYTES_PER_PARAMETER",
    "BufferedEdgeStore",
    "IncrementalEdgeStore",
    "LinearModel",
    "ModeledCountStore",
    "PeriodicModel",
    "PiecewiseLinearModel",
    "PolynomialModel",
    "RegressionModel",
    "StepHistogramModel",
    "default_model_factories",
]
