"""Daily-periodic count model.

Urban crossing streams are strongly diurnal (rush hours): a straight
line through the CDF misfits mornings and evenings symmetrically.  The
:class:`PeriodicModel` decomposes the cumulative count into a linear
trend plus a learned *time-of-day profile*: the average cumulative
count residual per daily phase bin.  Storage stays constant
(``profile_bins`` + 2 parameters); accuracy on multi-day rush-hour
streams beats a plain line at equal-or-smaller size than a piecewise
fit needs for the same quality.
"""

from __future__ import annotations

import numpy as np

from ..errors import ModelError
from .base import RegressionModel


class PeriodicModel(RegressionModel):
    """Linear trend + per-phase residual profile over a fixed period."""

    name = "periodic"

    def __init__(
        self, period: float = 86_400.0, profile_bins: int = 24
    ) -> None:
        super().__init__()
        if period <= 0:
            raise ModelError("period must be positive")
        if profile_bins < 1:
            raise ModelError("profile_bins must be >= 1")
        self.period = float(period)
        self.profile_bins = profile_bins
        self._slope = 0.0
        self._intercept = 0.0
        self._profile = np.zeros(profile_bins)

    @property
    def parameter_count(self) -> int:
        return 2 + self.profile_bins

    def _fit(self, times: np.ndarray, cumulative: np.ndarray) -> None:
        if len(times) == 1 or times[0] == times[-1]:
            self._slope = 0.0
            self._intercept = float(cumulative[-1])
            self._profile = np.zeros(self.profile_bins)
            return
        slope, intercept = np.polyfit(times, cumulative, deg=1)
        self._slope = float(slope)
        self._intercept = float(intercept)
        residuals = cumulative - (self._slope * times + self._intercept)
        phases = self._phase_bin(times)
        profile = np.zeros(self.profile_bins)
        counts = np.bincount(phases, minlength=self.profile_bins)
        sums = np.bincount(
            phases, weights=residuals, minlength=self.profile_bins
        )
        mask = counts > 0
        profile[mask] = sums[mask] / counts[mask]
        # Phases without data inherit their neighbours (circular fill).
        if not mask.all() and mask.any():
            known = np.flatnonzero(mask)
            for index in np.flatnonzero(~mask):
                distances = np.minimum(
                    np.abs(known - index),
                    self.profile_bins - np.abs(known - index),
                )
                profile[index] = profile[known[np.argmin(distances)]]
        self._profile = profile

    def _phase_bin(self, times: np.ndarray) -> np.ndarray:
        phase = np.mod(times, self.period) / self.period
        bins = np.floor(phase * self.profile_bins).astype(int)
        return np.clip(bins, 0, self.profile_bins - 1)

    def _predict(self, t: float) -> float:
        trend = self._slope * t + self._intercept
        phase = int(self._phase_bin(np.array([t]))[0])
        return trend + float(self._profile[phase])
