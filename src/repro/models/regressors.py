"""Concrete constant-size regressors (the paper's Fig. 9 line-up).

- :class:`LinearModel` — ordinary least squares on the CDF (Fig. 9a);
  2 parameters.
- :class:`PolynomialModel` — degree-``d`` least squares; ``d + 1``
  parameters, captures rush-hour curvature.
- :class:`PiecewiseLinearModel` — fixed budget of equal-frequency
  segments with linear interpolation (a constant-size cousin of the
  PGM/learned-index segmentation); monotone by construction.
- :class:`StepHistogramModel` — equal-width time bins with cumulative
  counts (the classic Euler-histogram temporal compaction).
"""

from __future__ import annotations

import bisect
from typing import Optional

import numpy as np

from ..errors import ModelError
from .base import RegressionModel


def _span_degenerate(times: np.ndarray) -> bool:
    """True when the time span is too small for a stable least squares.

    Uses a relative threshold so both huge timestamps with tiny spreads
    and subnormal spreads fall back to a constant (step) fit.
    """
    span = float(times[-1] - times[0])
    scale = max(abs(float(times[0])), abs(float(times[-1])), 1.0)
    return span <= 1e-12 * scale


class LinearModel(RegressionModel):
    """OLS straight line through the cumulative counts."""

    name = "linear"

    def __init__(self) -> None:
        super().__init__()
        self._slope = 0.0
        self._intercept = 0.0

    @property
    def parameter_count(self) -> int:
        return 2

    def _fit(self, times: np.ndarray, cumulative: np.ndarray) -> None:
        if len(times) == 1 or _span_degenerate(times):
            self._slope = 0.0
            self._intercept = float(cumulative[-1])
            return
        slope, intercept = np.polyfit(times, cumulative, deg=1)
        self._slope = float(slope)
        self._intercept = float(intercept)

    def _predict(self, t: float) -> float:
        return self._slope * t + self._intercept


class PolynomialModel(RegressionModel):
    """Least-squares polynomial of fixed degree on the CDF."""

    name = "polynomial"

    def __init__(self, degree: int = 3) -> None:
        super().__init__()
        if degree < 1:
            raise ModelError("polynomial degree must be >= 1")
        self.degree = degree
        self._coefficients = np.zeros(degree + 1)
        self._scale = 1.0
        self._shift = 0.0

    @property
    def parameter_count(self) -> int:
        return self.degree + 1

    def _fit(self, times: np.ndarray, cumulative: np.ndarray) -> None:
        # Normalise the time axis for conditioning.
        self._shift = float(times[0])
        span = float(times[-1] - times[0])
        self._scale = span if span > 0 else 1.0
        if len(times) < 2 or _span_degenerate(times):
            # Constant fit: all events (numerically) share one timestamp.
            self._coefficients = np.zeros(self.degree + 1)
            self._coefficients[-1] = float(cumulative[-1])
            return
        x = (times - self._shift) / self._scale
        degree = min(self.degree, len(times) - 1)
        coefficients = np.polyfit(x, cumulative, deg=degree)
        self._coefficients = np.concatenate(
            [np.zeros(self.degree + 1 - len(coefficients)), coefficients]
        )

    def _predict(self, t: float) -> float:
        x = (t - self._shift) / self._scale
        return float(np.polyval(self._coefficients, x))


class PiecewiseLinearModel(RegressionModel):
    """Equal-frequency piecewise-linear interpolation of the CDF.

    ``segments`` knots are placed at evenly spaced quantiles of the
    event sequence, so the storage budget is fixed regardless of the
    stream length and the fitted function is monotone non-decreasing.
    """

    name = "piecewise"

    def __init__(self, segments: int = 8) -> None:
        super().__init__()
        if segments < 1:
            raise ModelError("segments must be >= 1")
        self.segments = segments
        self._knot_t: np.ndarray = np.zeros(0)
        self._knot_y: np.ndarray = np.zeros(0)

    @property
    def parameter_count(self) -> int:
        return 2 * (self.segments + 1)

    def _fit(self, times: np.ndarray, cumulative: np.ndarray) -> None:
        n = len(times)
        knots = min(self.segments + 1, n)
        indices = np.unique(
            np.round(np.linspace(0, n - 1, knots)).astype(int)
        )
        knot_t = times[indices]
        knot_y = cumulative[indices]
        # Collapse duplicate timestamps (keep the highest count).
        unique_t, inverse = np.unique(knot_t, return_inverse=True)
        unique_y = np.zeros(len(unique_t))
        for pos, y in zip(inverse, knot_y):
            unique_y[pos] = max(unique_y[pos], y)
        self._knot_t = unique_t
        self._knot_y = np.maximum.accumulate(unique_y)

    def _predict(self, t: float) -> float:
        return float(np.interp(t, self._knot_t, self._knot_y))


class StepHistogramModel(RegressionModel):
    """Equal-width temporal bins holding cumulative counts."""

    name = "histogram"

    def __init__(self, bins: int = 16) -> None:
        super().__init__()
        if bins < 1:
            raise ModelError("bins must be >= 1")
        self.bins = bins
        self._edges: np.ndarray = np.zeros(0)
        self._cumulative: np.ndarray = np.zeros(0)

    @property
    def parameter_count(self) -> int:
        # Bin edges are implicit (equal width from t_min/t_max): store
        # one cumulative count per bin.
        return self.bins

    def _fit(self, times: np.ndarray, cumulative: np.ndarray) -> None:
        self._edges = np.linspace(self._t_min, self._t_max, self.bins + 1)
        counts, _ = np.histogram(times, bins=self._edges)
        self._cumulative = np.cumsum(counts).astype(float)

    def _predict(self, t: float) -> float:
        index = int(np.searchsorted(self._edges, t, side="right")) - 1
        index = min(max(index, 0), self.bins - 1)
        return float(self._cumulative[index])


def default_model_factories() -> dict:
    """Name -> zero-argument factory for all bundled regressors."""
    from .periodic import PeriodicModel

    return {
        "linear": LinearModel,
        "polynomial": PolynomialModel,
        "piecewise": PiecewiseLinearModel,
        "histogram": StepHistogramModel,
        "periodic": PeriodicModel,
    }
