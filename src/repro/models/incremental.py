"""Incremental model learning (§4.8's storage extension).

The paper sketches it directly: *"we can further reduce the storage
space by learning the regressors incrementally. For example, we learn a
model at time t that combines the buffer [t - n, t] and the trained
model at t - n."*  :class:`IncrementalEdgeStore` implements exactly
that: when a stream's buffer fills, the new model is fitted on the
union of (a) synthetic samples drawn from the *old* model's CDF and
(b) the real buffered timestamps — so a single constant-size model
covers the whole history, unlike :class:`~repro.models.BufferedEdgeStore`
whose model only covers the previous window.

The cost is compounding approximation: each refit inherits the previous
model's error.  The companion benchmark quantifies that drift.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Callable, Dict, Hashable, List, Optional, Tuple

import numpy as np

from ..errors import ModelError
from .base import BYTES_PER_PARAMETER, RegressionModel
from .store import ModelFactory, StreamKey, _stream_key

DirectedEdge = Tuple[Hashable, Hashable]


@dataclass
class _IncrementalStream:
    """One direction's state: a whole-history model plus a live buffer."""

    buffer: List[float] = field(default_factory=list)
    model: Optional[RegressionModel] = None

    def count(self, t: float) -> float:
        from_model = self.model.predict(t) if self.model is not None else 0.0
        if self.buffer and t >= self.buffer[0]:
            return from_model + bisect.bisect_right(self.buffer, t)
        return from_model


class IncrementalEdgeStore:
    """Online learned store whose models cover the *entire* history.

    On each flush the previous model is resampled at
    ``resample_points`` quantiles of its domain; those synthetic
    (timestamp, cumulative-count) pairs are concatenated with the real
    buffer and refitted.  Timestamps are expanded so the fitted CDF
    passes through the synthetic quantile points.
    """

    def __init__(
        self,
        factory: ModelFactory,
        buffer_size: int = 256,
        resample_points: int = 64,
    ) -> None:
        if buffer_size < 1:
            raise ModelError("buffer_size must be >= 1")
        if resample_points < 2:
            raise ModelError("resample_points must be >= 2")
        self._factory = factory
        self._buffer_size = buffer_size
        self._resample_points = resample_points
        self._streams: Dict[StreamKey, _IncrementalStream] = {}

    # ------------------------------------------------------------------
    def record(self, u: Hashable, v: Hashable, t: float) -> None:
        """Record a crossing toward ``v`` at time ``t``."""
        stream = self._streams.setdefault(
            _stream_key((u, v)), _IncrementalStream()
        )
        if stream.buffer and t < stream.buffer[-1]:
            raise ModelError(
                "IncrementalEdgeStore requires non-decreasing timestamps "
                "per stream"
            )
        stream.buffer.append(float(t))
        if len(stream.buffer) >= self._buffer_size:
            self._flush(stream)

    def _flush(self, stream: _IncrementalStream) -> None:
        history = self._resample(stream.model)
        combined = np.sort(np.concatenate([history, stream.buffer]))
        stream.model = self._factory().fit(combined)
        stream.buffer = []

    def _resample(self, model: Optional[RegressionModel]) -> np.ndarray:
        """Synthetic timestamps whose empirical CDF tracks the model.

        Inverts the model's CDF at ``event_count`` evenly spaced count
        levels (capped at ``resample_points`` via repetition weights) by
        bisection over the model's time domain.
        """
        if model is None or model.event_count == 0:
            return np.zeros(0)
        total = model.event_count
        t_lo, t_hi = model.time_domain
        levels = np.arange(1, total + 1, dtype=float)
        grid = np.linspace(t_lo, t_hi, self._resample_points)
        cdf = np.array([model.predict(t) for t in grid])
        cdf = np.maximum.accumulate(cdf)
        # Invert by interpolation: timestamp at which count reaches L.
        timestamps = np.interp(levels, cdf, grid, left=t_lo, right=t_hi)
        return timestamps

    # ------------------------------------------------------------------
    # EdgeCountStore interface
    # ------------------------------------------------------------------
    def count_entering(self, edge: DirectedEdge, t: float) -> float:
        stream = self._streams.get(_stream_key(edge))
        return stream.count(t) if stream is not None else 0.0

    def net_until(self, edge: DirectedEdge, t: float) -> float:
        return self.count_entering(edge, t) - self.count_entering(
            (edge[1], edge[0]), t
        )

    def net_between(self, edge: DirectedEdge, t1: float, t2: float) -> float:
        if t2 < t1:
            raise ModelError(f"inverted interval [{t1}, {t2}]")
        return self.net_until(edge, t2) - self.net_until(edge, t1)

    # ------------------------------------------------------------------
    @property
    def storage_bytes(self) -> int:
        total = 0
        for stream in self._streams.values():
            if stream.model is not None:
                total += stream.model.storage_bytes
            total += len(stream.buffer) * BYTES_PER_PARAMETER
        return total

    @property
    def stream_count(self) -> int:
        return len(self._streams)
