"""Learned count stores: drop-in replacements for exact tracking forms.

:class:`ModeledCountStore` fits one regression model per directed
crossing stream of a tracking form and answers the
:class:`~repro.forms.EdgeCountStore` interface by inference — the
offline compaction evaluated in Figs. 11e/14c/14d.

:class:`BufferedEdgeStore` is the online variant of §4.8: a bounded
buffer of recent events per stream plus a model over the previous
flushed window, answering range queries over (at most) the last ``2n``
events with the buffer answered exactly.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Callable, Dict, Hashable, List, Optional, Tuple

from ..errors import ModelError
from ..forms import TrackingForm
from ..forms.snapshot import _canonical
from .base import BYTES_PER_PARAMETER, RegressionModel

DirectedEdge = Tuple[Hashable, Hashable]
#: A stream is one direction of one canonical edge.
StreamKey = Tuple[DirectedEdge, bool]

ModelFactory = Callable[[], RegressionModel]


def _stream_key(edge: DirectedEdge) -> StreamKey:
    key, forward = _canonical(edge)
    return (key, forward)


class ModeledCountStore:
    """Per-stream regression models fitted from a tracking form."""

    def __init__(self, models: Dict[StreamKey, RegressionModel]) -> None:
        self._models = models

    @classmethod
    def fit(
        cls, form: TrackingForm, factory: ModelFactory
    ) -> "ModeledCountStore":
        """Fit one model per non-empty direction of every edge."""
        models: Dict[StreamKey, RegressionModel] = {}
        for edge in form.edges():
            plus, minus = form.timestamps(edge)
            if plus:
                models[_stream_key(edge)] = factory().fit(plus)
            if minus:
                models[_stream_key((edge[1], edge[0]))] = factory().fit(minus)
        return cls(models)

    # ------------------------------------------------------------------
    # EdgeCountStore interface
    # ------------------------------------------------------------------
    def count_entering(self, edge: DirectedEdge, t: float) -> float:
        model = self._models.get(_stream_key(edge))
        return model.predict(t) if model is not None else 0.0

    def net_until(self, edge: DirectedEdge, t: float) -> float:
        return self.count_entering(edge, t) - self.count_entering(
            (edge[1], edge[0]), t
        )

    def net_between(self, edge: DirectedEdge, t1: float, t2: float) -> float:
        if t2 < t1:
            raise ModelError(f"inverted interval [{t1}, {t2}]")
        return self.net_until(edge, t2) - self.net_until(edge, t1)

    # ------------------------------------------------------------------
    @property
    def stream_count(self) -> int:
        return len(self._models)

    @property
    def storage_bytes(self) -> int:
        """Total model storage across every stream."""
        return sum(model.storage_bytes for model in self._models.values())

    def storage_profile(self) -> List[int]:
        """Per-edge model storage in units of stored scalars (for the
        Fig. 11e CDF, comparable with TrackingForm.storage_profile)."""
        per_edge: Dict[DirectedEdge, int] = {}
        for (edge, _), model in self._models.items():
            per_edge[edge] = per_edge.get(edge, 0) + (
                model.storage_bytes // BYTES_PER_PARAMETER
            )
        return sorted(per_edge.values())

    def storage_report(self) -> dict:
        """Bytes-per-component accounting in the unified store schema
        (components are the model families in use)."""
        components: Dict[str, int] = {}
        events = 0
        for model in self._models.values():
            name = type(model).__name__
            components[name] = (
                components.get(name, 0) + int(model.storage_bytes)
            )
            events += int(model.event_count)
        return {
            "store": type(self).__name__,
            "events": events,
            "total_bytes": int(sum(components.values())),
            "components": components,
        }


@dataclass
class _Stream:
    """One direction's online state: flushed-window model + buffer."""

    buffer: List[float] = field(default_factory=list)
    model: Optional[RegressionModel] = None
    #: Events flushed before the current model's window.
    base: int = 0

    def count(self, t: float) -> float:
        if self.buffer and t >= self.buffer[0]:
            in_buffer = bisect.bisect_right(self.buffer, t)
            flushed = (
                self.base + self.model.event_count
                if self.model is not None
                else self.base
            )
            return flushed + in_buffer
        if self.model is not None:
            return self.base + self.model.predict(t)
        return 0.0


class BufferedEdgeStore:
    """Online buffer-and-flush learned store (§4.8).

    Events are exact while in the buffer; each flush refits the model
    on the flushed window of ``buffer_size`` events.  Queries reaching
    further back than the modelled window saturate at the accumulated
    base count — the paper's "at most 2n events in the past" envelope.
    """

    def __init__(
        self, factory: ModelFactory, buffer_size: int = 256
    ) -> None:
        if buffer_size < 1:
            raise ModelError("buffer_size must be >= 1")
        self._factory = factory
        self._buffer_size = buffer_size
        self._streams: Dict[StreamKey, _Stream] = {}

    def record(self, u: Hashable, v: Hashable, t: float) -> None:
        """Record a crossing toward ``v`` at time ``t``."""
        stream = self._streams.setdefault(_stream_key((u, v)), _Stream())
        if stream.buffer and t < stream.buffer[-1]:
            raise ModelError(
                "BufferedEdgeStore requires non-decreasing timestamps "
                "per stream"
            )
        stream.buffer.append(float(t))
        if len(stream.buffer) >= self._buffer_size:
            self._flush(stream)

    def _flush(self, stream: _Stream) -> None:
        if stream.model is not None:
            stream.base += stream.model.event_count
        stream.model = self._factory().fit(stream.buffer)
        stream.buffer = []

    # ------------------------------------------------------------------
    # EdgeCountStore interface
    # ------------------------------------------------------------------
    def count_entering(self, edge: DirectedEdge, t: float) -> float:
        stream = self._streams.get(_stream_key(edge))
        return stream.count(t) if stream is not None else 0.0

    def net_until(self, edge: DirectedEdge, t: float) -> float:
        return self.count_entering(edge, t) - self.count_entering(
            (edge[1], edge[0]), t
        )

    def net_between(self, edge: DirectedEdge, t1: float, t2: float) -> float:
        if t2 < t1:
            raise ModelError(f"inverted interval [{t1}, {t2}]")
        return self.net_until(edge, t2) - self.net_until(edge, t1)

    # ------------------------------------------------------------------
    @property
    def storage_bytes(self) -> int:
        """Models + live buffers (buffers are bounded by construction)."""
        total = 0
        for stream in self._streams.values():
            if stream.model is not None:
                total += stream.model.storage_bytes
            total += len(stream.buffer) * BYTES_PER_PARAMETER
        return total

    @property
    def stream_count(self) -> int:
        return len(self._streams)
