"""Regression models over per-edge timestamp CDFs (§4.8, Fig. 9).

Each crossing-event stream of a sensing edge is a monotone sequence of
timestamps; its cumulative count function ``C(γ(e), t)`` is a CDF-like
step function.  A :class:`RegressionModel` compresses that step
function into a constant number of parameters and answers counts by
inference in O(1) (or O(log segments)), trading a small count error for
a storage footprint independent of the number of events — the paper's
99.96% storage reduction.

All models clamp predictions to ``[0, n]`` and to zero before the first
event, which also keeps the derived range counts sensible.
"""

from __future__ import annotations

import abc
from typing import Optional, Sequence, Tuple

import numpy as np

from ..errors import ModelError

#: Bytes per stored model parameter (float64).
BYTES_PER_PARAMETER = 8


class RegressionModel(abc.ABC):
    """A constant-size approximation of a cumulative count function."""

    #: Short name used in experiment tables.
    name: str = "model"

    def __init__(self) -> None:
        self._n: int = 0
        self._t_min: float = 0.0
        self._t_max: float = 0.0
        self._fitted = False

    # ------------------------------------------------------------------
    def fit(self, timestamps: Sequence[float]) -> "RegressionModel":
        """Fit on an ascending timestamp sequence; returns self.

        The cumulative target for timestamp ``timestamps[i]`` is
        ``i + 1`` (counts are right-continuous: at the event instant the
        event is already counted).
        """
        times = np.asarray(timestamps, dtype=float)
        if times.ndim != 1:
            raise ModelError("timestamps must be one-dimensional")
        if len(times) and np.any(np.diff(times) < 0):
            times = np.sort(times)
        self._n = len(times)
        if self._n:
            self._t_min = float(times[0])
            self._t_max = float(times[-1])
            self._fit(times, np.arange(1, self._n + 1, dtype=float))
        self._fitted = True
        return self

    def predict(self, t: float) -> float:
        """Approximate ``C(γ, t)`` — events with timestamp <= t."""
        if not self._fitted:
            raise ModelError(f"{self.name} model used before fit()")
        if self._n == 0 or t < self._t_min:
            return 0.0
        if t >= self._t_max:
            return float(self._n)
        return float(np.clip(self._predict(t), 0.0, self._n))

    def predict_range(self, t1: float, t2: float) -> float:
        """Approximate count of events in ``(t1, t2]``."""
        if t2 < t1:
            raise ModelError(f"inverted interval [{t1}, {t2}]")
        return self.predict(t2) - self.predict(t1)

    # ------------------------------------------------------------------
    @property
    def event_count(self) -> int:
        return self._n

    @property
    def time_domain(self) -> Tuple[float, float]:
        """``(first, last)`` event timestamps the model was fitted on."""
        return (self._t_min, self._t_max)

    @property
    @abc.abstractmethod
    def parameter_count(self) -> int:
        """Number of stored parameters (excluding the 3 bookkeeping
        scalars n/t_min/t_max, which every model shares)."""

    @property
    def storage_bytes(self) -> int:
        """Total storage: parameters + the 3 bookkeeping scalars."""
        return (self.parameter_count + 3) * BYTES_PER_PARAMETER

    # ------------------------------------------------------------------
    @abc.abstractmethod
    def _fit(self, times: np.ndarray, cumulative: np.ndarray) -> None:
        """Fit internals; called only with at least one event."""

    @abc.abstractmethod
    def _predict(self, t: float) -> float:
        """Raw prediction for ``t_min <= t < t_max`` (clamped by caller)."""
