"""Deterministic fault injection for the in-network simulator.

The paper's evaluation (§5) assumes every sensor is alive and every
message is delivered — no real sensing deployment satisfies either.
This module supplies the failure side of the story so the dispatch
strategies of §4.6 can be exercised under the conditions in-network
aggregation literature actually worries about:

- **crash faults** — a seeded fraction of sensors is down for the whole
  run (dead radios, drained batteries);
- **intermittent faults** — a seeded fraction of sensors answers each
  contact attempt only with some availability probability (duty
  cycling, interference);
- **message drops** — every transmitted message is independently lost
  with a configurable probability;
- **latency** — a first-order per-message latency model (base cost plus
  a per-hop term), with failed attempts charging the retry policy's
  timeout and exponential backoff.

Everything is deterministic given :attr:`FaultConfig.seed`: the crash /
intermittent schedule is drawn once at injector construction, and the
per-attempt stream is an ordinary seeded generator, so a fixed seed and
call order replay exactly.  With every rate at zero the injector never
consumes randomness and the fault-aware dispatch paths are
byte-identical to the fault-free ones.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, Optional, Sequence

import numpy as np

from ..errors import ConfigurationError
from ..obs import get_registry


def _check_probability(name: str, value: float) -> None:
    if not 0.0 <= value <= 1.0:
        raise ConfigurationError(f"{name} must be in [0, 1], got {value!r}")


@dataclass(frozen=True)
class FaultConfig:
    """Failure schedule and latency model parameters (all seeded)."""

    #: Seed for both the crash schedule and the per-attempt stream.
    seed: int = 0
    #: Fraction of sensors crashed for the whole run.
    sensor_failure_rate: float = 0.0
    #: Fraction of (non-crashed) sensors that answer intermittently.
    intermittent_rate: float = 0.0
    #: Per-attempt probability that an intermittent sensor answers.
    availability: float = 0.5
    #: Per-message loss probability (applies to every transmission).
    drop_rate: float = 0.0
    #: Latency of one delivered message (arbitrary-but-consistent
    #: units, like the energy model's).
    base_latency: float = 1.0
    #: Additional latency per hop travelled.
    hop_latency: float = 0.5

    def __post_init__(self) -> None:
        _check_probability("sensor_failure_rate", self.sensor_failure_rate)
        _check_probability("intermittent_rate", self.intermittent_rate)
        _check_probability("availability", self.availability)
        _check_probability("drop_rate", self.drop_rate)
        if min(self.base_latency, self.hop_latency) < 0:
            raise ConfigurationError("latencies must be non-negative")

    @property
    def active(self) -> bool:
        """True when any failure mode can actually fire."""
        return (
            self.sensor_failure_rate > 0
            or self.intermittent_rate > 0
            or self.drop_rate > 0
        )


@dataclass(frozen=True)
class RetryPolicy:
    """Retry/timeout/backoff of the fault-tolerant dispatch paths."""

    #: Retries after the first attempt (so ``1 + max_retries`` attempts).
    max_retries: int = 2
    #: Latency charged for an attempt that receives no acknowledgement.
    timeout: float = 5.0
    #: Multiplicative backoff on the timeout between attempts.
    backoff: float = 2.0
    #: Consecutive unreachable perimeter sensors tolerated before the
    #: walk falls back to server-mediated stitching.
    stitch_after: int = 3

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ConfigurationError("max_retries must be >= 0")
        if self.timeout < 0:
            raise ConfigurationError("timeout must be non-negative")
        if self.backoff < 1.0:
            raise ConfigurationError("backoff must be >= 1")
        if self.stitch_after < 1:
            raise ConfigurationError("stitch_after must be >= 1")

    def wait(self, attempt: int) -> float:
        """Timeout + backoff latency of failed attempt ``attempt`` (0-based)."""
        return self.timeout * (self.backoff**attempt)


class FaultInjector:
    """Materialised, deterministic fault schedule over a sensor set.

    The crash / intermittent schedule is drawn once from
    ``FaultConfig.seed`` over the sorted sensor universe; per-attempt
    randomness (intermittent answers, message drops) comes from an
    independent seeded stream.  ``crashed`` / ``flaky`` overrides allow
    tests and experiments to script exact failure patterns.
    """

    def __init__(
        self,
        config: FaultConfig,
        sensors: Sequence[int],
        crashed: Optional[Iterable[int]] = None,
        flaky: Optional[Iterable[int]] = None,
    ) -> None:
        self.config = config
        universe = sorted(dict.fromkeys(sensors))
        schedule_rng = np.random.default_rng(config.seed)
        if crashed is not None:
            self.crashed: FrozenSet[int] = frozenset(crashed)
        elif config.sensor_failure_rate > 0:
            draws = schedule_rng.random(len(universe))
            self.crashed = frozenset(
                s
                for s, draw in zip(universe, draws)
                if draw < config.sensor_failure_rate
            )
        else:
            self.crashed = frozenset()
        if flaky is not None:
            self.flaky: FrozenSet[int] = frozenset(flaky) - self.crashed
        elif config.intermittent_rate > 0:
            draws = schedule_rng.random(len(universe))
            self.flaky = frozenset(
                s
                for s, draw in zip(universe, draws)
                if draw < config.intermittent_rate and s not in self.crashed
            )
        else:
            self.flaky = frozenset()
        self._attempt_rng = np.random.default_rng(
            np.random.SeedSequence(entropy=config.seed, spawn_key=(1,))
        )

    def record_schedule(self, registry=None) -> None:
        """Export the materialised failure schedule as gauges.

        Called by the simulator at construction so dashboards can put
        the *observed* failed-sensor count next to the *scheduled* one.
        """
        if registry is None:
            registry = get_registry()
        registry.gauge(
            "repro_fault_crashed_sensors",
            help="Sensors scheduled as crashed for the whole run",
        ).set(len(self.crashed))
        registry.gauge(
            "repro_fault_flaky_sensors",
            help="Sensors scheduled as intermittently responsive",
        ).set(len(self.flaky))

    @classmethod
    def for_network(
        cls, network, config: FaultConfig = FaultConfig()
    ) -> "FaultInjector":
        """Injector over a :class:`~repro.sampling.SensorNetwork`'s sensors."""
        return cls(config, network.sensors)

    # ------------------------------------------------------------------
    def is_crashed(self, sensor: int) -> bool:
        return sensor in self.crashed

    def responds(self, sensor: Optional[int]) -> bool:
        """One contact attempt: does the target acknowledge?

        ``None`` addresses the always-responsive query server.
        """
        if sensor is None:
            return True
        if sensor in self.crashed:
            return False
        if sensor in self.flaky:
            return bool(
                self._attempt_rng.random() < self.config.availability
            )
        return True

    def delivered(self) -> bool:
        """One transmission: does the message arrive?"""
        if self.config.drop_rate <= 0:
            return True
        return bool(self._attempt_rng.random() >= self.config.drop_rate)

    def message_latency(self, hops: int) -> float:
        return self.config.base_latency + self.config.hop_latency * hops
