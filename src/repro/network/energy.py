"""Energy accounting for the in-network system.

§3.1 motivates in-network processing partly with energy: *"substantial
network bandwidth and power are needed for centralized systems if
sensors are far from the servers (e.g., high-power radios for
long-distance data transmission, which can quickly drain
battery-powered sensors)"*.  This module quantifies that argument with
a standard first-order radio energy model (transmit cost grows with a
distance power law, receive cost constant) and compares three regimes:

- ``centralized``: every crossing event is sent from its detecting
  sensor directly to the server (long-range radio, continuous sync);
- ``in-network full``: events stay local; queries flood the region;
- ``in-network sampled``: events stay local at wall sensors; queries
  contact only the perimeter communication sensors.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional, Sequence, Tuple

from ..errors import ConfigurationError
from ..geometry import Point, distance
from ..planar import canonical_edge
from ..sampling import SensorNetwork
from ..trajectories import CrossingEvent
from .simulator import default_server_position


@dataclass(frozen=True)
class RadioParameters:
    """First-order radio model (Heinzelman-style).

    Energy to transmit one message over distance ``d``:
    ``tx_electronics + amplifier * d**path_loss_exponent``; receive
    cost is ``rx_electronics``.  Units are arbitrary-but-consistent
    (nanojoule-ish per message); only ratios matter to the analysis.
    """

    tx_electronics: float = 50.0
    rx_electronics: float = 50.0
    amplifier: float = 10.0
    path_loss_exponent: float = 2.0

    def __post_init__(self) -> None:
        if min(self.tx_electronics, self.rx_electronics, self.amplifier) < 0:
            raise ConfigurationError("radio energies must be non-negative")
        if not 1.0 <= self.path_loss_exponent <= 6.0:
            raise ConfigurationError("path_loss_exponent must be in [1, 6]")

    def transmit(self, d: float) -> float:
        return self.tx_electronics + self.amplifier * (
            d**self.path_loss_exponent
        )

    def receive(self) -> float:
        return self.rx_electronics


@dataclass
class EnergyReport:
    """Total energy of one regime plus its per-sensor peak."""

    regime: str
    update_energy: float
    query_energy: float
    peak_sensor_energy: float

    @property
    def total(self) -> float:
        return self.update_energy + self.query_energy


class EnergyModel:
    """Energy accounting over a sensing network and an event stream."""

    def __init__(
        self,
        network: SensorNetwork,
        radio: RadioParameters = RadioParameters(),
        server_position: Optional[Point] = None,
    ) -> None:
        self.network = network
        self.radio = radio
        # Default server location: just outside the north-east corner
        # (the shared helper, so the simulator's hop accounting and
        # this model's distance accounting describe the same legs).
        self.server_position = server_position or default_server_position(
            network.domain
        )
        self._mean_hop = network.domain.dual.mean_interior_edge_length()

    def _sensor_position(self, wall: Tuple) -> Point:
        """Position of the sensor detecting a wall crossing (midpoint
        of the wall's incident blocks, or the rim for EXT edges)."""
        domain = self.network.domain
        u, v = wall
        if u == "__ext__" or v == "__ext__":
            junction = v if u == "__ext__" else u
            return domain.position(junction)
        left, right = domain.dual.faces_of_primal_edge(u, v)
        positions = [
            domain.dual.position(b)
            for b in (left, right)
            if b != domain.dual.outer_node
        ]
        if not positions:
            return domain.position(u)
        x = sum(p[0] for p in positions) / len(positions)
        y = sum(p[1] for p in positions) / len(positions)
        return (x, y)

    # ------------------------------------------------------------------
    def centralized_updates(
        self, events: Sequence[CrossingEvent]
    ) -> EnergyReport:
        """Every event transmitted long-range to the server."""
        per_sensor: Dict[Tuple, float] = {}
        total = 0.0
        for event in events:
            wall = canonical_edge(event.tail, event.head)
            position = self._sensor_position(wall)
            cost = self.radio.transmit(
                distance(position, self.server_position)
            )
            total += cost
            per_sensor[wall] = per_sensor.get(wall, 0.0) + cost
        peak = max(per_sensor.values(), default=0.0)
        return EnergyReport(
            regime="centralized",
            update_energy=total,
            query_energy=0.0,
            peak_sensor_energy=peak,
        )

    def in_network_updates(
        self, events: Sequence[CrossingEvent]
    ) -> EnergyReport:
        """Events recorded locally: one short-range hop to the owning
        communication sensor (or free when the detector is the owner)."""
        walls = self.network.walls
        per_sensor: Dict[Tuple, float] = {}
        total = 0.0
        hop_cost = self.radio.transmit(self._mean_hop) + self.radio.receive()
        for event in events:
            wall = canonical_edge(event.tail, event.head)
            if wall not in walls:
                continue  # undetected: no sensing, no energy
            total += hop_cost
            per_sensor[wall] = per_sensor.get(wall, 0.0) + hop_cost
        peak = max(per_sensor.values(), default=0.0)
        return EnergyReport(
            regime="in-network updates",
            update_energy=total,
            query_energy=0.0,
            peak_sensor_energy=peak,
        )

    def query_energy(
        self, perimeter_sensors: Iterable[int], hops_between: int = 1
    ) -> float:
        """Energy of one perimeter-walk query dispatch (§4.6).

        Every transmission is paired with its receive: the first
        perimeter sensor pays ``receive()`` for the server's incoming
        request, each relay leg pays per-hop transmit + receive, and
        the server pays the final ``receive()`` for the last sensor's
        reply — so per-query energy is symmetric with the per-hop legs
        rather than silently dropping the two endpoint receives.
        """
        sensors = list(dict.fromkeys(perimeter_sensors))
        if not sensors:
            return 0.0
        dual = self.network.domain.dual
        first = dual.position(sensors[0])
        last = dual.position(sensors[-1])
        # Server -> first sensor: long-range transmit, received by the
        # first perimeter sensor.
        energy = self.radio.transmit(distance(self.server_position, first))
        energy += self.radio.receive()
        for a, b in zip(sensors, sensors[1:]):
            d = distance(dual.position(a), dual.position(b))
            steps = max(int(round(d / self._mean_hop)), 1) * hops_between
            energy += steps * (
                self.radio.transmit(self._mean_hop) + self.radio.receive()
            )
        # Last sensor -> server: long-range transmit, received by the
        # server.
        energy += self.radio.transmit(distance(last, self.server_position))
        energy += self.radio.receive()
        return energy
