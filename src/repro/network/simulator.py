"""Message-level in-network communication simulator (system S11).

The paper evaluates "an in-network system with abstractions ...
independent of the real distributed implementation" (§5): what matters
is *which* sensors a query touches and how far messages travel, not the
radio protocol.  This simulator replays the two dispatch strategies of
§4.6 over a query's perimeter:

- ``server_fanout``: the query server contacts every perimeter sensor
  directly and aggregates centrally (one round trip per sensor);
- ``perimeter_walk``: the server contacts one perimeter sensor, the
  partial aggregate is routed sensor-to-sensor around the perimeter
  (angular order), and the last sensor replies to the server.

Hop distances between sensors are measured along the sensing dual
graph, estimated as Euclidean distance over the mean dual edge length
(exact shortest paths would be O(E log V) per hop and change nothing
qualitatively; the estimate is documented as such).  The two server
legs of a walk (server -> first sensor, last sensor -> server) use the
same distance-over-mean-hop estimate against the shared server
position, so hop accounting and :class:`~repro.network.EnergyModel`'s
distance-based energy accounting agree on the same geometry.

With a :class:`~repro.network.FaultInjector` attached the dispatcher
becomes fault tolerant: contact attempts are retried per the
:class:`~repro.network.RetryPolicy`, a perimeter walk detours around
unreachable sensors (skip-ahead to the next live one, falling back to
server-mediated stitching when ``stitch_after`` consecutive sensors
are down), and every dispatch returns a :class:`DegradedReport`
carrying which sensors were skipped plus the coverage of the boundary
chain.  Without an injector the accounting is byte-identical to the
fault-free simulator.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import QueryError
from ..geometry import Point
from ..obs import Instrumentation, NULL_INSTRUMENTATION, get_registry
from ..sampling import SensorNetwork
from .faults import FaultInjector, RetryPolicy

#: Histogram buckets for degradation fractions (coverage losses live
#: in [0, 1], far below the default message-count buckets).
DEGRADATION_BUCKETS = (0.01, 0.02, 0.05, 0.1, 0.2, 0.5, 1.0)


def default_server_position(domain) -> Point:
    """Canonical query-server location: just outside the north-east
    corner of the domain (shared by the simulator and the energy model
    so both account the same server legs)."""
    bounds = domain.bounds
    return (
        bounds.max_x + 0.2 * bounds.width,
        bounds.max_y + 0.2 * bounds.height,
    )


@dataclass
class CommunicationReport:
    """Accounting for one simulated query dispatch."""

    strategy: str
    sensors_contacted: int
    messages: int
    hops: int
    #: Per-sensor message counts (congestion profile).
    load: Dict[int, int] = field(default_factory=dict)


@dataclass
class SensorContactStats:
    """Per-sensor contact telemetry of one dispatch (or probe sweep)."""

    attempts: int = 0
    acks: int = 0
    drops: int = 0
    retries: int = 0
    detours: int = 0
    latency: float = 0.0


@dataclass
class DegradedReport(CommunicationReport):
    """Dispatch accounting under fault injection.

    A :class:`CommunicationReport` plus the fault outcome.  With no
    injector (or every failure rate at zero) the extra fields keep
    their trivial values and the core accounting equals the fault-free
    report's.
    """

    #: Perimeter sensors whose partial aggregates are missing from the
    #: final answer, in contact order.
    skipped_sensors: Tuple[int, ...] = ()
    #: Extra contact attempts beyond the first, across all targets.
    retries: int = 0
    #: Messages lost in flight.
    drops: int = 0
    #: Walk skip-aheads around an unreachable sensor.
    detours: int = 0
    #: Walk segments stitched through the server after a run of
    #: unreachable sensors (``RetryPolicy.stitch_after``).
    server_stitches: int = 0
    #: Simulated latency: sequential along a walk, slowest round trip
    #: for a fan-out.
    latency: float = 0.0
    #: Fraction of the perimeter chain aggregated into the answer.
    coverage: float = 1.0
    #: Per-sensor contact telemetry (feeds :mod:`repro.obs.health`).
    per_sensor: Dict[int, SensorContactStats] = field(default_factory=dict)

    @property
    def degraded(self) -> bool:
        return bool(self.skipped_sensors)

    @property
    def error_fraction(self) -> float:
        """Skipped sensors' share of the boundary chain — the
        simulator-level bound on the relative count error of the
        partial aggregate (each perimeter sensor carries one equal
        share of the boundary integral)."""
        return 1.0 - self.coverage


#: Per-sensor telemetry counters flushed after each faulty dispatch
#: (and every probe sweep): ``SensorContactStats`` field -> metric.
_SENSOR_COUNTERS = (
    ("attempts", "repro_sensor_attempts_total",
     "Contact attempts per sensor"),
    ("acks", "repro_sensor_acks_total",
     "Acknowledged contacts per sensor"),
    ("drops", "repro_sensor_drops_total",
     "Messages lost in flight per sensor"),
    ("retries", "repro_sensor_retries_total",
     "Contact attempts beyond the first per sensor"),
    ("detours", "repro_sensor_detours_total",
     "Walk detours charged to an unreachable sensor"),
    ("latency", "repro_sensor_latency_total",
     "Simulated contact latency accumulated per sensor"),
)


def _flush_sensor_stats(per_sensor, registry) -> None:
    """Fold one dispatch's per-sensor tallies into labelled counters.

    One registry hit per (sensor, nonzero field) rather than per
    message attempt, keeping the dispatch hot path off the registry.
    """
    for sensor, stats in per_sensor.items():
        label = str(sensor)
        for attr, metric, help_text in _SENSOR_COUNTERS:
            value = getattr(stats, attr)
            if value:
                registry.counter(
                    metric, help=help_text, sensor=label
                ).inc(value)


class _Accounting:
    """Mutable per-dispatch message bookkeeping."""

    __slots__ = (
        "messages", "hops", "latency", "retries", "drops", "load",
        "per_sensor",
    )

    def __init__(self, sensors: Sequence[int]) -> None:
        self.messages = 0
        self.hops = 0
        self.latency = 0.0
        self.retries = 0
        self.drops = 0
        self.load: Dict[int, int] = {sensor: 0 for sensor in sensors}
        self.per_sensor: Dict[int, SensorContactStats] = {}

    def stats(self, sensor: int) -> SensorContactStats:
        entry = self.per_sensor.get(sensor)
        if entry is None:
            entry = self.per_sensor[sensor] = SensorContactStats()
        return entry


class NetworkSimulator:
    """Simulates query dispatch over a sensing network."""

    def __init__(
        self,
        network: SensorNetwork,
        instrumentation: Optional[Instrumentation] = None,
        faults: Optional[FaultInjector] = None,
        retry: RetryPolicy = RetryPolicy(),
        server_position: Optional[Point] = None,
    ) -> None:
        self.network = network
        self.obs = (
            instrumentation
            if instrumentation is not None
            else NULL_INSTRUMENTATION
        )
        self.faults = faults
        self.retry = retry
        self.server_position = (
            server_position
            if server_position is not None
            else default_server_position(network.domain)
        )
        self._mean_hop = network.domain.dual.mean_interior_edge_length()
        if faults is not None:
            faults.record_schedule()

    def _hops_between(self, a: int, b: int) -> int:
        dual = self.network.domain.dual
        ax, ay = dual.position(a)
        bx, by = dual.position(b)
        distance = math.hypot(ax - bx, ay - by)
        return max(int(round(distance / self._mean_hop)), 1)

    def uplink_hops(self, sensor: int) -> int:
        """Hops of a server <-> sensor leg: the same Euclidean distance
        over mean-dual-edge-length estimate used between sensors,
        measured against the shared server position (so the simulator's
        hop count and the energy model's distance cost describe the
        same leg)."""
        sx, sy = self.server_position
        px, py = self.network.domain.dual.position(sensor)
        distance = math.hypot(sx - px, sy - py)
        return max(int(round(distance / self._mean_hop)), 1)

    # ------------------------------------------------------------------
    def dispatch(
        self, perimeter_sensors: Sequence[int], strategy: str = "perimeter_walk"
    ) -> DegradedReport:
        """Simulate one query dispatch over the given perimeter sensors."""
        sensors = list(dict.fromkeys(perimeter_sensors))
        if not sensors:
            raise QueryError("cannot dispatch to an empty perimeter")
        with self.obs.tracer.span(
            "simulator.dispatch", strategy=strategy, sensors=len(sensors)
        ):
            if strategy == "server_fanout":
                report = self._server_fanout(sensors)
            elif strategy == "perimeter_walk":
                report = self._perimeter_walk(sensors)
            else:
                raise QueryError(f"unknown dispatch strategy {strategy!r}")
        self._record(report)
        return report

    def _record(self, report: DegradedReport) -> None:
        registry = get_registry()
        strategy = report.strategy
        registry.counter(
            "repro_sim_dispatches_total",
            help="Simulated query dispatches, by strategy",
            strategy=strategy,
        ).inc()
        registry.counter(
            "repro_sim_messages_total",
            help="Simulated messages sent, by strategy",
            strategy=strategy,
        ).inc(report.messages)
        registry.counter(
            "repro_sim_hops_total",
            help="Simulated message hops travelled, by strategy",
            strategy=strategy,
        ).inc(report.hops)
        registry.histogram(
            "repro_sim_messages",
            help="Messages per dispatch, by strategy",
            strategy=strategy,
        ).observe(report.messages)
        registry.histogram(
            "repro_sim_hops",
            help="Hops per dispatch, by strategy",
            strategy=strategy,
        ).observe(report.hops)
        if self.faults is None:
            return
        registry.counter(
            "repro_sim_drops_total",
            help="Simulated messages lost in flight, by strategy",
            strategy=strategy,
        ).inc(report.drops)
        registry.counter(
            "repro_sim_retries_total",
            help="Contact attempts beyond the first, by strategy",
            strategy=strategy,
        ).inc(report.retries)
        registry.counter(
            "repro_sim_detours_total",
            help="Perimeter-walk detours around unreachable sensors",
            strategy=strategy,
        ).inc(report.detours)
        registry.counter(
            "repro_sim_stitches_total",
            help="Server-mediated stitches of broken perimeter walks",
            strategy=strategy,
        ).inc(report.server_stitches)
        if report.degraded:
            registry.counter(
                "repro_sim_degraded_dispatches_total",
                help="Dispatches that skipped at least one sensor",
                strategy=strategy,
            ).inc()
        registry.histogram(
            "repro_sim_degradation",
            buckets=DEGRADATION_BUCKETS,
            help="Skipped share of the boundary chain per dispatch",
            strategy=strategy,
        ).observe(report.error_fraction)
        registry.histogram(
            "repro_sim_latency",
            help="Simulated dispatch latency, by strategy",
            strategy=strategy,
        ).observe(report.latency)
        _flush_sensor_stats(report.per_sensor, registry)

    # ------------------------------------------------------------------
    def probe_fleet(
        self, sensors: Optional[Sequence[int]] = None
    ) -> Dict[int, bool]:
        """Active health sweep: one direct server ping per sensor.

        Production-style health checking — sensors a query perimeter
        never touches still earn per-sensor telemetry, so crashed
        sensors are identifiable from counters alone.  Probe traffic is
        flushed into the ``repro_sensor_*`` counters (always, probes
        being health traffic by definition) but stays out of the
        dispatch metrics (``repro_sim_*``).  Returns reachability per
        sensor.
        """
        targets = (
            list(sensors)
            if sensors is not None
            else sorted(self.network.sensors)
        )
        registry = get_registry()
        registry.counter(
            "repro_probe_sweeps_total",
            help="Active fleet health-probe sweeps",
        ).inc()
        state = _Accounting(targets)
        reachable: Dict[int, bool] = {}
        unreachable = 0
        with self.obs.tracer.span("simulator.probe_fleet",
                                  sensors=len(targets)):
            for sensor in targets:
                ok = self._attempt(state, sensor, self.uplink_hops(sensor))
                reachable[sensor] = ok
                if not ok:
                    unreachable += 1
        if unreachable:
            registry.counter(
                "repro_probe_unreachable_total",
                help="Sensors that failed an entire probe round",
            ).inc(unreachable)
        _flush_sensor_stats(state.per_sensor, registry)
        return reachable

    # ------------------------------------------------------------------
    def _attempt(
        self,
        state: _Accounting,
        target: Optional[int],
        hop_count: int,
    ) -> bool:
        """Deliver one message to ``target`` (None = the server) over
        ``hop_count`` hops, retrying per the policy when faults are
        active.  Counts every attempt's messages/hops/latency; credits
        ``load`` to the target on successful receipt.  Returns whether
        the message was acknowledged."""
        faults = self.faults
        attempts = 1 + (self.retry.max_retries if faults is not None else 0)
        stats = state.stats(target) if target is not None else None
        for attempt in range(attempts):
            state.messages += 1
            state.hops += hop_count
            if stats is not None:
                stats.attempts += 1
            if attempt:
                state.retries += 1
                if stats is not None:
                    stats.retries += 1
            if faults is None:
                delivered = acked = True
            else:
                leg_latency = faults.message_latency(hop_count)
                state.latency += leg_latency
                if stats is not None:
                    stats.latency += leg_latency
                delivered = faults.delivered()
                if not delivered:
                    state.drops += 1
                    if stats is not None:
                        stats.drops += 1
                acked = delivered and faults.responds(target)
            if acked:
                if target is not None:
                    state.load[target] += 1
                    stats.acks += 1
                return True
            if faults is not None:
                wait = self.retry.wait(attempt)
                state.latency += wait
                if stats is not None:
                    stats.latency += wait
        return False

    def _server_fanout(self, sensors: List[int]) -> DegradedReport:
        faults = self.faults
        state = _Accounting(sensors)
        skipped: List[int] = []
        latency = 0.0
        attempts = 1 + (self.retry.max_retries if faults is not None else 0)
        for sensor in sensors:
            chain = 0.0
            success = False
            stats = state.stats(sensor)
            for attempt in range(attempts):
                state.messages += 1
                state.hops += 1  # request: direct long-range link
                stats.attempts += 1
                if attempt:
                    state.retries += 1
                    stats.retries += 1
                if faults is None:
                    request_ok = acked = True
                else:
                    leg = faults.message_latency(1)
                    chain += leg
                    stats.latency += leg
                    request_ok = faults.delivered()
                    if not request_ok:
                        state.drops += 1
                        stats.drops += 1
                    acked = request_ok and faults.responds(sensor)
                reply_ok = False
                if acked:
                    state.load[sensor] += 2  # request received + reply sent
                    stats.acks += 1
                    state.messages += 1
                    state.hops += 1  # reply: direct long-range link
                    if faults is None:
                        reply_ok = True
                    else:
                        leg = faults.message_latency(1)
                        chain += leg
                        stats.latency += leg
                        reply_ok = faults.delivered()
                        if not reply_ok:
                            state.drops += 1
                            stats.drops += 1
                if reply_ok:
                    success = True
                    break
                if faults is not None:
                    wait = self.retry.wait(attempt)
                    chain += wait
                    stats.latency += wait
            if not success:
                skipped.append(sensor)
            latency = max(latency, chain)  # fan-out runs in parallel
        reached = len(sensors) - len(skipped)
        return DegradedReport(
            strategy="server_fanout",
            sensors_contacted=reached,
            messages=state.messages,
            hops=state.hops,
            load=state.load,
            skipped_sensors=tuple(skipped),
            retries=state.retries,
            drops=state.drops,
            latency=latency,
            coverage=reached / len(sensors),
            per_sensor=state.per_sensor,
        )

    def _perimeter_walk(self, sensors: List[int]) -> DegradedReport:
        ordered = self._angular_order(sensors)
        faults = self.faults
        state = _Accounting(ordered)
        skipped: List[int] = []
        detours = 0
        stitches = 0

        # Server -> first reachable sensor.
        current: Optional[int] = None
        index = 0
        while index < len(ordered):
            target = ordered[index]
            index += 1
            if self._attempt(state, target, self.uplink_hops(target)):
                current = target
                break
            skipped.append(target)
        if current is None:
            return DegradedReport(
                strategy="perimeter_walk",
                sensors_contacted=0,
                messages=state.messages,
                hops=state.hops,
                load=state.load,
                skipped_sensors=tuple(skipped),
                retries=state.retries,
                drops=state.drops,
                latency=state.latency,
                coverage=0.0,
                per_sensor=state.per_sensor,
            )

        # Sensor-to-sensor walk with detours and server stitching.
        visited = [current]
        run = 0  # consecutive unreachable sensors since the last success
        for target in ordered[index:]:
            if faults is not None and run == self.retry.stitch_after:
                # A run of dead sensors: upload the partial aggregate
                # and let the server mediate the rest of the segment.
                stitches += 1
                state.load[current] += 1
                self._attempt(state, None, self.uplink_hops(current))
            if faults is not None and run >= self.retry.stitch_after:
                hop_count = self.uplink_hops(target)  # server-mediated
            else:
                hop_count = self._hops_between(current, target)
            if self._attempt(state, target, hop_count):
                current = target
                visited.append(target)
                run = 0
            else:
                skipped.append(target)
                detours += 1
                state.stats(target).detours += 1
                run += 1

        # Last sensor -> server (the send is charged to the sender).
        state.load[current] += 1
        final_ok = self._attempt(state, None, self.uplink_hops(current))
        if not final_ok:
            # The collected aggregate never reached the server: every
            # share is lost, whoever was visited along the way.
            skipped = list(ordered)
            coverage = 0.0
        else:
            coverage = len(visited) / len(ordered)
        return DegradedReport(
            strategy="perimeter_walk",
            sensors_contacted=len(visited),
            messages=state.messages,
            hops=state.hops,
            load=state.load,
            skipped_sensors=tuple(skipped),
            retries=state.retries,
            drops=state.drops,
            detours=detours,
            server_stitches=stitches,
            latency=state.latency,
            coverage=coverage,
            per_sensor=state.per_sensor,
        )

    def _angular_order(self, sensors: List[int]) -> List[int]:
        dual = self.network.domain.dual
        points = [dual.position(s) for s in sensors]
        cx = sum(p[0] for p in points) / len(points)
        cy = sum(p[1] for p in points) / len(points)
        return [
            sensor
            for _, sensor in sorted(
                (
                    (math.atan2(p[1] - cy, p[0] - cx), sensor)
                    for sensor, p in zip(sensors, points)
                )
            )
        ]
