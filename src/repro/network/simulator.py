"""Message-level in-network communication simulator (system S11).

The paper evaluates "an in-network system with abstractions ...
independent of the real distributed implementation" (§5): what matters
is *which* sensors a query touches and how far messages travel, not the
radio protocol.  This simulator replays the two dispatch strategies of
§4.6 over a query's perimeter:

- ``server_fanout``: the query server contacts every perimeter sensor
  directly and aggregates centrally (one round trip per sensor);
- ``perimeter_walk``: the server contacts one perimeter sensor, the
  partial aggregate is routed sensor-to-sensor around the perimeter
  (angular order), and the last sensor replies to the server.

Hop distances between sensors are measured along the sensing dual
graph, estimated as Euclidean distance over the mean dual edge length
(exact shortest paths would be O(E log V) per hop and change nothing
qualitatively; the estimate is documented as such).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..errors import QueryError
from ..obs import Instrumentation, NULL_INSTRUMENTATION, get_registry
from ..sampling import SensorNetwork


@dataclass
class CommunicationReport:
    """Accounting for one simulated query dispatch."""

    strategy: str
    sensors_contacted: int
    messages: int
    hops: int
    #: Per-sensor message counts (congestion profile).
    load: Dict[int, int] = field(default_factory=dict)


class NetworkSimulator:
    """Simulates query dispatch over a sensing network."""

    def __init__(
        self,
        network: SensorNetwork,
        instrumentation: Optional[Instrumentation] = None,
    ) -> None:
        self.network = network
        self.obs = (
            instrumentation
            if instrumentation is not None
            else NULL_INSTRUMENTATION
        )
        self._mean_hop = self._mean_dual_edge_length()

    def _mean_dual_edge_length(self) -> float:
        domain = self.network.domain
        dual = domain.dual
        total = 0.0
        count = 0
        for (u, v), (left, right) in dual.edge_faces.items():
            if left == right or dual.outer_node in (left, right):
                continue
            ax, ay = dual.position(left)
            bx, by = dual.position(right)
            total += math.hypot(ax - bx, ay - by)
            count += 1
        return (total / count) if count else 1.0

    def _hops_between(self, a: int, b: int) -> int:
        dual = self.network.domain.dual
        ax, ay = dual.position(a)
        bx, by = dual.position(b)
        distance = math.hypot(ax - bx, ay - by)
        return max(int(round(distance / self._mean_hop)), 1)

    # ------------------------------------------------------------------
    def dispatch(
        self, perimeter_sensors: Sequence[int], strategy: str = "perimeter_walk"
    ) -> CommunicationReport:
        """Simulate one query dispatch over the given perimeter sensors."""
        sensors = list(dict.fromkeys(perimeter_sensors))
        if not sensors:
            raise QueryError("cannot dispatch to an empty perimeter")
        with self.obs.tracer.span(
            "simulator.dispatch", strategy=strategy, sensors=len(sensors)
        ):
            if strategy == "server_fanout":
                report = self._server_fanout(sensors)
            elif strategy == "perimeter_walk":
                report = self._perimeter_walk(sensors)
            else:
                raise QueryError(f"unknown dispatch strategy {strategy!r}")
        self._record(report)
        return report

    def _record(self, report: CommunicationReport) -> None:
        registry = get_registry()
        strategy = report.strategy
        registry.counter(
            "repro_sim_dispatches_total",
            help="Simulated query dispatches, by strategy",
            strategy=strategy,
        ).inc()
        registry.counter(
            "repro_sim_messages_total",
            help="Simulated messages sent, by strategy",
            strategy=strategy,
        ).inc(report.messages)
        registry.counter(
            "repro_sim_hops_total",
            help="Simulated message hops travelled, by strategy",
            strategy=strategy,
        ).inc(report.hops)
        registry.histogram(
            "repro_sim_messages",
            help="Messages per dispatch, by strategy",
            strategy=strategy,
        ).observe(report.messages)
        registry.histogram(
            "repro_sim_hops",
            help="Hops per dispatch, by strategy",
            strategy=strategy,
        ).observe(report.hops)

    def _server_fanout(self, sensors: List[int]) -> CommunicationReport:
        load = {sensor: 2 for sensor in sensors}  # request + reply
        return CommunicationReport(
            strategy="server_fanout",
            sensors_contacted=len(sensors),
            messages=2 * len(sensors),
            hops=2 * len(sensors),
            load=load,
        )

    def _perimeter_walk(self, sensors: List[int]) -> CommunicationReport:
        ordered = self._angular_order(sensors)
        load: Dict[int, int] = {sensor: 0 for sensor in ordered}
        hops = 1  # server -> first sensor
        messages = 1
        load[ordered[0]] += 1
        for a, b in zip(ordered, ordered[1:]):
            step = self._hops_between(a, b)
            hops += step
            messages += 1
            load[b] += 1
        hops += 1  # last sensor -> server
        messages += 1
        load[ordered[-1]] += 1
        return CommunicationReport(
            strategy="perimeter_walk",
            sensors_contacted=len(ordered),
            messages=messages,
            hops=hops,
            load=load,
        )

    def _angular_order(self, sensors: List[int]) -> List[int]:
        dual = self.network.domain.dual
        points = [dual.position(s) for s in sensors]
        cx = sum(p[0] for p in points) / len(points)
        cy = sum(p[1] for p in points) / len(points)
        return [
            sensor
            for _, sensor in sorted(
                (
                    (math.atan2(p[1] - cy, p[0] - cx), sensor)
                    for sensor, p in zip(sensors, points)
                )
            )
        ]
