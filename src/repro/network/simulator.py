"""Message-level in-network communication simulator (system S11).

The paper evaluates "an in-network system with abstractions ...
independent of the real distributed implementation" (§5): what matters
is *which* sensors a query touches and how far messages travel, not the
radio protocol.  This simulator replays the two dispatch strategies of
§4.6 over a query's perimeter:

- ``server_fanout``: the query server contacts every perimeter sensor
  directly and aggregates centrally (one round trip per sensor);
- ``perimeter_walk``: the server contacts one perimeter sensor, the
  partial aggregate is routed sensor-to-sensor around the perimeter
  (angular order), and the last sensor replies to the server.

Hop distances between sensors are measured along the sensing dual
graph, estimated as Euclidean distance over the mean dual edge length
(exact shortest paths would be O(E log V) per hop and change nothing
qualitatively; the estimate is documented as such).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Set, Tuple

from ..errors import QueryError
from ..sampling import SensorNetwork


@dataclass
class CommunicationReport:
    """Accounting for one simulated query dispatch."""

    strategy: str
    sensors_contacted: int
    messages: int
    hops: int
    #: Per-sensor message counts (congestion profile).
    load: Dict[int, int] = field(default_factory=dict)


class NetworkSimulator:
    """Simulates query dispatch over a sensing network."""

    def __init__(self, network: SensorNetwork) -> None:
        self.network = network
        self._mean_hop = self._mean_dual_edge_length()

    def _mean_dual_edge_length(self) -> float:
        domain = self.network.domain
        dual = domain.dual
        total = 0.0
        count = 0
        for (u, v), (left, right) in dual.edge_faces.items():
            if left == right or dual.outer_node in (left, right):
                continue
            ax, ay = dual.position(left)
            bx, by = dual.position(right)
            total += math.hypot(ax - bx, ay - by)
            count += 1
        return (total / count) if count else 1.0

    def _hops_between(self, a: int, b: int) -> int:
        dual = self.network.domain.dual
        ax, ay = dual.position(a)
        bx, by = dual.position(b)
        distance = math.hypot(ax - bx, ay - by)
        return max(int(round(distance / self._mean_hop)), 1)

    # ------------------------------------------------------------------
    def dispatch(
        self, perimeter_sensors: Sequence[int], strategy: str = "perimeter_walk"
    ) -> CommunicationReport:
        """Simulate one query dispatch over the given perimeter sensors."""
        sensors = list(dict.fromkeys(perimeter_sensors))
        if not sensors:
            raise QueryError("cannot dispatch to an empty perimeter")
        if strategy == "server_fanout":
            return self._server_fanout(sensors)
        if strategy == "perimeter_walk":
            return self._perimeter_walk(sensors)
        raise QueryError(f"unknown dispatch strategy {strategy!r}")

    def _server_fanout(self, sensors: List[int]) -> CommunicationReport:
        load = {sensor: 2 for sensor in sensors}  # request + reply
        return CommunicationReport(
            strategy="server_fanout",
            sensors_contacted=len(sensors),
            messages=2 * len(sensors),
            hops=2 * len(sensors),
            load=load,
        )

    def _perimeter_walk(self, sensors: List[int]) -> CommunicationReport:
        ordered = self._angular_order(sensors)
        load: Dict[int, int] = {sensor: 0 for sensor in ordered}
        hops = 1  # server -> first sensor
        messages = 1
        load[ordered[0]] += 1
        for a, b in zip(ordered, ordered[1:]):
            step = self._hops_between(a, b)
            hops += step
            messages += 1
            load[b] += 1
        hops += 1  # last sensor -> server
        messages += 1
        load[ordered[-1]] += 1
        return CommunicationReport(
            strategy="perimeter_walk",
            sensors_contacted=len(ordered),
            messages=messages,
            hops=hops,
            load=load,
        )

    def _angular_order(self, sensors: List[int]) -> List[int]:
        dual = self.network.domain.dual
        points = [dual.position(s) for s in sensors]
        cx = sum(p[0] for p in points) / len(points)
        cy = sum(p[1] for p in points) / len(points)
        return [
            sensor
            for _, sensor in sorted(
                (
                    (math.atan2(p[1] - cy, p[0] - cx), sensor)
                    for sensor, p in zip(sensors, points)
                )
            )
        ]
