"""In-network communication simulation, fault injection and energy
accounting (S11)."""

from .energy import EnergyModel, EnergyReport, RadioParameters
from .faults import FaultConfig, FaultInjector, RetryPolicy
from .simulator import (
    CommunicationReport,
    DEGRADATION_BUCKETS,
    DegradedReport,
    NetworkSimulator,
    default_server_position,
)

__all__ = [
    "CommunicationReport",
    "DEGRADATION_BUCKETS",
    "DegradedReport",
    "EnergyModel",
    "EnergyReport",
    "FaultConfig",
    "FaultInjector",
    "NetworkSimulator",
    "RadioParameters",
    "RetryPolicy",
    "default_server_position",
]
