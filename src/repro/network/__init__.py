"""In-network communication simulation and energy accounting (S11)."""

from .energy import EnergyModel, EnergyReport, RadioParameters
from .simulator import CommunicationReport, NetworkSimulator

__all__ = [
    "CommunicationReport",
    "EnergyModel",
    "EnergyReport",
    "NetworkSimulator",
    "RadioParameters",
]
