"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still letting programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class GeometryError(ReproError):
    """Invalid or degenerate geometric input (e.g. zero-length segment)."""


class PlanarityError(ReproError):
    """A graph operation required a planar embedding that does not hold."""


class GraphStructureError(ReproError):
    """A graph is malformed for the requested operation (missing node,
    disconnected component where connectivity is required, ...)."""


class SelectionError(ReproError):
    """Sensor-selection failure (budget too small / too large, empty
    candidate set, malformed strata, ...)."""


class QueryError(ReproError):
    """Malformed query (empty region, inverted time interval, unknown
    approximation mode, ...)."""


class QueryMiss(QueryError):
    """The query region does not intersect the sampled graph at all.

    Raised only when the caller asked for strict behaviour; the query
    engine normally reports misses in the result object instead.
    """


class ModelError(ReproError):
    """Learned count-model failure (fitting on empty data, inference
    before fit, ...)."""


class WorkloadError(ReproError):
    """Trajectory or query workload generation failure."""


class ConfigurationError(ReproError):
    """Invalid framework configuration."""
