"""The paper's composite baseline (§5.1.2): Euler histograms on the
faces of the unsampled sensing graph plus uniform face sampling.

"The baseline uses Euler-histograms [15, 19] to count the number of
objects within each face of the graph G. We assume all counts are
aggregated and stored in the nodes before querying. A random index
sampling algorithm [14, 29] then uniformly samples faces in the graph."

Faces of ``G`` are junction cells in the dual model, so the baseline
keeps a per-sampled-junction occupancy history, built from the same
anonymous crossing events the in-network framework sees (entries and
exits of the face), and answers a query by summing the sampled faces
inside the region and Horvitz-Thompson scaling by the local sampling
rate.  A query with no sampled face inside its region is a miss."""

from __future__ import annotations

import bisect
import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..errors import QueryError, SelectionError
from ..mobility import EXT, MobilityDomain
from ..planar import NodeId
from ..query import STATIC, TRANSIENT, QueryResult, RangeQuery
from ..trajectories import CrossingEvent


class _FaceHistory:
    """Entry/exit timestamp lists for one sampled face (junction)."""

    __slots__ = ("ins", "outs")

    def __init__(self) -> None:
        self.ins: List[float] = []
        self.outs: List[float] = []

    def occupancy(self, t: float) -> int:
        return bisect.bisect_right(self.ins, t) - bisect.bisect_right(
            self.outs, t
        )

    def sort(self) -> None:
        self.ins.sort()
        self.outs.sort()

    @property
    def event_count(self) -> int:
        return len(self.ins) + len(self.outs)


@dataclass
class EulerHistogramBaseline:
    """Uniform face sampling + per-face occupancy histograms.

    ``m`` sampled faces make its budget comparable to ``m``
    communication sensors of the in-network framework.
    """

    domain: MobilityDomain
    m: int
    rng: np.random.Generator = field(
        default_factory=lambda: np.random.default_rng(0)
    )
    name: str = "euler-baseline"
    #: Temporal histogram resolution: per-face occupancy is aggregated
    #: into this many equal-width bins over the observed time span
    #: (None keeps exact event timestamps; the paper's baseline is a
    #: histogram, so binning is the default).
    time_bins: Optional[int] = 32

    def __post_init__(self) -> None:
        total = self.domain.junction_count
        if not 1 <= self.m <= total:
            raise SelectionError(
                f"baseline budget m={self.m} out of range 1..{total}"
            )
        picks = self.rng.choice(total, size=self.m, replace=False)
        self.sampled: Set[NodeId] = {
            self.domain.junctions[i] for i in picks
        }
        self._histories: Dict[NodeId, _FaceHistory] = {
            junction: _FaceHistory() for junction in self.sampled
        }
        self._ingested = False

    # ------------------------------------------------------------------
    def ingest(self, events: Iterable[CrossingEvent]) -> int:
        """Aggregate crossing events into per-face occupancy histories."""
        count = 0
        histories = self._histories
        t_min = float("inf")
        t_max = float("-inf")
        for event in events:
            t_min = min(t_min, event.t)
            t_max = max(t_max, event.t)
            history = histories.get(event.head)
            if history is not None:
                history.ins.append(event.t)
                count += 1
            history = histories.get(event.tail)
            if history is not None:
                history.outs.append(event.t)
                count += 1
        for history in histories.values():
            history.sort()
        if self.time_bins is not None and count and t_max > t_min:
            self._bin_edges = np.linspace(t_min, t_max, self.time_bins + 1)
            self._binned = {
                junction: np.array(
                    [history.occupancy(edge) for edge in self._bin_edges]
                )
                for junction, history in histories.items()
            }
        else:
            self._bin_edges = None
            self._binned = None
        self._ingested = True
        return count

    def _occupancy(self, junction: NodeId, t: float) -> float:
        """Occupancy of a sampled face at time ``t`` (binned if enabled)."""
        if self._binned is not None:
            edges = self._bin_edges
            index = int(np.searchsorted(edges, t, side="right")) - 1
            index = min(max(index, 0), len(edges) - 1)
            return float(self._binned[junction][index])
        return float(self._histories[junction].occupancy(t))

    # ------------------------------------------------------------------
    def execute(self, query: RangeQuery) -> QueryResult:
        """Answer a query by Horvitz-Thompson scaling of sampled faces.

        The lower/upper bound distinction does not apply (the baseline
        is an unbiased estimator, not a bound); ``query.bound`` is
        ignored, as in the paper's comparisons.
        """
        if not self._ingested:
            raise QueryError("baseline queried before ingest()")
        start = time.perf_counter()
        region = self.domain.junctions_in_bbox(query.box)
        inside = [j for j in self.sampled if j in region]
        if not region or not inside:
            return QueryResult(
                query=query,
                value=0.0,
                missed=True,
                elapsed=time.perf_counter() - start,
            )
        scale = len(region) / len(inside)
        if query.kind == STATIC:
            raw = sum(self._occupancy(j, query.t2) for j in inside)
        else:
            raw = sum(
                self._occupancy(j, query.t2) - self._occupancy(j, query.t1)
                for j in inside
            )
        elapsed = time.perf_counter() - start
        return QueryResult(
            query=query,
            value=raw * scale,
            missed=False,
            regions=(),
            edges_accessed=0,
            nodes_accessed=len(inside),
            hops=len(inside),
            elapsed=elapsed,
        )

    def execute_many(self, queries: Sequence[RangeQuery]) -> List[QueryResult]:
        return [self.execute(query) for query in queries]

    # ------------------------------------------------------------------
    @property
    def storage_events(self) -> int:
        """Total stored values across sampled faces (bins or events)."""
        if self._binned is not None:
            return sum(len(arr) for arr in self._binned.values())
        return sum(h.event_count for h in self._histories.values())

    @property
    def size_fraction(self) -> float:
        return self.m / max(self.domain.junction_count, 1)
