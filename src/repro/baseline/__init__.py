"""Baseline systems (S12): Euler-histogram face sampling and
FM-sketch distinct counting (the paper's references [15]/[19]/[36])."""

from .euler import EulerHistogramBaseline
from .sketches import FMSketch, SketchBaseline

__all__ = ["EulerHistogramBaseline", "FMSketch", "SketchBaseline"]
