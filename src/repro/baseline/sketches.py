"""Sketch-based distinct-count baseline (the paper's reference [36]).

Tao et al. (ICDE 2004) answer spatio-temporal *distinct* counts with
Flajolet-Martin sketches: each spatial cell keeps, per time bin, a
small bit sketch of the object identifiers seen, and a query merges
(ORs) sketches over the cells and bins it covers — duplicates across
cells/bins collapse for free.

This baseline is the identity-dependent counterpoint to the paper's
framework: it answers a query the differential forms cannot (distinct
objects *ever present* during a window) but requires hashing persistent
object identifiers — exactly the privacy cost the paper avoids.  It is
included for the related-work comparison and for the
``distinct_visitors`` evaluation in tests and examples.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, Hashable, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..errors import ConfigurationError, QueryError
from ..geometry import BBox
from ..mobility import EXT, MobilityDomain
from ..planar import NodeId
from ..trajectories import Trip

#: Correction factor of the Flajolet-Martin estimator.
FM_PHI = 0.77351


def _hash64(value: str, salt: int) -> int:
    digest = hashlib.blake2b(
        value.encode(), digest_size=8, salt=salt.to_bytes(8, "little")
    ).digest()
    return int.from_bytes(digest, "little")


def _rho(x: int, bits: int) -> int:
    """Position of the least-significant set bit (capped)."""
    if x == 0:
        return bits - 1
    return min((x & -x).bit_length() - 1, bits - 1)


@dataclass
class FMSketch:
    """A Flajolet-Martin distinct-count sketch (m independent planes)."""

    planes: int = 16
    bits: int = 32
    _bitmaps: np.ndarray = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.planes < 1:
            raise ConfigurationError("planes must be >= 1")
        if not 8 <= self.bits <= 64:
            raise ConfigurationError("bits must be in [8, 64]")
        if self._bitmaps is None:
            self._bitmaps = np.zeros(self.planes, dtype=np.uint64)

    def add(self, identity: Hashable) -> None:
        """Insert one identity (idempotent for duplicates)."""
        text = repr(identity)
        for plane in range(self.planes):
            position = _rho(_hash64(text, plane), self.bits)
            self._bitmaps[plane] |= np.uint64(1 << position)

    def merge(self, other: "FMSketch") -> "FMSketch":
        """Union of two sketches (duplicates collapse)."""
        if other.planes != self.planes or other.bits != self.bits:
            raise ConfigurationError("cannot merge differently-shaped sketches")
        merged = FMSketch(planes=self.planes, bits=self.bits)
        merged._bitmaps = self._bitmaps | other._bitmaps
        return merged

    def estimate(self) -> float:
        """FM cardinality estimate: 2^mean(R) / phi."""
        ranks = []
        for bitmap in self._bitmaps:
            rank = 0
            value = int(bitmap)
            while value & 1:
                rank += 1
                value >>= 1
            ranks.append(rank)
        return (2.0 ** float(np.mean(ranks))) / FM_PHI

    @property
    def storage_bytes(self) -> int:
        return self.planes * 8

    def __or__(self, other: "FMSketch") -> "FMSketch":
        return self.merge(other)


class SketchBaseline:
    """Per-junction, per-time-bin FM sketches of object identities.

    ``distinct_count(box, t1, t2)`` merges the sketches of every
    junction face in the region across the bins overlapping the window,
    estimating the number of distinct objects ever present — the [36]
    query type.  Identity-dependent by construction.
    """

    def __init__(
        self,
        domain: MobilityDomain,
        horizon: float,
        time_bins: int = 32,
        planes: int = 16,
    ) -> None:
        if time_bins < 1:
            raise ConfigurationError("time_bins must be >= 1")
        if horizon <= 0:
            raise ConfigurationError("horizon must be positive")
        self.domain = domain
        self.horizon = float(horizon)
        self.time_bins = time_bins
        self.planes = planes
        self._sketches: Dict[Tuple[NodeId, int], FMSketch] = {}
        self._ingested = False

    def _bin_of(self, t: float) -> int:
        index = int(t / self.horizon * self.time_bins)
        return min(max(index, 0), self.time_bins - 1)

    def ingest_trips(self, trips: Sequence[Trip]) -> int:
        """Insert every (junction, bin) presence of every trip."""
        insertions = 0
        for trip in trips:
            visits = list(trip.visits)
            for (junction, t_in), (_, t_out) in zip(visits, visits[1:] + [(None, trip.end_time)]):
                if junction == EXT:
                    continue
                first = self._bin_of(t_in)
                last = self._bin_of(max(t_out - 1e-9, t_in))
                for time_bin in range(first, last + 1):
                    key = (junction, time_bin)
                    sketch = self._sketches.get(key)
                    if sketch is None:
                        sketch = FMSketch(planes=self.planes)
                        self._sketches[key] = sketch
                    sketch.add(trip.object_id)
                    insertions += 1
        self._ingested = True
        return insertions

    def distinct_count(self, box: BBox, t1: float, t2: float) -> float:
        """Estimated distinct objects inside the box during [t1, t2]."""
        if not self._ingested:
            raise QueryError("sketch baseline queried before ingest")
        if t2 < t1:
            raise QueryError(f"inverted interval [{t1}, {t2}]")
        junctions = self.domain.junctions_in_bbox(box)
        if not junctions:
            return 0.0
        bins = range(self._bin_of(t1), self._bin_of(t2) + 1)
        merged: Optional[FMSketch] = None
        for junction in junctions:
            for time_bin in bins:
                sketch = self._sketches.get((junction, time_bin))
                if sketch is None:
                    continue
                merged = sketch if merged is None else merged | sketch
        return merged.estimate() if merged is not None else 0.0

    @property
    def storage_bytes(self) -> int:
        return sum(s.storage_bytes for s in self._sketches.values())

    @property
    def sketch_count(self) -> int:
        return len(self._sketches)
