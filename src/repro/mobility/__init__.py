"""Mobility domain substrate (system S4): road networks, strata,
map matching and the :class:`MobilityDomain` pipeline bundle."""

from .domain import EXT, MobilityDomain
from .mapio import (
    VEHICLE_CLASSES,
    load_road_network,
    road_network_from_dict,
    save_road_network,
)
from .mapmatch import MapMatcher
from .roadnet import grid_city, organic_city, radial_city
from .strata import Strata, grid_strata, voronoi_strata

__all__ = [
    "EXT",
    "MapMatcher",
    "MobilityDomain",
    "Strata",
    "VEHICLE_CLASSES",
    "grid_city",
    "grid_strata",
    "load_road_network",
    "organic_city",
    "radial_city",
    "road_network_from_dict",
    "save_road_network",
    "voronoi_strata",
]
