"""Map matching of raw GPS-like traces onto the mobility graph (§5.1.3).

The paper maps "each trajectory location to the nearest node and
connect[s] them via the shortest path in the graph"; this module does
exactly that: nearest-junction snapping via a kd-tree, consecutive
duplicates collapsed, gaps filled with Euclidean-shortest paths.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..errors import WorkloadError
from ..geometry import Point
from ..planar import NodeId, PlanarGraph


@dataclass
class MapMatcher:
    """Snaps raw coordinate traces to junction sequences of ``*G``."""

    graph: PlanarGraph

    def __post_init__(self) -> None:
        from scipy.spatial import cKDTree

        self._nodes: List[NodeId] = list(self.graph.nodes())
        if not self._nodes:
            raise WorkloadError("cannot map-match onto an empty graph")
        coords = np.array([self.graph.position(n) for n in self._nodes])
        self._tree = cKDTree(coords)

    def nearest_node(self, point: Point) -> NodeId:
        """The junction closest to ``point``."""
        _, index = self._tree.query(np.asarray(point, dtype=float))
        return self._nodes[int(index)]

    def nearest_nodes(self, points: Sequence[Point]) -> List[NodeId]:
        if len(points) == 0:
            return []
        _, indices = self._tree.query(np.asarray(points, dtype=float))
        return [self._nodes[int(i)] for i in np.atleast_1d(indices)]

    def match(self, trace: Sequence[Point]) -> List[NodeId]:
        """Match a coordinate trace to a connected junction sequence.

        Consecutive identical snaps collapse; consecutive distinct snaps
        are joined by the shortest path in the graph.  Unreachable pairs
        raise :class:`~repro.errors.WorkloadError`.
        """
        if not trace:
            return []
        snapped = self.nearest_nodes(trace)
        sequence: List[NodeId] = [snapped[0]]
        for node in snapped[1:]:
            if node == sequence[-1]:
                continue
            path = self.graph.shortest_path(sequence[-1], node)
            if path is None:
                raise WorkloadError(
                    f"no path between matched junctions "
                    f"{sequence[-1]!r} and {node!r}"
                )
            sequence.extend(path[1:])
        return sequence

    def match_timed(
        self, trace: Sequence[Tuple[Point, float]]
    ) -> List[Tuple[NodeId, float]]:
        """Match a timestamped trace, interpolating times along paths.

        Times must be non-decreasing.  Intermediate junctions introduced
        by path filling get times interpolated by path length.
        """
        if not trace:
            return []
        times = [t for _, t in trace]
        if any(b < a for a, b in zip(times, times[1:])):
            raise WorkloadError("trace timestamps must be non-decreasing")

        snapped = self.nearest_nodes([p for p, _ in trace])
        result: List[Tuple[NodeId, float]] = [(snapped[0], times[0])]
        for node, t in zip(snapped[1:], times[1:]):
            last_node, last_t = result[-1]
            if node == last_node:
                # Dwell: keep the arrival time and track the departure
                # as a second visit at the same junction (Trip encodes
                # stays as repeated visits).
                if t > last_t:
                    if len(result) >= 2 and result[-2][0] == node:
                        result[-1] = (node, t)
                    else:
                        result.append((node, t))
                continue
            path = self.graph.shortest_path(last_node, node)
            if path is None:
                raise WorkloadError(
                    f"no path between matched junctions "
                    f"{last_node!r} and {node!r}"
                )
            lengths = [
                self.graph.edge_length(a, b) for a, b in zip(path, path[1:])
            ]
            total = sum(lengths) or 1.0
            elapsed = 0.0
            for (step, length) in zip(path[1:], lengths):
                elapsed += length
                result.append((step, last_t + (t - last_t) * elapsed / total))
        return result
