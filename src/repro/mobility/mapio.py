"""Road-network I/O: constructing planar mobility graphs from map data.

§4.2 of the paper describes the pipeline for real maps: filter
non-vehicle ways (walking paths, train tracks), then planarize by
inserting nodes at the crossings left by underpasses and flyovers.
This module implements that pipeline for a simple JSON interchange
format so users can bring their own networks:

```json
{
  "nodes": {"n1": [116.38, 39.90], "n2": [116.40, 39.91]},
  "edges": [["n1", "n2", {"class": "primary"}]]
}
```

Edge attributes are optional; ``class`` drives the vehicle filter.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple, Union

from ..errors import WorkloadError
from ..geometry import Point
from ..planar import (
    Edge,
    NodeId,
    PlanarGraph,
    largest_component,
    planarize,
    prune_degree_one,
)

#: Edge classes treated as drivable when filtering (OSM-inspired).
VEHICLE_CLASSES: Set[str] = {
    "motorway",
    "trunk",
    "primary",
    "secondary",
    "tertiary",
    "residential",
    "unclassified",
    "road",
}


def load_road_network(
    path: Union[str, Path],
    vehicle_only: bool = True,
    planarize_crossings: bool = True,
    prune_dead_ends: bool = True,
) -> PlanarGraph:
    """Load a road network from the JSON interchange format.

    Applies the paper's §4.2 pipeline: class filtering, planarization
    (nodes inserted at edge crossings — flyovers become junctions),
    dead-end pruning and restriction to the largest component.
    """
    raw = json.loads(Path(path).read_text())
    return road_network_from_dict(
        raw,
        vehicle_only=vehicle_only,
        planarize_crossings=planarize_crossings,
        prune_dead_ends=prune_dead_ends,
    )


def road_network_from_dict(
    raw: dict,
    vehicle_only: bool = True,
    planarize_crossings: bool = True,
    prune_dead_ends: bool = True,
) -> PlanarGraph:
    """Build a road network from the parsed interchange structure."""
    try:
        node_items = raw["nodes"].items()
        edge_items = raw["edges"]
    except (KeyError, AttributeError, TypeError):
        raise WorkloadError(
            "map data must contain a 'nodes' mapping and an 'edges' list"
        ) from None

    positions: Dict[NodeId, Point] = {}
    for node, coords in node_items:
        if not isinstance(coords, (list, tuple)) or len(coords) != 2:
            raise WorkloadError(f"node {node!r} must map to [x, y]")
        positions[node] = (float(coords[0]), float(coords[1]))

    edges: List[Edge] = []
    for entry in edge_items:
        if len(entry) < 2:
            raise WorkloadError(f"edge entry too short: {entry!r}")
        u, v = entry[0], entry[1]
        attributes = entry[2] if len(entry) > 2 else {}
        if u not in positions or v not in positions:
            raise WorkloadError(f"edge ({u!r}, {v!r}) references unknown node")
        if vehicle_only:
            edge_class = str(attributes.get("class", "road")).lower()
            if edge_class not in VEHICLE_CLASSES:
                continue
        edges.append((u, v))

    if planarize_crossings:
        graph = planarize(positions, edges)
    else:
        graph = PlanarGraph.from_edges(positions, edges)
    largest_component(graph)
    if prune_dead_ends:
        prune_degree_one(graph)
    if graph.node_count < 3:
        raise WorkloadError(
            "road network degenerated below 3 nodes after filtering"
        )
    return graph


def save_road_network(
    graph: PlanarGraph,
    path: Union[str, Path],
    edge_class: str = "road",
) -> None:
    """Write a graph back to the JSON interchange format.

    Node ids are stringified (the format's keys are strings); loading
    the result gives a graph isomorphic to the original.
    """
    nodes = {str(node): list(graph.position(node)) for node in graph.nodes()}
    edges = [
        [str(u), str(v), {"class": edge_class}] for u, v in graph.edges()
    ]
    Path(path).write_text(json.dumps({"nodes": nodes, "edges": edges}))
