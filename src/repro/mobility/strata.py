"""Strata (districts) for stratified sensor sampling (§4.3).

The paper stratifies Beijing by district; synthetically we partition the
domain into Voronoi districts of random seed points (or a regular grid
of rectangular districts).  Assignment is nearest-seed, area weights are
estimated on a dense sample grid — both exactly what the stratified
sampler needs: a label per candidate sensor and a per-stratum weight.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from ..errors import SelectionError
from ..geometry import BBox, Point


@dataclass
class Strata:
    """A labelled partition of the spatial domain.

    ``seeds`` are district centres; point assignment is nearest-seed
    (a Voronoi partition).  ``area_weights`` sums to 1 and drives the
    per-stratum sample allocation function of §4.3 ("the number of
    samples based on the area of each stratum").
    """

    seeds: np.ndarray
    bounds: BBox
    area_weights: np.ndarray

    @property
    def count(self) -> int:
        return len(self.seeds)

    def assign(self, points: Sequence[Point]) -> np.ndarray:
        """Stratum index for each point (nearest district seed)."""
        from scipy.spatial import cKDTree

        if len(points) == 0:
            return np.zeros(0, dtype=int)
        _, labels = cKDTree(self.seeds).query(np.asarray(points, dtype=float))
        return labels.astype(int)

    def assign_one(self, point: Point) -> int:
        return int(self.assign([point])[0])

    def groups(self, points: Sequence[Point]) -> Dict[int, List[int]]:
        """Indices of ``points`` grouped by stratum."""
        labels = self.assign(points)
        grouped: Dict[int, List[int]] = {}
        for index, label in enumerate(labels):
            grouped.setdefault(int(label), []).append(index)
        return grouped


def voronoi_strata(
    bounds: BBox,
    districts: int = 8,
    rng: np.random.Generator | None = None,
    area_sample_grid: int = 64,
) -> Strata:
    """Random Voronoi districts with sample-grid area estimation."""
    if districts < 1:
        raise SelectionError("need at least one district")
    rng = rng or np.random.default_rng(0)
    seeds = np.column_stack(
        [
            rng.uniform(bounds.min_x, bounds.max_x, size=districts),
            rng.uniform(bounds.min_y, bounds.max_y, size=districts),
        ]
    )
    weights = _estimate_area_weights(seeds, bounds, area_sample_grid)
    return Strata(seeds=seeds, bounds=bounds, area_weights=weights)


def grid_strata(bounds: BBox, rows: int = 3, cols: int = 3) -> Strata:
    """Regular rectangular districts (rows x cols)."""
    if rows < 1 or cols < 1:
        raise SelectionError("grid strata need positive rows and cols")
    xs = np.linspace(bounds.min_x, bounds.max_x, 2 * cols + 1)[1::2]
    ys = np.linspace(bounds.min_y, bounds.max_y, 2 * rows + 1)[1::2]
    seeds = np.array([(x, y) for y in ys for x in xs])
    weights = np.full(rows * cols, 1.0 / (rows * cols))
    return Strata(seeds=seeds, bounds=bounds, area_weights=weights)


def _estimate_area_weights(
    seeds: np.ndarray, bounds: BBox, grid_n: int
) -> np.ndarray:
    from scipy.spatial import cKDTree

    axis_x = np.linspace(bounds.min_x, bounds.max_x, grid_n)
    axis_y = np.linspace(bounds.min_y, bounds.max_y, grid_n)
    gx, gy = np.meshgrid(axis_x, axis_y)
    samples = np.column_stack([gx.ravel(), gy.ravel()])
    _, owner = cKDTree(seeds).query(samples)
    counts = np.bincount(owner, minlength=len(seeds)).astype(float)
    total = counts.sum()
    if total == 0:
        raise SelectionError("area estimation failed: empty sample grid")
    return counts / total
