"""The mobility domain: road network + sensing dual + entry topology.

:class:`MobilityDomain` bundles everything the pipeline derives from a
road network once and reuses everywhere:

- the planar mobility graph ``*G`` and its traced faces (city blocks);
- the sensing dual graph ``G`` (one sensor region per block, one
  sensing edge per road, §3.2.3);
- the virtual external junction ``EXT`` behind every boundary junction,
  realising the paper's infinity node ``*v_ext`` (Fig. 8a): objects
  enter and leave the sensed world through it, so their appearance and
  disappearance generate ordinary crossing events;
- spatial lookups (junction kd-tree, junctions-in-rectangle).

Occupancy semantics: a moving object occupies a junction of ``*G`` (its
sensing face in ``G``); moving along a road ``{u, v}`` crosses the dual
sensing edge, recorded as the directed crossing ``(u, v)``.
"""

from __future__ import annotations

import heapq
import math
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..errors import GraphStructureError, QueryError
from ..geometry import BBox, Point
from ..planar import (
    DualGraph,
    EdgeInterner,
    FaceSet,
    NodeId,
    PlanarGraph,
    build_dual,
    trace_faces,
)

#: The virtual external junction (the paper's ``*v_ext``).
EXT: str = "__ext__"

DirectedEdge = Tuple[NodeId, NodeId]

#: Shared empty result of rectangle probes that bound no junctions.
_EMPTY_IDS = np.empty(0, dtype=np.int32)


class MobilityDomain:
    """Immutable bundle of the mobility graph and derived structures."""

    def __init__(self, road_graph: PlanarGraph) -> None:
        if road_graph.node_count < 3:
            raise GraphStructureError("road network too small")
        if not road_graph.is_connected():
            raise GraphStructureError(
                "road network must be connected; use largest_component()"
            )
        self.graph: PlanarGraph = road_graph
        self.faces: FaceSet = trace_faces(road_graph)
        self.dual: DualGraph = build_dual(road_graph, self.faces)

        self.junctions: List[NodeId] = list(road_graph.nodes())
        self._positions = np.array(
            [road_graph.position(n) for n in self.junctions], dtype=float
        )
        self._junction_index = {n: i for i, n in enumerate(self.junctions)}
        from scipy.spatial import cKDTree

        self._tree = cKDTree(self._positions)

        # Sorted-coordinate bbox index: junction indices ordered by x,
        # with the matching x/y coordinate arrays.  Rectangle probes
        # binary-search the x range and mask the y coordinates of that
        # slice only, returning int32 junction-index arrays — the
        # array-native counterpart of :meth:`junctions_in_bbox` used by
        # the compiled query planner.
        order = np.argsort(self._positions[:, 0], kind="stable")
        self._bbox_order = order.astype(np.int32)
        self._bbox_x = np.ascontiguousarray(self._positions[order, 0])
        self._bbox_y = np.ascontiguousarray(self._positions[order, 1])

        self.boundary_junctions: List[NodeId] = self._outer_cycle_nodes()
        self._entry_predecessor = self._boundary_tree()
        self._edge_interner: Optional[EdgeInterner] = None

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def bounds(self) -> BBox:
        return self.graph.bounds()

    @property
    def junction_count(self) -> int:
        return len(self.junctions)

    @property
    def block_count(self) -> int:
        """Number of sensing regions (interior faces / dual nodes)."""
        return len(self.faces.interior_faces)

    @property
    def sensing_edge_count(self) -> int:
        """Sensing edges = roads + boundary (EXT) geofence edges."""
        return self.graph.edge_count + len(self.boundary_junctions)

    def position(self, junction: NodeId) -> Point:
        return self.graph.position(junction)

    @property
    def junction_index(self) -> Dict[NodeId, int]:
        """Junction → dense index into :attr:`junctions` (do not mutate)."""
        return self._junction_index

    def nearest_junction(self, point: Point) -> NodeId:
        _, index = self._tree.query(np.asarray(point, dtype=float))
        return self.junctions[int(index)]

    def junctions_in_bbox(self, box: BBox) -> Set[NodeId]:
        """All junctions whose coordinates fall inside the rectangle."""
        junctions = self.junctions
        return {junctions[i] for i in self.junction_ids_in_bbox(box)}

    def junction_ids_in_bbox(self, box: BBox) -> np.ndarray:
        """Junction *indices* inside the rectangle, ascending ``int32``.

        Indices refer to :attr:`junctions` order.  Served by the
        sorted-coordinate index: two binary searches bound the x range,
        one vectorised mask filters its y coordinates.  Bounds are
        inclusive on every side, exactly like :meth:`junctions_in_bbox`.
        """
        lo = int(np.searchsorted(self._bbox_x, box.min_x, side="left"))
        hi = int(np.searchsorted(self._bbox_x, box.max_x, side="right"))
        if lo >= hi:
            return _EMPTY_IDS
        ys = self._bbox_y[lo:hi]
        hits = self._bbox_order[lo:hi][
            (ys >= box.min_y) & (ys <= box.max_y)
        ]
        hits.sort()
        return hits

    # ------------------------------------------------------------------
    # Sensing-edge topology (including the EXT geofence)
    # ------------------------------------------------------------------
    def sensing_neighbors(self, junction: NodeId) -> Set[NodeId]:
        """Neighbours across sensing edges, including EXT on the rim."""
        if junction == EXT:
            return set(self.boundary_junctions)
        neighbours = self.graph.neighbors(junction)
        if junction in self._boundary_set:
            neighbours.add(EXT)
        return neighbours

    def sensing_edges(self) -> Iterator[Tuple[NodeId, NodeId]]:
        """All undirected sensing edges: roads plus (EXT, rim junction)."""
        yield from self.graph.edges()
        for b in self.boundary_junctions:
            yield (EXT, b)

    @property
    def edge_interner(self) -> EdgeInterner:
        """Interned canonical-edge → dense-id table over sensing edges.

        Built lazily, pre-seeded with every sensing edge (roads + EXT
        geofence) in deterministic iteration order, and shared by the
        columnar event store (:class:`repro.trajectories.EventColumns`)
        and compiled tracking forms so all of them agree on edge ids.
        Unknown edges intern on demand, so synthetic streams over
        non-sensing edges still columnarise.
        """
        if self._edge_interner is None:
            self._edge_interner = EdgeInterner(self.sensing_edges())
        return self._edge_interner

    def inward_boundary_edges(
        self, region: Set[NodeId]
    ) -> List[DirectedEdge]:
        """Directed boundary chain of a junction region, oriented inward.

        For every sensing edge with exactly one endpoint in ``region``,
        yields the direction whose head is inside.  Integrating the
        tracking form over this chain gives Theorems 4.1/4.2/4.3 for
        the region.  ``region`` must not contain EXT.
        """
        if EXT in region:
            raise QueryError("query regions cannot include the EXT node")
        chain: List[DirectedEdge] = []
        for v in region:
            for u in self.graph.neighbors(v):
                if u not in region:
                    chain.append((u, v))
            if v in self._boundary_set:
                chain.append((EXT, v))
        return chain

    # ------------------------------------------------------------------
    # Entry/exit topology (the *v_ext walks)
    # ------------------------------------------------------------------
    def entry_path(self, junction: NodeId) -> List[NodeId]:
        """Walk from EXT into ``junction``: ``[EXT, rim, ..., junction]``.

        This realises "the object enters the sensed world": an object
        appearing at an interior junction is modelled as driving in from
        the nearest domain boundary instantaneously at its start time,
        so every sensing region it ends up inside sees the entry.
        """
        path = [junction]
        current = junction
        while current is not None:
            previous = self._entry_predecessor.get(current)
            if previous is None:
                break
            path.append(previous)
            current = previous
        path.append(EXT)
        path.reverse()
        return path

    def exit_path(self, junction: NodeId) -> List[NodeId]:
        """Walk from ``junction`` out to EXT (reverse of entry)."""
        return list(reversed(self.entry_path(junction)))

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _outer_cycle_nodes(self) -> List[NodeId]:
        outer_id = self.faces.outer_face_id
        if outer_id is None:
            raise GraphStructureError("road network has no outer face")
        cycle = self.faces.faces[outer_id].cycle
        seen: Set[NodeId] = set()
        ordered: List[NodeId] = []
        for node in cycle:
            if node not in seen:
                seen.add(node)
                ordered.append(node)
        self._boundary_set = seen
        return ordered

    def _boundary_tree(self) -> Dict[NodeId, Optional[NodeId]]:
        """Multi-source Dijkstra from the rim: predecessor toward rim."""
        dist: Dict[NodeId, float] = {}
        predecessor: Dict[NodeId, Optional[NodeId]] = {}
        heap: List[Tuple[float, int, NodeId]] = []
        counter = 0
        for b in self.boundary_junctions:
            dist[b] = 0.0
            predecessor[b] = None
            heapq.heappush(heap, (0.0, counter, b))
            counter += 1
        visited: Set[NodeId] = set()
        while heap:
            d, _, node = heapq.heappop(heap)
            if node in visited:
                continue
            visited.add(node)
            for neighbour in self.graph.neighbors(node):
                if neighbour in visited:
                    continue
                nd = d + self.graph.edge_length(node, neighbour)
                if nd < dist.get(neighbour, math.inf):
                    dist[neighbour] = nd
                    predecessor[neighbour] = node
                    counter += 1
                    heapq.heappush(heap, (nd, counter, neighbour))
        missing = set(self.junctions) - set(predecessor)
        if missing:
            raise GraphStructureError(
                f"{len(missing)} junctions unreachable from the domain rim"
            )
        return predecessor

    def __repr__(self) -> str:
        return (
            f"MobilityDomain(junctions={self.junction_count}, "
            f"roads={self.graph.edge_count}, blocks={self.block_count})"
        )
