"""Synthetic road-network (mobility graph ``*G``) generators.

The paper evaluates on the Beijing road network extracted from
OpenStreetMap (§5.1.1).  Offline we synthesise city-like planar road
networks with the structural properties that matter to the framework:

- ``grid_city``: Manhattan-like perturbed grid (the axis-aligned control
  case the paper's dead-space discussion calls out);
- ``radial_city``: ring-and-spoke layout (European-style core);
- ``organic_city``: bounded Voronoi diagram of random seeds — curved
  irregular blocks, the "real-world cities, except Manhattan" case that
  motivates non-axis-aligned subdivision.

All generators return a connected :class:`~repro.planar.PlanarGraph`
with no degree-1 nodes (dead-end streets are pruned so that every face
is a proper city block) spanning roughly ``[0, extent] x [0, extent]``.
"""

from __future__ import annotations

import math
from typing import Dict, List, Tuple

import numpy as np

from ..errors import ConfigurationError
from ..geometry import Point
from ..planar import PlanarGraph, largest_component, planarize, prune_degree_one


def grid_city(
    rows: int = 12,
    cols: int = 12,
    extent: float = 10.0,
    jitter: float = 0.15,
    drop_fraction: float = 0.08,
    rng: np.random.Generator | None = None,
) -> PlanarGraph:
    """A perturbed grid road network.

    ``jitter`` displaces junctions by up to that fraction of the block
    size (0 gives a perfect Manhattan grid); ``drop_fraction`` removes
    random street segments to create larger irregular blocks.
    """
    if rows < 2 or cols < 2:
        raise ConfigurationError("grid_city needs at least a 2x2 grid")
    if not 0 <= drop_fraction < 0.5:
        raise ConfigurationError("drop_fraction must be in [0, 0.5)")
    rng = rng or np.random.default_rng(0)
    dx = extent / (cols - 1)
    dy = extent / (rows - 1)
    positions: Dict[Tuple[int, int], Point] = {}
    for i in range(cols):
        for j in range(rows):
            jx = jy = 0.0
            if 0 < i < cols - 1:
                jx = float(rng.uniform(-jitter, jitter)) * dx
            if 0 < j < rows - 1:
                jy = float(rng.uniform(-jitter, jitter)) * dy
            positions[(i, j)] = (i * dx + jx, j * dy + jy)

    edges: List[Tuple[Tuple[int, int], Tuple[int, int]]] = []
    for i in range(cols):
        for j in range(rows):
            if i < cols - 1:
                edges.append(((i, j), (i + 1, j)))
            if j < rows - 1:
                edges.append(((i, j), (i, j + 1)))

    # Drop interior segments only, never the outer ring, so the graph
    # stays connected with high probability; connectivity is restored by
    # keeping the largest component anyway.
    def _interior(e) -> bool:
        (i1, j1), (i2, j2) = e
        return all(
            0 < i < cols - 1 or 0 < j < rows - 1 for i, j in ((i1, j1), (i2, j2))
        ) and not (
            (i1 in (0, cols - 1) and i2 in (0, cols - 1))
            or (j1 in (0, rows - 1) and j2 in (0, rows - 1))
        )

    interior = [e for e in edges if _interior(e)]
    n_drop = int(len(interior) * drop_fraction)
    if n_drop:
        drop_idx = rng.choice(len(interior), size=n_drop, replace=False)
        dropped = {interior[i] for i in drop_idx}
        edges = [e for e in edges if e not in dropped]

    graph = PlanarGraph.from_edges(positions, edges)
    return _finalise(graph)


def radial_city(
    rings: int = 5,
    spokes: int = 12,
    extent: float = 10.0,
    jitter: float = 0.08,
    rng: np.random.Generator | None = None,
) -> PlanarGraph:
    """A ring-and-spoke road network centred in the domain."""
    if rings < 2 or spokes < 3:
        raise ConfigurationError("radial_city needs >= 2 rings and >= 3 spokes")
    rng = rng or np.random.default_rng(0)
    centre = extent / 2.0
    max_radius = extent * 0.48
    positions: Dict[Tuple[int, int], Point] = {}
    for r in range(1, rings + 1):
        radius = max_radius * r / rings
        for s in range(spokes):
            theta = 2 * math.pi * s / spokes
            theta += float(rng.uniform(-jitter, jitter)) / max(r, 1)
            rad = radius * (1 + float(rng.uniform(-jitter, jitter)))
            positions[(r, s)] = (
                centre + rad * math.cos(theta),
                centre + rad * math.sin(theta),
            )
    positions[(0, 0)] = (centre, centre)

    edges: List[Tuple[Tuple[int, int], Tuple[int, int]]] = []
    for s in range(spokes):
        edges.append(((0, 0), (1, s)))
        for r in range(1, rings):
            edges.append((((r, s)), (r + 1, s)))
    for r in range(1, rings + 1):
        for s in range(spokes):
            edges.append(((r, s), (r, (s + 1) % spokes)))

    graph = PlanarGraph.from_edges(positions, edges)
    return _finalise(graph)


def organic_city(
    blocks: int = 150,
    extent: float = 10.0,
    seed_relaxation: int = 1,
    rng: np.random.Generator | None = None,
) -> PlanarGraph:
    """A Voronoi-cell road network: irregular curved-looking blocks.

    Random seeds (optionally Lloyd-relaxed for more even block sizes)
    are mirrored across the domain edges so every cell of an original
    seed is bounded; the Voronoi ridges become streets.
    """
    if blocks < 4:
        raise ConfigurationError("organic_city needs at least 4 blocks")
    from scipy.spatial import Voronoi

    rng = rng or np.random.default_rng(0)
    seeds = rng.uniform(0.0, extent, size=(blocks, 2))

    for _ in range(max(seed_relaxation, 0)):
        seeds = _lloyd_step(seeds, extent)

    mirrored = np.vstack(
        [
            seeds,
            np.column_stack([-seeds[:, 0], seeds[:, 1]]),
            np.column_stack([2 * extent - seeds[:, 0], seeds[:, 1]]),
            np.column_stack([seeds[:, 0], -seeds[:, 1]]),
            np.column_stack([seeds[:, 0], 2 * extent - seeds[:, 1]]),
        ]
    )
    voronoi = Voronoi(mirrored)

    # Keep ridges where at least one side is an original seed; with the
    # mirror construction all such ridges have finite vertices.
    positions: Dict[int, Point] = {}
    edges: List[Tuple[int, int]] = []
    margin = 1e-9
    for (p1, p2), ridge in zip(voronoi.ridge_points, voronoi.ridge_vertices):
        if p1 >= blocks and p2 >= blocks:
            continue
        if -1 in ridge:
            continue  # unbounded ridge between mirrors; irrelevant
        v1, v2 = ridge
        a = tuple(voronoi.vertices[v1])
        b = tuple(voronoi.vertices[v2])
        if not all(
            -margin <= c <= extent + margin for point in (a, b) for c in point
        ):
            # Clamp tiny numeric spill outside the domain.
            a = (min(max(a[0], 0.0), extent), min(max(a[1], 0.0), extent))
            b = (min(max(b[0], 0.0), extent), min(max(b[1], 0.0), extent))
        positions[v1] = a
        positions[v2] = b
        if v1 != v2:
            edges.append((v1, v2))

    graph = planarize(positions, edges, snap_tolerance=1e-7)
    return _finalise(graph)


def _lloyd_step(seeds: np.ndarray, extent: float) -> np.ndarray:
    """One Lloyd-relaxation step approximated on a sample grid."""
    grid_n = 64
    axis = np.linspace(0, extent, grid_n)
    gx, gy = np.meshgrid(axis, axis)
    samples = np.column_stack([gx.ravel(), gy.ravel()])
    from scipy.spatial import cKDTree

    _, owner = cKDTree(seeds).query(samples)
    new_seeds = seeds.copy()
    for i in range(len(seeds)):
        mine = samples[owner == i]
        if len(mine):
            new_seeds[i] = mine.mean(axis=0)
    return new_seeds


def _finalise(graph: PlanarGraph) -> PlanarGraph:
    """Largest component, dead ends pruned; validates non-emptiness."""
    largest_component(graph)
    prune_degree_one(graph)
    if graph.node_count < 3 or graph.edge_count < 3:
        raise ConfigurationError(
            "generated road network degenerated to fewer than 3 nodes; "
            "increase the size parameters"
        )
    return graph
