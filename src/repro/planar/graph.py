"""Embedded planar graph (straight-line embedding).

The central data structure of the library: an undirected graph whose
nodes carry 2-D coordinates, drawn with straight edges.  The embedding
induces a *rotation system* (the counter-clockwise cyclic order of the
neighbours around each node), from which the faces of the planar
subdivision are traced (:mod:`repro.planar.faces`).

The same class represents the mobility graph ``*G`` (road network), the
sensing graph ``G`` (its dual) and sampled graphs ``G~``.
"""

from __future__ import annotations

import math
from typing import Dict, Hashable, Iterable, Iterator, List, Optional, Set, Tuple

from ..errors import GraphStructureError
from ..geometry import BBox, Point, distance

NodeId = Hashable
Edge = Tuple[NodeId, NodeId]


def canonical_edge(u: NodeId, v: NodeId) -> Edge:
    """Canonical (sorted-by-repr) undirected form of edge ``(u, v)``.

    Node ids may be heterogeneous (ints, strings, tuples); sorting uses
    ``(type-name, repr)`` so ordering is total and deterministic.
    """
    ku = (type(u).__name__, repr(u))
    kv = (type(v).__name__, repr(v))
    return (u, v) if ku <= kv else (v, u)


class EdgeInterner:
    """Bidirectional canonical-edge ↔ dense-integer-id table.

    The columnar event store and the compiled tracking forms address
    edges by a dense ``int32`` id instead of hashing ``(NodeId, NodeId)``
    tuples on every access.  Ids are assigned in interning order, so a
    table pre-seeded from :meth:`MobilityDomain.sensing_edges` is stable
    across runs of the same domain.

    ``intern`` also memoises the *directed* lookup ``(u, v) -> (id,
    forward)`` so the per-event canonicalisation cost (type-name/repr
    comparison) is paid once per distinct directed edge, not per event.
    """

    __slots__ = ("_ids", "_edges", "_directed")

    def __init__(self, edges: Optional[Iterable[Edge]] = None) -> None:
        self._ids: Dict[Edge, int] = {}
        self._edges: List[Edge] = []
        self._directed: Dict[Edge, Tuple[int, bool]] = {}
        if edges is not None:
            for u, v in edges:
                self.intern(u, v)

    def intern(self, u: NodeId, v: NodeId) -> Tuple[int, bool]:
        """Id of edge ``{u, v}`` (assigning one if new) and whether the
        directed edge ``(u, v)`` matches the canonical orientation."""
        cached = self._directed.get((u, v))
        if cached is not None:
            return cached
        key = canonical_edge(u, v)
        edge_id = self._ids.get(key)
        if edge_id is None:
            edge_id = len(self._edges)
            self._ids[key] = edge_id
            self._edges.append(key)
        result = (edge_id, key == (u, v))
        self._directed[(u, v)] = result
        return result

    def id_of(self, u: NodeId, v: NodeId) -> Tuple[int, bool]:
        """Like :meth:`intern` but returns ``(-1, forward)`` for unknown
        edges instead of assigning a new id."""
        cached = self._directed.get((u, v))
        if cached is not None:
            return cached
        key = canonical_edge(u, v)
        edge_id = self._ids.get(key)
        if edge_id is None:
            return (-1, key == (u, v))
        result = (edge_id, key == (u, v))
        self._directed[(u, v)] = result
        return result

    def id_of_canonical(self, key: Edge) -> int:
        """Id of an already-canonical edge, ``-1`` if unknown."""
        return self._ids.get(key, -1)

    def edge(self, edge_id: int) -> Edge:
        """The canonical edge stored under ``edge_id``."""
        return self._edges[edge_id]

    def __len__(self) -> int:
        return len(self._edges)

    def __contains__(self, key: Edge) -> bool:
        return key in self._ids


class PlanarGraph:
    """An undirected graph with a straight-line planar embedding.

    Mutating operations invalidate cached derived structures (rotation
    system, faces); the caches rebuild lazily on next access.
    """

    def __init__(self) -> None:
        self._positions: Dict[NodeId, Point] = {}
        self._adjacency: Dict[NodeId, Set[NodeId]] = {}
        self._rotation_cache: Optional[Dict[NodeId, List[NodeId]]] = None
        self._version = 0

    # ------------------------------------------------------------------
    # Construction / mutation
    # ------------------------------------------------------------------
    def add_node(self, node: NodeId, position: Point) -> None:
        """Add (or move) a node at ``position``."""
        self._positions[node] = (float(position[0]), float(position[1]))
        self._adjacency.setdefault(node, set())
        self._invalidate()

    def add_edge(self, u: NodeId, v: NodeId) -> None:
        """Add the undirected edge ``{u, v}``; both nodes must exist."""
        if u == v:
            raise GraphStructureError(f"self-loop on node {u!r} not allowed")
        for node in (u, v):
            if node not in self._positions:
                raise GraphStructureError(f"unknown node {node!r}")
        self._adjacency[u].add(v)
        self._adjacency[v].add(u)
        self._invalidate()

    def remove_edge(self, u: NodeId, v: NodeId) -> None:
        """Remove the undirected edge ``{u, v}`` if present."""
        self._adjacency.get(u, set()).discard(v)
        self._adjacency.get(v, set()).discard(u)
        self._invalidate()

    def remove_node(self, node: NodeId) -> None:
        """Remove a node and all incident edges."""
        if node not in self._positions:
            return
        for neighbour in list(self._adjacency[node]):
            self._adjacency[neighbour].discard(node)
        del self._adjacency[node]
        del self._positions[node]
        self._invalidate()

    def _invalidate(self) -> None:
        self._rotation_cache = None
        self._version += 1

    @property
    def version(self) -> int:
        """Monotone counter bumped on every mutation (cache keying)."""
        return self._version

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    def __contains__(self, node: NodeId) -> bool:
        return node in self._positions

    @property
    def node_count(self) -> int:
        return len(self._positions)

    @property
    def edge_count(self) -> int:
        return sum(len(adj) for adj in self._adjacency.values()) // 2

    def nodes(self) -> Iterator[NodeId]:
        """Iterate node ids (insertion order)."""
        return iter(self._positions)

    def edges(self) -> Iterator[Edge]:
        """Iterate undirected edges once each, in canonical form."""
        seen: Set[Edge] = set()
        for u, adj in self._adjacency.items():
            for v in adj:
                edge = canonical_edge(u, v)
                if edge not in seen:
                    seen.add(edge)
                    yield edge

    def has_edge(self, u: NodeId, v: NodeId) -> bool:
        return v in self._adjacency.get(u, ())

    def position(self, node: NodeId) -> Point:
        try:
            return self._positions[node]
        except KeyError:
            raise GraphStructureError(f"unknown node {node!r}") from None

    def positions(self) -> Dict[NodeId, Point]:
        """A copy of the node-position mapping."""
        return dict(self._positions)

    def neighbors(self, node: NodeId) -> Set[NodeId]:
        try:
            return set(self._adjacency[node])
        except KeyError:
            raise GraphStructureError(f"unknown node {node!r}") from None

    def degree(self, node: NodeId) -> int:
        return len(self._adjacency.get(node, ()))

    def edge_length(self, u: NodeId, v: NodeId) -> float:
        return distance(self.position(u), self.position(v))

    def bounds(self) -> BBox:
        """Bounding box of all node positions."""
        if not self._positions:
            raise GraphStructureError("bounds of an empty graph")
        return BBox.from_points(self._positions.values())

    def total_edge_length(self) -> float:
        return sum(self.edge_length(u, v) for u, v in self.edges())

    # ------------------------------------------------------------------
    # Rotation system
    # ------------------------------------------------------------------
    def rotation(self, node: NodeId) -> List[NodeId]:
        """Neighbours of ``node`` in counter-clockwise angular order."""
        return self.rotation_system()[node]

    def rotation_system(self) -> Dict[NodeId, List[NodeId]]:
        """The full rotation system, cached until the next mutation."""
        if self._rotation_cache is None:
            system: Dict[NodeId, List[NodeId]] = {}
            for node, adj in self._adjacency.items():
                ox, oy = self._positions[node]
                system[node] = sorted(
                    adj,
                    key=lambda nb: math.atan2(
                        self._positions[nb][1] - oy,
                        self._positions[nb][0] - ox,
                    ),
                )
            self._rotation_cache = system
        return self._rotation_cache

    def next_face_edge(self, u: NodeId, v: NodeId) -> Tuple[NodeId, NodeId]:
        """Successor of directed edge ``(u, v)`` along its face.

        Standard face-tracing rule: at ``v``, leave through the neighbour
        that precedes ``u`` in the counter-clockwise rotation around
        ``v`` (i.e. the next edge clockwise).  Interior faces then come
        out counter-clockwise, the outer face clockwise.
        """
        rotation = self.rotation_system()[v]
        index = rotation.index(u)
        return (v, rotation[index - 1])

    # ------------------------------------------------------------------
    # Algorithms & conversions
    # ------------------------------------------------------------------
    def connected_components(self) -> List[Set[NodeId]]:
        """Connected components as sets of node ids."""
        remaining = set(self._positions)
        components: List[Set[NodeId]] = []
        while remaining:
            start = next(iter(remaining))
            seen = {start}
            stack = [start]
            while stack:
                current = stack.pop()
                for neighbour in self._adjacency[current]:
                    if neighbour not in seen:
                        seen.add(neighbour)
                        stack.append(neighbour)
            components.append(seen)
            remaining -= seen
        return components

    def is_connected(self) -> bool:
        return len(self.connected_components()) <= 1

    def shortest_path(
        self, source: NodeId, target: NodeId
    ) -> Optional[List[NodeId]]:
        """Euclidean-weighted shortest path (Dijkstra), or None."""
        import heapq

        if source not in self._positions or target not in self._positions:
            raise GraphStructureError("shortest_path endpoints must exist")
        if source == target:
            return [source]
        dist: Dict[NodeId, float] = {source: 0.0}
        prev: Dict[NodeId, NodeId] = {}
        counter = 0
        heap: List[Tuple[float, int, NodeId]] = [(0.0, counter, source)]
        visited: Set[NodeId] = set()
        while heap:
            d, _, node = heapq.heappop(heap)
            if node in visited:
                continue
            if node == target:
                break
            visited.add(node)
            for neighbour in self._adjacency[node]:
                if neighbour in visited:
                    continue
                nd = d + self.edge_length(node, neighbour)
                if nd < dist.get(neighbour, math.inf):
                    dist[neighbour] = nd
                    prev[neighbour] = node
                    counter += 1
                    heapq.heappush(heap, (nd, counter, neighbour))
        if target not in dist:
            return None
        path = [target]
        while path[-1] != source:
            path.append(prev[path[-1]])
        path.reverse()
        return path

    def dijkstra_tree(
        self, source: NodeId
    ) -> Tuple[Dict[NodeId, float], Dict[NodeId, NodeId]]:
        """Full single-source shortest-path tree (Euclidean weights).

        Returns ``(distance, predecessor)`` maps; the source has no
        predecessor entry.  Used by workload generators that plan many
        trips from the same origin.
        """
        import heapq

        if source not in self._positions:
            raise GraphStructureError(f"unknown node {source!r}")
        dist: Dict[NodeId, float] = {source: 0.0}
        prev: Dict[NodeId, NodeId] = {}
        counter = 0
        heap: List[Tuple[float, int, NodeId]] = [(0.0, counter, source)]
        visited: Set[NodeId] = set()
        positions = self._positions
        while heap:
            d, _, node = heapq.heappop(heap)
            if node in visited:
                continue
            visited.add(node)
            nx_, ny_ = positions[node]
            for neighbour in self._adjacency[node]:
                if neighbour in visited:
                    continue
                px, py = positions[neighbour]
                nd = d + math.hypot(px - nx_, py - ny_)
                if nd < dist.get(neighbour, math.inf):
                    dist[neighbour] = nd
                    prev[neighbour] = node
                    counter += 1
                    heapq.heappush(heap, (nd, counter, neighbour))
        return dist, prev

    def path_from_tree(
        self,
        source: NodeId,
        target: NodeId,
        predecessor: Dict[NodeId, NodeId],
    ) -> Optional[List[NodeId]]:
        """Reconstruct a path from a :meth:`dijkstra_tree` predecessor map."""
        if target == source:
            return [source]
        if target not in predecessor:
            return None
        path = [target]
        while path[-1] != source:
            path.append(predecessor[path[-1]])
        path.reverse()
        return path

    def to_networkx(self):
        """Export as a ``networkx.Graph`` with ``pos`` node attributes
        and ``length`` edge attributes."""
        import networkx as nx

        graph = nx.Graph()
        for node, pos in self._positions.items():
            graph.add_node(node, pos=pos)
        for u, v in self.edges():
            graph.add_edge(u, v, length=self.edge_length(u, v))
        return graph

    @classmethod
    def from_edges(
        cls,
        positions: Dict[NodeId, Point],
        edges: Iterable[Edge],
    ) -> "PlanarGraph":
        """Build a graph from a position map and an edge list."""
        graph = cls()
        for node, pos in positions.items():
            graph.add_node(node, pos)
        for u, v in edges:
            graph.add_edge(u, v)
        return graph

    def copy(self) -> "PlanarGraph":
        """Deep copy (positions and adjacency)."""
        clone = PlanarGraph()
        clone._positions = dict(self._positions)
        clone._adjacency = {n: set(a) for n, a in self._adjacency.items()}
        return clone

    def __repr__(self) -> str:
        return (
            f"PlanarGraph(nodes={self.node_count}, edges={self.edge_count})"
        )
