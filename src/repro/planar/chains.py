"""Chains and the discrete boundary operator (§3.4 of the paper).

A *k-chain* is a formal sum of oriented k-cells with integer weights.
The library uses 1-chains (directed edges) to express face perimeters
and region boundaries: the boundary of a union of faces is the 1-chain
in which interior shared edges cancel because the two adjacent faces
traverse them in opposite directions.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Set, Tuple

from ..errors import PlanarityError
from .faces import DirectedEdge, FaceSet
from .graph import NodeId


@dataclass
class Chain:
    """A 1-chain: integer multiset of directed edges.

    Orientation reversal negates the coefficient, mirroring the
    differential-form identity ``ξ(-e) = -ξ(e)``: adding ``(u, v)`` and
    ``(v, u)`` cancels.
    """

    _coefficients: Dict[DirectedEdge, int] = field(default_factory=dict)

    @classmethod
    def from_edges(cls, edges: Iterable[DirectedEdge]) -> "Chain":
        chain = cls()
        for edge in edges:
            chain.add(edge)
        return chain

    def add(self, edge: DirectedEdge, weight: int = 1) -> None:
        """Add ``weight`` copies of the directed edge (may cancel)."""
        u, v = edge
        if u == v:
            raise PlanarityError("chains cannot contain self-loops")
        reverse = (v, u)
        if reverse in self._coefficients:
            self._coefficients[reverse] -= weight
            if self._coefficients[reverse] == 0:
                del self._coefficients[reverse]
            elif self._coefficients[reverse] < 0:
                self._coefficients[edge] = -self._coefficients.pop(reverse)
            return
        self._coefficients[edge] = self._coefficients.get(edge, 0) + weight
        if self._coefficients[edge] == 0:
            del self._coefficients[edge]

    def coefficient(self, edge: DirectedEdge) -> int:
        """Signed coefficient of the directed edge in this chain."""
        u, v = edge
        if edge in self._coefficients:
            return self._coefficients[edge]
        return -self._coefficients.get((v, u), 0)

    def __iter__(self) -> Iterator[Tuple[DirectedEdge, int]]:
        return iter(self._coefficients.items())

    def __len__(self) -> int:
        return len(self._coefficients)

    def __add__(self, other: "Chain") -> "Chain":
        result = Chain(dict(self._coefficients))
        for edge, weight in other:
            result.add(edge, weight)
        return result

    def __neg__(self) -> "Chain":
        return Chain({(v, u): w for (u, v), w in self._coefficients.items()})

    def edges(self) -> List[DirectedEdge]:
        """Directed edges with non-zero coefficient (sign-resolved)."""
        return list(self._coefficients)

    def nodes(self) -> Set[NodeId]:
        """All nodes touched by the chain."""
        found: Set[NodeId] = set()
        for u, v in self._coefficients:
            found.add(u)
            found.add(v)
        return found

    def is_cycle(self) -> bool:
        """True when every node has equal in- and out-degree.

        Boundaries of regions are always cycles (possibly several
        disjoint loops).
        """
        balance: Counter = Counter()
        for (u, v), weight in self._coefficients.items():
            balance[u] -= weight
            balance[v] += weight
        return all(value == 0 for value in balance.values())


def face_boundary(faces: FaceSet, face_id: int) -> Chain:
    """∂ of a single face: its oriented perimeter walk as a 1-chain."""
    try:
        face = faces.faces[face_id]
    except IndexError:
        raise PlanarityError(f"unknown face id {face_id}") from None
    return Chain.from_edges(face.boundary_edges())


def region_boundary(faces: FaceSet, face_ids: Iterable[int]) -> Chain:
    """∂ of a union of faces.

    Interior edges (shared by two selected faces) cancel; what remains
    is the oriented perimeter of the region — exactly the set of edges
    whose differential forms must be aggregated to answer a range count
    query on the region (§4.7).
    """
    chain = Chain()
    selected = set(face_ids)
    for face_id in selected:
        for edge in faces.faces[face_id].boundary_edges():
            chain.add(edge)
    return chain


def region_perimeter_nodes(faces: FaceSet, face_ids: Iterable[int]) -> Set[NodeId]:
    """Nodes on the perimeter of a union of faces.

    These are the sensors that must be contacted to answer a query on
    the region (the paper's communication-cost proxy, §4.9).
    """
    return region_boundary(faces, face_ids).nodes()
