"""Planarization: turn a drawn graph into a planar embedded graph.

Used when constructing planar mobility graphs from raw map data
(§4.2: "we generate the planarized graph by removing intersections from
underpasses and flyovers by inserting nodes at the intersections") and
as a safety net for generated graphs whose straight-line drawing may
contain crossings.

Edges are split at every pairwise proper intersection; intersection
points closer than a snapping tolerance are merged into a single node.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, List, Tuple

from ..geometry import (
    BBox,
    Point,
    Segment,
    SpatialGrid,
    distance,
    points_equal,
    proper_intersection,
)
from .graph import Edge, NodeId, PlanarGraph


def planarize(
    positions: Dict[NodeId, Point],
    edges: Iterable[Edge],
    snap_tolerance: float = 1e-7,
) -> PlanarGraph:
    """Build a planar graph, inserting nodes at edge crossings.

    New intersection nodes get ids ``("x", k)`` for consecutive ``k``;
    callers relying on node-id types should treat ids as opaque.
    Duplicate edges collapse; edges that become self-loops after
    snapping are dropped.
    """
    edge_list: List[Edge] = []
    seen = set()
    for u, v in edges:
        key = frozenset((u, v))
        if u == v or key in seen:
            continue
        seen.add(key)
        edge_list.append((u, v))

    if not edge_list:
        graph = PlanarGraph()
        for node, pos in positions.items():
            graph.add_node(node, pos)
        return graph

    bounds = BBox.from_points(positions.values())
    grid: SpatialGrid[int] = SpatialGrid.for_items(bounds, max(len(edge_list), 1))
    segments: List[Segment] = []
    for index, (u, v) in enumerate(edge_list):
        segment = Segment(positions[u], positions[v])
        segments.append(segment)
        grid.insert(index, BBox.from_points([segment.start, segment.end]))

    # Collect proper intersections per edge.
    cut_points: Dict[int, List[Point]] = defaultdict(list)
    fresh_nodes: List[Tuple[NodeId, Point]] = []

    def _node_for(point: Point) -> NodeId:
        for node, pos in fresh_nodes:
            if distance(pos, point) <= snap_tolerance:
                return node
        node = ("x", len(fresh_nodes))
        fresh_nodes.append((node, point))
        return node

    checked = set()
    for index, segment in enumerate(segments):
        box = BBox.from_points([segment.start, segment.end])
        for other in grid.query_bbox(box):
            if other <= index:
                continue
            pair = (index, other)
            if pair in checked:
                continue
            checked.add(pair)
            point = proper_intersection(segment, segments[other])
            if point is None:
                continue
            node = _node_for(point)
            cut_points[index].append(point)
            cut_points[other].append(point)
            _ = node  # the node id is re-derived during splitting below

    graph = PlanarGraph()
    for node, pos in positions.items():
        graph.add_node(node, pos)
    for node, pos in fresh_nodes:
        graph.add_node(node, pos)

    def _snap(point: Point) -> NodeId:
        for node, pos in fresh_nodes:
            if distance(pos, point) <= snap_tolerance:
                return node
        raise AssertionError("intersection point lost during snapping")

    for index, (u, v) in enumerate(edge_list):
        cuts = cut_points.get(index)
        if not cuts:
            graph.add_edge(u, v)
            continue
        start = positions[u]
        ordered = sorted(set(cuts), key=lambda p: distance(start, p))
        previous: NodeId = u
        prev_pos = start
        for point in ordered:
            node = _snap(point)
            if node != previous and not points_equal(prev_pos, point):
                graph.add_edge(previous, node)
                previous = node
                prev_pos = point
        if previous != v:
            graph.add_edge(previous, v)
    return graph


def prune_degree_one(graph: PlanarGraph) -> PlanarGraph:
    """Iteratively remove dead-end (degree <= 1) nodes.

    Road networks keep dead-end streets out of the sensing subdivision:
    a dead end contributes a zero-area spike to its containing face.
    Returns the same graph object for chaining.
    """
    changed = True
    while changed:
        changed = False
        for node in list(graph.nodes()):
            if graph.degree(node) <= 1:
                graph.remove_node(node)
                changed = True
    return graph


def largest_component(graph: PlanarGraph) -> PlanarGraph:
    """Restrict the graph to its largest connected component (in place)."""
    components = graph.connected_components()
    if len(components) <= 1:
        return graph
    keep = max(components, key=len)
    for node in list(graph.nodes()):
        if node not in keep:
            graph.remove_node(node)
    return graph
