"""Planar graphs and cell complexes (system S2 in DESIGN.md).

Embedded planar graphs with rotation systems, face tracing (2-cells),
chains with the discrete boundary operator, dual-graph construction
(mobility graph <-> sensing graph duality, §3.2 of the paper) and
planarization of drawn graphs.
"""

from .chains import Chain, face_boundary, region_boundary, region_perimeter_nodes
from .dual import DualGraph, build_dual
from .faces import Face, FaceSet, euler_characteristic, trace_faces
from .graph import Edge, EdgeInterner, NodeId, PlanarGraph, canonical_edge
from .planarize import largest_component, planarize, prune_degree_one

__all__ = [
    "Chain",
    "DualGraph",
    "Edge",
    "EdgeInterner",
    "Face",
    "FaceSet",
    "NodeId",
    "PlanarGraph",
    "build_dual",
    "canonical_edge",
    "euler_characteristic",
    "face_boundary",
    "largest_component",
    "planarize",
    "prune_degree_one",
    "region_boundary",
    "region_perimeter_nodes",
    "trace_faces",
]
