"""Dual graph of an embedded planar graph.

The sensing graph ``G`` is constructed as the dual of the mobility graph
``*G`` (§3.2.3): one sensor (dual node) per face of ``*G`` — a city
block when ``*G`` is a road network — and one dual (sensing) edge per
primal edge, connecting the two blocks the road separates.  A moving
object travelling along primal edge ``*e`` crosses the dual edge ``e``
(vertex-edge duality, §4.7.1), which is where the differential forms
live.

Two faces can share several primal edges, so the dual is a multigraph at
heart; the class keeps the exact primal-edge <-> dual-edge bijection and
additionally exposes a simple weighted adjacency (used for shortest-path
routing of sampled-graph edges, §4.5) in which parallel dual edges are
collapsed to the representative with the shortest crossing.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..errors import GraphStructureError, PlanarityError
from ..geometry import Point, distance
from .faces import FaceSet, trace_faces
from .graph import Edge, NodeId, PlanarGraph, canonical_edge


@dataclass
class DualGraph:
    """Dual of a planar graph, with the primal retained.

    Dual node ids are primal face ids (ints).  The outer face is a
    legitimate dual node — the paper's infinity node ``*v_ext`` that
    sources and sinks objects entering or leaving the domain.
    """

    primal: PlanarGraph
    primal_faces: FaceSet
    node_positions: Dict[int, Point]
    outer_node: Optional[int]
    #: canonical primal edge -> (face left of (u,v), face left of (v,u))
    edge_faces: Dict[Edge, Tuple[int, int]]
    #: collapsed weighted adjacency: face -> {face: (weight, primal edge)}
    _adjacency: Dict[int, Dict[int, Tuple[float, Edge]]] = field(repr=False)

    # ------------------------------------------------------------------
    @property
    def node_count(self) -> int:
        return len(self.node_positions)

    @property
    def interior_nodes(self) -> List[int]:
        """Dual nodes excluding the infinity node."""
        return [n for n in self.node_positions if n != self.outer_node]

    def position(self, node: int) -> Point:
        try:
            return self.node_positions[node]
        except KeyError:
            raise GraphStructureError(f"unknown dual node {node!r}") from None

    def faces_of_primal_edge(self, u: NodeId, v: NodeId) -> Tuple[int, int]:
        """Dual endpoints (faces) separated by primal edge ``{u, v}``."""
        edge = canonical_edge(u, v)
        try:
            return self.edge_faces[edge]
        except KeyError:
            raise GraphStructureError(f"unknown primal edge {edge!r}") from None

    def is_bridge(self, u: NodeId, v: NodeId) -> bool:
        """True when the primal edge has the same face on both sides."""
        a, b = self.faces_of_primal_edge(u, v)
        return a == b

    def neighbors(self, node: int) -> Set[int]:
        return set(self._adjacency.get(node, ()))

    def mean_interior_edge_length(self) -> float:
        """Mean Euclidean length of interior dual edges (cached).

        The shared hop-length statistic of the communication modules:
        both :class:`repro.network.NetworkSimulator` and
        :class:`repro.network.EnergyModel` convert Euclidean distances
        into hop counts / per-hop energies using this value, so the two
        accountings cannot drift.  Bridges (same face on both sides)
        and edges touching the infinity node are excluded; degenerate
        duals fall back to 1.0.
        """
        cached = getattr(self, "_mean_interior_edge_length", None)
        if cached is None:
            total, count = 0.0, 0
            for left, right in self.edge_faces.values():
                if left == right or self.outer_node in (left, right):
                    continue
                total += distance(
                    self.node_positions[left], self.node_positions[right]
                )
                count += 1
            cached = (total / count) if count else 1.0
            self._mean_interior_edge_length = cached
        return cached

    def crossing_edge(self, a: int, b: int) -> Edge:
        """Representative primal edge crossed when moving face a -> b."""
        try:
            return self._adjacency[a][b][1]
        except KeyError:
            raise GraphStructureError(
                f"dual nodes {a!r} and {b!r} are not adjacent"
            ) from None

    # ------------------------------------------------------------------
    def shortest_path(
        self, source: int, target: int, forbidden: Optional[Set[int]] = None
    ) -> Optional[Tuple[List[int], List[Edge]]]:
        """Shortest dual path between two faces.

        Returns ``(face sequence, primal edges crossed)`` or None when
        unreachable.  ``forbidden`` excludes intermediate dual nodes
        (typically the infinity node, so sampled-graph edges are routed
        through the domain rather than around it).
        """
        if source not in self.node_positions or target not in self.node_positions:
            raise GraphStructureError("shortest_path endpoints must exist")
        blocked = forbidden or set()
        if source in blocked or target in blocked:
            raise GraphStructureError("endpoints may not be forbidden")
        if source == target:
            return ([source], [])

        dist: Dict[int, float] = {source: 0.0}
        prev: Dict[int, int] = {}
        heap: List[Tuple[float, int]] = [(0.0, source)]
        visited: Set[int] = set()
        while heap:
            d, node = heapq.heappop(heap)
            if node in visited:
                continue
            if node == target:
                break
            visited.add(node)
            for neighbour, (weight, _) in self._adjacency.get(node, {}).items():
                if neighbour in visited or neighbour in blocked:
                    continue
                nd = d + weight
                if nd < dist.get(neighbour, math.inf):
                    dist[neighbour] = nd
                    prev[neighbour] = node
                    heapq.heappush(heap, (nd, neighbour))
        if target not in dist:
            return None
        faces = [target]
        while faces[-1] != source:
            faces.append(prev[faces[-1]])
        faces.reverse()
        crossings = [
            self._adjacency[a][b][1] for a, b in zip(faces, faces[1:])
        ]
        return (faces, crossings)


def build_dual(
    primal: PlanarGraph, faces: Optional[FaceSet] = None
) -> DualGraph:
    """Construct the dual graph of an embedded planar graph.

    Interior dual nodes are placed at a representative interior point of
    their face; the infinity node is placed just outside the primal
    bounding box (its position only matters for visualisation).
    """
    if faces is None:
        faces = trace_faces(primal)
    if not faces.interior_faces:
        raise PlanarityError("cannot build a dual: no interior faces")

    positions: Dict[int, Point] = {}
    for face in faces.faces:
        if face.is_outer:
            continue
        positions[face.id] = face.interior_point()
    outer_node = faces.outer_face_id
    if outer_node is not None:
        box = primal.bounds()
        positions[outer_node] = (
            box.max_x + 0.25 * max(box.width, 1.0),
            (box.min_y + box.max_y) / 2.0,
        )

    edge_faces: Dict[Edge, Tuple[int, int]] = {}
    adjacency: Dict[int, Dict[int, Tuple[float, Edge]]] = {
        node: {} for node in positions
    }
    for u, v in primal.edges():
        left = faces.face_of_edge(u, v).id
        right = faces.face_of_edge(v, u).id
        edge = canonical_edge(u, v)
        edge_faces[edge] = (left, right)
        if left == right:
            continue  # bridge: no dual connectivity through it
        weight = distance(positions[left], positions[right])
        existing = adjacency[left].get(right)
        if existing is None or weight < existing[0]:
            adjacency[left][right] = (weight, edge)
            adjacency[right][left] = (weight, edge)

    return DualGraph(
        primal=primal,
        primal_faces=faces,
        node_positions=positions,
        outer_node=outer_node,
        edge_faces=edge_faces,
        _adjacency=adjacency,
    )
