"""Face extraction for embedded planar graphs.

Faces (2-cells of the induced cell complex, §3.4 of the paper) are traced
from the rotation system: every directed edge belongs to exactly one face
walk, and following :meth:`PlanarGraph.next_face_edge` from any directed
edge closes the walk of its face.  With the counter-clockwise convention
interior faces have positive signed area and the single unbounded (outer)
face has negative signed area — the outer face plays the role of the
infinity node's region (``*v_ext`` in Fig. 8a of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..errors import PlanarityError
from ..geometry import (
    BBox,
    Point,
    SpatialGrid,
    point_in_polygon,
    representative_point,
    signed_area,
)
from .graph import NodeId, PlanarGraph

DirectedEdge = Tuple[NodeId, NodeId]


@dataclass(frozen=True)
class Face:
    """One face of a planar subdivision.

    ``cycle`` is the node walk bounding the face, oriented so that the
    face lies to the left (counter-clockwise for interior faces).  For
    graphs with bridges a node may repeat within the walk.
    """

    id: int
    cycle: Tuple[NodeId, ...]
    polygon: Tuple[Point, ...]
    signed_area: float
    is_outer: bool

    @property
    def area(self) -> float:
        """Absolute enclosed area (0 for fully degenerate walks)."""
        return abs(self.signed_area)

    def boundary_edges(self) -> List[DirectedEdge]:
        """The directed boundary walk as a 1-chain of directed edges.

        This is the discrete boundary operator ``∂`` applied to the face
        (Fig. 3b of the paper): integrating a differential 1-form over
        these edges yields the form's value on the face.
        """
        n = len(self.cycle)
        return [(self.cycle[i], self.cycle[(i + 1) % n]) for i in range(n)]

    def interior_point(self) -> Point:
        """A point strictly inside the face (outer face unsupported)."""
        if self.is_outer:
            raise PlanarityError("the outer face has no interior point")
        return representative_point(list(self.polygon))


@dataclass
class FaceSet:
    """All faces of a planar graph plus directed-edge -> face lookup."""

    faces: List[Face]
    edge_face: Dict[DirectedEdge, int]
    outer_face_id: Optional[int]
    _locator: Optional[SpatialGrid] = field(default=None, repr=False)

    @property
    def interior_faces(self) -> List[Face]:
        return [f for f in self.faces if not f.is_outer]

    def face_of_edge(self, u: NodeId, v: NodeId) -> Face:
        """The face lying to the left of directed edge ``(u, v)``."""
        try:
            return self.faces[self.edge_face[(u, v)]]
        except KeyError:
            raise PlanarityError(f"directed edge ({u!r}, {v!r}) unknown") from None

    def adjacent_faces(self, u: NodeId, v: NodeId) -> Tuple[Face, Face]:
        """The two faces separated by undirected edge ``{u, v}``.

        Returned as ``(left-of-(u,v), left-of-(v,u))``; they coincide for
        bridge edges.
        """
        return (self.face_of_edge(u, v), self.face_of_edge(v, u))

    def locate(self, point: Point) -> Optional[Face]:
        """The interior face containing ``point``, or None (outer face).

        Uses a spatial-grid prefilter over face bounding boxes and an
        exact point-in-polygon test.
        """
        if self._locator is None:
            self._build_locator()
        assert self._locator is not None
        for face_id in self._locator.query_point(point):
            face = self.faces[face_id]
            if point_in_polygon(point, face.polygon):
                return face
        return None

    def _build_locator(self) -> None:
        interior = self.interior_faces
        if not interior:
            raise PlanarityError("graph has no interior faces to locate in")
        all_points = [p for f in interior for p in f.polygon]
        grid: SpatialGrid = SpatialGrid.for_items(
            BBox.from_points(all_points), len(interior)
        )
        for face in interior:
            grid.insert(face.id, BBox.from_points(face.polygon))
        self._locator = grid

    def total_interior_area(self) -> float:
        return sum(f.area for f in self.interior_faces)


def trace_faces(graph: PlanarGraph) -> FaceSet:
    """Trace every face of ``graph`` from its rotation system.

    Requires a connected graph with at least one cycle (otherwise only
    the degenerate outer walk exists).  For a valid straight-line planar
    embedding the result satisfies Euler's formula
    ``V - E + F = 2`` (per connected component).
    """
    visited: Set[DirectedEdge] = set()
    faces: List[Face] = []
    edge_face: Dict[DirectedEdge, int] = {}

    for u, v in list(graph.edges()):
        for start in ((u, v), (v, u)):
            if start in visited:
                continue
            walk: List[NodeId] = []
            current = start
            while current not in visited:
                visited.add(current)
                walk.append(current[0])
                current = graph.next_face_edge(*current)
            if current != start:
                raise PlanarityError(
                    "face walk did not close; embedding is inconsistent"
                )
            polygon = tuple(graph.position(node) for node in walk)
            area = signed_area(polygon)
            face = Face(
                id=len(faces),
                cycle=tuple(walk),
                polygon=polygon,
                signed_area=area,
                is_outer=False,  # fixed below
            )
            faces.append(face)
            n = len(walk)
            for i in range(n):
                edge_face[(walk[i], walk[(i + 1) % n])] = face.id

    outer_id = _identify_outer_face(faces)
    if outer_id is not None:
        outer = faces[outer_id]
        faces[outer_id] = Face(
            id=outer.id,
            cycle=outer.cycle,
            polygon=outer.polygon,
            signed_area=outer.signed_area,
            is_outer=True,
        )
    return FaceSet(faces=faces, edge_face=edge_face, outer_face_id=outer_id)


def _identify_outer_face(faces: Sequence[Face]) -> Optional[int]:
    """The outer face is the one traced clockwise (most negative area)."""
    if not faces:
        return None
    outer_id = min(range(len(faces)), key=lambda i: faces[i].signed_area)
    if faces[outer_id].signed_area > 0:
        return None  # no clockwise walk: not a proper embedding
    return outer_id


def euler_characteristic(graph: PlanarGraph, faces: FaceSet) -> int:
    """``V - E + F``; equals 2 for a connected planar embedding."""
    return graph.node_count - graph.edge_count + len(faces.faces)
