"""Axis-aligned bounding boxes.

Used to express rectangular spatial query ranges (§5.1.5 of the paper)
and as a cheap filter before exact polygon tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Tuple

from ..errors import GeometryError
from .primitives import Point


@dataclass(frozen=True)
class BBox:
    """An axis-aligned rectangle ``[min_x, max_x] x [min_y, max_y]``."""

    min_x: float
    min_y: float
    max_x: float
    max_y: float

    def __post_init__(self) -> None:
        if self.min_x > self.max_x or self.min_y > self.max_y:
            raise GeometryError(
                f"inverted bbox: ({self.min_x}, {self.min_y}, "
                f"{self.max_x}, {self.max_y})"
            )

    @classmethod
    def from_points(cls, points: Iterable[Point]) -> "BBox":
        """Smallest bbox containing every point; raises on empty input."""
        iterator = iter(points)
        try:
            first = next(iterator)
        except StopIteration:
            raise GeometryError("cannot build a bbox from zero points")
        min_x = max_x = first[0]
        min_y = max_y = first[1]
        for x, y in iterator:
            min_x = min(min_x, x)
            max_x = max(max_x, x)
            min_y = min(min_y, y)
            max_y = max(max_y, y)
        return cls(min_x, min_y, max_x, max_y)

    @classmethod
    def from_center(cls, center: Point, width: float, height: float) -> "BBox":
        """Bbox of the given dimensions centred on ``center``."""
        if width < 0 or height < 0:
            raise GeometryError("bbox dimensions must be non-negative")
        cx, cy = center
        return cls(cx - width / 2, cy - height / 2, cx + width / 2, cy + height / 2)

    @property
    def width(self) -> float:
        return self.max_x - self.min_x

    @property
    def height(self) -> float:
        return self.max_y - self.min_y

    @property
    def area(self) -> float:
        return self.width * self.height

    @property
    def center(self) -> Point:
        return ((self.min_x + self.max_x) / 2, (self.min_y + self.max_y) / 2)

    def contains_point(self, point: Point, eps: float = 0.0) -> bool:
        """True when the point lies inside (boundary inclusive)."""
        x, y = point
        return (
            self.min_x - eps <= x <= self.max_x + eps
            and self.min_y - eps <= y <= self.max_y + eps
        )

    def contains_bbox(self, other: "BBox") -> bool:
        """True when ``other`` lies entirely inside this bbox."""
        return (
            self.min_x <= other.min_x
            and self.min_y <= other.min_y
            and self.max_x >= other.max_x
            and self.max_y >= other.max_y
        )

    def intersects(self, other: "BBox") -> bool:
        """True when the two boxes share at least a boundary point."""
        return not (
            self.max_x < other.min_x
            or other.max_x < self.min_x
            or self.max_y < other.min_y
            or other.max_y < self.min_y
        )

    def intersection(self, other: "BBox") -> "BBox | None":
        """The overlapping box, or None when disjoint."""
        if not self.intersects(other):
            return None
        return BBox(
            max(self.min_x, other.min_x),
            max(self.min_y, other.min_y),
            min(self.max_x, other.max_x),
            min(self.max_y, other.max_y),
        )

    def expanded(self, margin: float) -> "BBox":
        """A copy grown by ``margin`` on every side."""
        return BBox(
            self.min_x - margin,
            self.min_y - margin,
            self.max_x + margin,
            self.max_y + margin,
        )

    def corners(self) -> Tuple[Point, Point, Point, Point]:
        """Corners in counter-clockwise order starting at (min_x, min_y)."""
        return (
            (self.min_x, self.min_y),
            (self.max_x, self.min_y),
            (self.max_x, self.max_y),
            (self.min_x, self.max_y),
        )

    def __iter__(self) -> Iterator[float]:
        yield self.min_x
        yield self.min_y
        yield self.max_x
        yield self.max_y
