"""Basic geometric primitives: points, segments and distances.

Points are plain ``(x, y)`` tuples of floats throughout the library; the
:class:`Point` alias documents intent.  A light-weight :class:`Segment`
wrapper carries the pair of endpoints together with convenience methods
used by the planar-graph and crossing-detection code.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Tuple

from ..errors import GeometryError

Point = Tuple[float, float]

#: Tolerance used by approximate geometric comparisons.  Coordinates in
#: this library are normalised to roughly unit scale, so an absolute
#: epsilon is appropriate.
EPSILON = 1e-9


def almost_equal(a: float, b: float, eps: float = EPSILON) -> bool:
    """Return True when two scalars differ by less than ``eps``."""
    return abs(a - b) < eps


def points_equal(p: Point, q: Point, eps: float = EPSILON) -> bool:
    """Return True when two points coincide within ``eps`` per coordinate."""
    return abs(p[0] - q[0]) < eps and abs(p[1] - q[1]) < eps


def distance(p: Point, q: Point) -> float:
    """Euclidean distance between two points."""
    return math.hypot(p[0] - q[0], p[1] - q[1])


def squared_distance(p: Point, q: Point) -> float:
    """Squared Euclidean distance (cheaper when only comparing)."""
    dx = p[0] - q[0]
    dy = p[1] - q[1]
    return dx * dx + dy * dy


def midpoint(p: Point, q: Point) -> Point:
    """Midpoint of the segment ``pq``."""
    return ((p[0] + q[0]) / 2.0, (p[1] + q[1]) / 2.0)


def lerp(p: Point, q: Point, t: float) -> Point:
    """Linear interpolation between ``p`` (t=0) and ``q`` (t=1)."""
    return (p[0] + (q[0] - p[0]) * t, p[1] + (q[1] - p[1]) * t)


def angle_of(origin: Point, target: Point) -> float:
    """Angle of the vector ``origin -> target`` in ``(-pi, pi]``."""
    return math.atan2(target[1] - origin[1], target[0] - origin[0])


@dataclass(frozen=True)
class Segment:
    """A directed line segment between two points.

    The direction matters for crossing-sign computations: a moving object
    crossing the segment from its left half-plane to its right half-plane
    has a positive crossing sign.
    """

    start: Point
    end: Point

    def __post_init__(self) -> None:
        if points_equal(self.start, self.end):
            raise GeometryError(
                f"degenerate segment: both endpoints are {self.start}"
            )

    @property
    def length(self) -> float:
        """Euclidean length of the segment."""
        return distance(self.start, self.end)

    @property
    def midpoint(self) -> Point:
        """Midpoint of the segment."""
        return midpoint(self.start, self.end)

    def reversed(self) -> "Segment":
        """The same segment with opposite direction."""
        return Segment(self.end, self.start)

    def point_at(self, t: float) -> Point:
        """Point at parameter ``t`` (0 = start, 1 = end)."""
        return lerp(self.start, self.end, t)

    def bounding_box(self) -> Tuple[float, float, float, float]:
        """``(min_x, min_y, max_x, max_y)`` of the segment."""
        (x1, y1), (x2, y2) = self.start, self.end
        return (min(x1, x2), min(y1, y2), max(x1, x2), max(y1, y2))


def polyline_length(points: Iterable[Point]) -> float:
    """Total length of a polyline given as an iterable of points."""
    total = 0.0
    previous = None
    for point in points:
        if previous is not None:
            total += distance(previous, point)
        previous = point
    return total
