"""Convex hull (Andrew's monotone chain).

Used when seeding the query-adaptive region growth and as a helper for
tests that need a guaranteed-simple polygon around sampled points.
"""

from __future__ import annotations

from typing import List, Sequence

from ..errors import GeometryError
from .primitives import Point
from .predicates import cross


def convex_hull(points: Sequence[Point]) -> List[Point]:
    """Convex hull in counter-clockwise order, first point lexicographic min.

    Collinear points on the hull boundary are dropped.  Requires at
    least one point; one or two (distinct) points return themselves.
    """
    unique = sorted(set((float(x), float(y)) for x, y in points))
    if not unique:
        raise GeometryError("convex hull of zero points")
    if len(unique) <= 2:
        return unique

    lower: List[Point] = []
    for p in unique:
        while len(lower) >= 2 and cross(lower[-2], lower[-1], p) <= 0:
            lower.pop()
        lower.append(p)

    upper: List[Point] = []
    for p in reversed(unique):
        while len(upper) >= 2 and cross(upper[-2], upper[-1], p) <= 0:
            upper.pop()
        upper.append(p)

    return lower[:-1] + upper[:-1]
