"""Simple-polygon operations: area, centroid, containment.

Faces of the planar sensing graph are simple polygons; these routines
support query-region construction (lower/upper bound face selection) and
the utility function of the submodular selector (which weighs regions by
area).
"""

from __future__ import annotations

from typing import List, Sequence

from ..errors import GeometryError
from .bbox import BBox
from .primitives import EPSILON, Point, Segment, points_equal
from .predicates import on_segment, orientation


def signed_area(vertices: Sequence[Point]) -> float:
    """Signed area of a polygon (positive for counter-clockwise order).

    Uses the shoelace formula; the polygon is implicitly closed.
    """
    if len(vertices) < 3:
        return 0.0
    total = 0.0
    n = len(vertices)
    for i in range(n):
        x1, y1 = vertices[i]
        x2, y2 = vertices[(i + 1) % n]
        total += x1 * y2 - x2 * y1
    return total / 2.0


def area(vertices: Sequence[Point]) -> float:
    """Absolute area of a polygon."""
    return abs(signed_area(vertices))


def is_counter_clockwise(vertices: Sequence[Point]) -> bool:
    """True when the vertices wind counter-clockwise."""
    return signed_area(vertices) > 0.0


def ensure_counter_clockwise(vertices: Sequence[Point]) -> List[Point]:
    """Return the vertices in counter-clockwise order (paper convention)."""
    points = list(vertices)
    if signed_area(points) < 0:
        points.reverse()
    return points


def centroid(vertices: Sequence[Point]) -> Point:
    """Area centroid of a simple polygon.

    Falls back to the vertex mean for (near-)degenerate polygons.
    """
    if not vertices:
        raise GeometryError("centroid of an empty polygon")
    a = signed_area(vertices)
    if abs(a) < EPSILON:
        xs = sum(v[0] for v in vertices) / len(vertices)
        ys = sum(v[1] for v in vertices) / len(vertices)
        return (xs, ys)
    cx = 0.0
    cy = 0.0
    n = len(vertices)
    for i in range(n):
        x1, y1 = vertices[i]
        x2, y2 = vertices[(i + 1) % n]
        factor = x1 * y2 - x2 * y1
        cx += (x1 + x2) * factor
        cy += (y1 + y2) * factor
    return (cx / (6.0 * a), cy / (6.0 * a))


def point_in_polygon(
    point: Point, vertices: Sequence[Point], eps: float = EPSILON
) -> bool:
    """True when ``point`` is inside the polygon (boundary inclusive).

    Standard ray-casting with an explicit boundary check first so that
    points exactly on an edge are classified deterministically.
    """
    n = len(vertices)
    if n < 3:
        return False
    for i in range(n):
        a = vertices[i]
        b = vertices[(i + 1) % n]
        if points_equal(a, b, eps):
            continue
        if on_segment(point, Segment(a, b), eps):
            return True

    x, y = point
    inside = False
    j = n - 1
    for i in range(n):
        xi, yi = vertices[i]
        xj, yj = vertices[j]
        if (yi > y) != (yj > y):
            x_cross = (xj - xi) * (y - yi) / (yj - yi) + xi
            if x < x_cross:
                inside = not inside
        j = i
    return inside


def polygon_in_bbox(vertices: Sequence[Point], box: BBox) -> bool:
    """True when every vertex of the polygon lies inside the bbox.

    For convex query rectangles vertex containment implies full polygon
    containment.
    """
    return all(box.contains_point(v) for v in vertices)


def polygon_intersects_bbox(vertices: Sequence[Point], box: BBox) -> bool:
    """True when the polygon and the bbox share any point.

    Checks vertex containment both ways and edge crossings; sufficient
    for simple polygons against rectangles.
    """
    if any(box.contains_point(v) for v in vertices):
        return True
    if point_in_polygon(box.center, vertices):
        return True
    corners = box.corners()
    from .predicates import segments_intersect

    n = len(vertices)
    for i in range(n):
        a, b = vertices[i], vertices[(i + 1) % n]
        if points_equal(a, b):
            continue
        edge = Segment(a, b)
        for j in range(4):
            side = Segment(corners[j], corners[(j + 1) % 4])
            if segments_intersect(edge, side):
                return True
    return False


def is_convex(vertices: Sequence[Point]) -> bool:
    """True when the polygon is convex (collinear runs allowed)."""
    n = len(vertices)
    if n < 3:
        return False
    sign = 0
    for i in range(n):
        o = orientation(vertices[i], vertices[(i + 1) % n], vertices[(i + 2) % n])
        if o == 0:
            continue
        if sign == 0:
            sign = o
        elif o != sign:
            return False
    return True


def representative_point(vertices: Sequence[Point]) -> Point:
    """A point guaranteed to lie inside the polygon.

    The centroid is returned when it is interior (true for convex and
    most mildly non-convex faces).  Otherwise the midpoint of the widest
    interior run of a horizontal scanline through the polygon's vertical
    midde is used, which always lies strictly inside a simple polygon.
    """
    if len(vertices) < 3:
        raise GeometryError("representative point of a degenerate polygon")
    candidate = centroid(vertices)
    if point_in_polygon(candidate, vertices):
        return candidate

    ys = sorted(v[1] for v in vertices)
    mid_y = (ys[len(ys) // 2 - 1] + ys[len(ys) // 2]) / 2.0
    if any(abs(v[1] - mid_y) < EPSILON for v in vertices):
        mid_y += EPSILON * 7  # nudge off vertex level to avoid degeneracy

    crossings: List[float] = []
    n = len(vertices)
    for i in range(n):
        x1, y1 = vertices[i]
        x2, y2 = vertices[(i + 1) % n]
        if (y1 > mid_y) != (y2 > mid_y):
            crossings.append(x1 + (x2 - x1) * (mid_y - y1) / (y2 - y1))
    crossings.sort()
    if len(crossings) < 2:
        return candidate  # fall back; polygon is nearly degenerate
    best = (crossings[0], crossings[1])
    for i in range(0, len(crossings) - 1, 2):
        if crossings[i + 1] - crossings[i] > best[1] - best[0]:
            best = (crossings[i], crossings[i + 1])
    return ((best[0] + best[1]) / 2.0, mid_y)


def perimeter(vertices: Sequence[Point]) -> float:
    """Total boundary length of the polygon."""
    from .primitives import distance

    n = len(vertices)
    return sum(distance(vertices[i], vertices[(i + 1) % n]) for i in range(n))
