"""Uniform spatial hash grid for bbox-indexed items.

A tiny, dependency-free spatial index.  The library indexes two kinds of
payloads with it: graph edges (for segment-crossing candidate lookup
during trajectory ingestion) and face polygons (for point location).
Items are registered with a bounding box and retrieved by probe bbox or
point; exact geometry tests are the caller's responsibility.
"""

from __future__ import annotations

import math
from collections import defaultdict
from typing import Dict, Generic, Iterable, List, Set, Tuple, TypeVar

from ..errors import GeometryError
from .bbox import BBox
from .primitives import Point

T = TypeVar("T")


class SpatialGrid(Generic[T]):
    """Hash grid over a rectangular domain.

    Parameters
    ----------
    bounds:
        The domain every inserted item is expected to (mostly) live in.
        Items may spill outside; cells are unbounded integer keys.
    cell_size:
        Edge length of the square cells.  A good default is the domain
        diagonal divided by ``sqrt(expected_item_count)``.
    """

    def __init__(self, bounds: BBox, cell_size: float) -> None:
        if cell_size <= 0:
            raise GeometryError("cell_size must be positive")
        self.bounds = bounds
        self.cell_size = float(cell_size)
        self._cells: Dict[Tuple[int, int], List[T]] = defaultdict(list)
        self._count = 0

    @classmethod
    def for_items(cls, bounds: BBox, expected_items: int) -> "SpatialGrid[T]":
        """Grid sized so that cells hold O(1) items on average."""
        expected_items = max(expected_items, 1)
        diag = math.hypot(bounds.width, bounds.height)
        cell = max(diag / math.sqrt(expected_items), 1e-6)
        return cls(bounds, cell)

    def __len__(self) -> int:
        return self._count

    def _cell_of(self, point: Point) -> Tuple[int, int]:
        return (
            int(math.floor(point[0] / self.cell_size)),
            int(math.floor(point[1] / self.cell_size)),
        )

    def _cells_for_bbox(self, box: BBox) -> Iterable[Tuple[int, int]]:
        cx0 = int(math.floor(box.min_x / self.cell_size))
        cy0 = int(math.floor(box.min_y / self.cell_size))
        cx1 = int(math.floor(box.max_x / self.cell_size))
        cy1 = int(math.floor(box.max_y / self.cell_size))
        for cx in range(cx0, cx1 + 1):
            for cy in range(cy0, cy1 + 1):
                yield (cx, cy)

    def insert(self, item: T, box: BBox) -> None:
        """Register ``item`` under every cell its bbox overlaps."""
        for key in self._cells_for_bbox(box):
            self._cells[key].append(item)
        self._count += 1

    def query_bbox(self, box: BBox) -> Set[T]:
        """All items whose registration bbox overlaps ``box``'s cells.

        May contain false positives (same cell, disjoint geometry);
        never false negatives.
        """
        found: Set[T] = set()
        for key in self._cells_for_bbox(box):
            cell = self._cells.get(key)
            if cell:
                found.update(cell)
        return found

    def query_point(self, point: Point) -> Set[T]:
        """All items registered in the cell containing ``point``."""
        cell = self._cells.get(self._cell_of(point))
        return set(cell) if cell else set()
