"""Delaunay triangulation of a point set.

The sampled-graph generator (§4.5 of the paper) connects selected sensor
nodes "either with a triangulation-based or k-NN-based algorithm"; the
triangulation used here is Delaunay, delegated to ``scipy.spatial`` with
a small pure-Python fallback for environments without scipy and for the
degenerate inputs scipy's Qhull rejects (fewer than 3 points, collinear
point sets).
"""

from __future__ import annotations

from typing import List, Sequence, Set, Tuple

import numpy as np

from ..errors import GeometryError
from .primitives import Point

try:  # scipy is a declared dependency but keep a graceful fallback
    from scipy.spatial import Delaunay as _SciPyDelaunay
    from scipy.spatial import QhullError as _QhullError
except ImportError:  # pragma: no cover - scipy is installed in CI
    _SciPyDelaunay = None

    class _QhullError(Exception):
        pass


def delaunay_edges(points: Sequence[Point]) -> List[Tuple[int, int]]:
    """Edges of the Delaunay triangulation as index pairs ``(i, j)``, i < j.

    Degenerate inputs degrade gracefully: two points yield the single
    edge, collinear sets yield a path along the sorted order.
    """
    n = len(points)
    if n < 2:
        raise GeometryError("triangulation requires at least two points")
    if n == 2:
        return [(0, 1)]

    if _SciPyDelaunay is not None:
        try:
            tri = _SciPyDelaunay(np.asarray(points, dtype=float))
        except (_QhullError, ValueError):
            return _collinear_path_edges(points)
        edges: Set[Tuple[int, int]] = set()
        for simplex in tri.simplices:
            a, b, c = (int(v) for v in simplex)
            edges.add((min(a, b), max(a, b)))
            edges.add((min(b, c), max(b, c)))
            edges.add((min(a, c), max(a, c)))
        return sorted(edges)

    return _bowyer_watson_edges(points)  # pragma: no cover


def delaunay_triangles(points: Sequence[Point]) -> List[Tuple[int, int, int]]:
    """Triangles of the Delaunay triangulation as sorted index triples."""
    n = len(points)
    if n < 3:
        raise GeometryError("triangulation into faces requires >= 3 points")
    if _SciPyDelaunay is not None:
        try:
            tri = _SciPyDelaunay(np.asarray(points, dtype=float))
        except (_QhullError, ValueError):
            raise GeometryError("degenerate (collinear) point set")
        return [tuple(sorted(int(v) for v in s)) for s in tri.simplices]
    raise GeometryError("scipy is required for triangle enumeration")


def _collinear_path_edges(points: Sequence[Point]) -> List[Tuple[int, int]]:
    """Chain edges along a (numerically) collinear point set."""
    order = sorted(range(len(points)), key=lambda i: (points[i][0], points[i][1]))
    edges = []
    for a, b in zip(order, order[1:]):
        edges.append((min(a, b), max(a, b)))
    return edges


def _bowyer_watson_edges(
    points: Sequence[Point],
) -> List[Tuple[int, int]]:  # pragma: no cover - fallback path
    """O(n^2) Bowyer-Watson Delaunay for the no-scipy fallback."""
    pts = [(float(x), float(y)) for x, y in points]
    min_x = min(p[0] for p in pts)
    max_x = max(p[0] for p in pts)
    min_y = min(p[1] for p in pts)
    max_y = max(p[1] for p in pts)
    span = max(max_x - min_x, max_y - min_y, 1.0)
    # Super-triangle far outside the point set.
    s1 = (min_x - 10 * span, min_y - span)
    s2 = (max_x + 10 * span, min_y - span)
    s3 = ((min_x + max_x) / 2, max_y + 10 * span)
    all_pts = pts + [s1, s2, s3]
    n = len(pts)
    triangles = {(n, n + 1, n + 2)}

    def circumcircle_contains(tri, p):
        ax, ay = all_pts[tri[0]]
        bx, by = all_pts[tri[1]]
        cx, cy = all_pts[tri[2]]
        d = 2 * (ax * (by - cy) + bx * (cy - ay) + cx * (ay - by))
        if abs(d) < 1e-12:
            return False
        ux = (
            (ax * ax + ay * ay) * (by - cy)
            + (bx * bx + by * by) * (cy - ay)
            + (cx * cx + cy * cy) * (ay - by)
        ) / d
        uy = (
            (ax * ax + ay * ay) * (cx - bx)
            + (bx * bx + by * by) * (ax - cx)
            + (cx * cx + cy * cy) * (bx - ax)
        ) / d
        r2 = (ax - ux) ** 2 + (ay - uy) ** 2
        return (p[0] - ux) ** 2 + (p[1] - uy) ** 2 < r2

    for idx in range(n):
        p = all_pts[idx]
        bad = [t for t in triangles if circumcircle_contains(t, p)]
        boundary: Set[Tuple[int, int]] = set()
        for t in bad:
            for e in ((t[0], t[1]), (t[1], t[2]), (t[0], t[2])):
                e = (min(e), max(e))
                if e in boundary:
                    boundary.discard(e)
                else:
                    boundary.add(e)
            triangles.discard(t)
        for a, b in boundary:
            triangles.add(tuple(sorted((a, b, idx))))

    edges: Set[Tuple[int, int]] = set()
    for t in triangles:
        if any(v >= n for v in t):
            continue
        edges.add((t[0], t[1]))
        edges.add((t[1], t[2]))
        edges.add((t[0], t[2]))
    return sorted(edges)
