"""Planar geometry substrate (system S1 in DESIGN.md).

Pure-Python/numpy computational geometry used throughout the library:
points and segments, robust-enough predicates, simple-polygon operations,
convex hulls, axis-aligned boxes and Delaunay triangulation.
"""

from .bbox import BBox
from .hull import convex_hull
from .polygon import (
    area,
    centroid,
    ensure_counter_clockwise,
    is_convex,
    is_counter_clockwise,
    perimeter,
    point_in_polygon,
    polygon_in_bbox,
    polygon_intersects_bbox,
    representative_point,
    signed_area,
)
from .grid import SpatialGrid
from .predicates import (
    collinear,
    cross,
    crossing_parameter,
    on_segment,
    orientation,
    proper_intersection,
    segment_intersection,
    segments_intersect,
)
from .primitives import (
    EPSILON,
    Point,
    Segment,
    almost_equal,
    angle_of,
    distance,
    lerp,
    midpoint,
    points_equal,
    polyline_length,
    squared_distance,
)
from .triangulate import delaunay_edges, delaunay_triangles

__all__ = [
    "BBox",
    "EPSILON",
    "Point",
    "Segment",
    "almost_equal",
    "angle_of",
    "area",
    "centroid",
    "collinear",
    "convex_hull",
    "cross",
    "crossing_parameter",
    "delaunay_edges",
    "delaunay_triangles",
    "distance",
    "ensure_counter_clockwise",
    "is_convex",
    "is_counter_clockwise",
    "lerp",
    "midpoint",
    "on_segment",
    "orientation",
    "perimeter",
    "point_in_polygon",
    "points_equal",
    "polygon_in_bbox",
    "polygon_intersects_bbox",
    "polyline_length",
    "proper_intersection",
    "representative_point",
    "SpatialGrid",
    "segment_intersection",
    "segments_intersect",
    "signed_area",
    "squared_distance",
]
