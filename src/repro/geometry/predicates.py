"""Planar geometric predicates: orientation, collinearity, intersection.

These are the robust building blocks for face extraction, crossing
detection and planarization.  Orientation uses the standard signed-area
determinant with a tolerance scaled to the magnitude of the operands,
which is adequate because all coordinates in the library live in a
normalised unit-scale domain.
"""

from __future__ import annotations

import math
from typing import Optional, Tuple

from .primitives import EPSILON, Point, Segment, points_equal


def cross(o: Point, a: Point, b: Point) -> float:
    """Z-component of the cross product ``(a - o) x (b - o)``.

    Positive when ``o -> a -> b`` turns counter-clockwise.
    """
    return (a[0] - o[0]) * (b[1] - o[1]) - (a[1] - o[1]) * (b[0] - o[0])


def orientation(o: Point, a: Point, b: Point, eps: float = EPSILON) -> int:
    """Orientation of the ordered triple ``(o, a, b)``.

    Returns ``+1`` for counter-clockwise, ``-1`` for clockwise and ``0``
    for (numerically) collinear points.
    """
    value = cross(o, a, b)
    scale = max(
        abs(a[0] - o[0]) + abs(a[1] - o[1]),
        abs(b[0] - o[0]) + abs(b[1] - o[1]),
        1.0,
    )
    if abs(value) <= eps * scale:
        return 0
    return 1 if value > 0 else -1


def collinear(o: Point, a: Point, b: Point, eps: float = EPSILON) -> bool:
    """True when the three points are numerically collinear."""
    return orientation(o, a, b, eps) == 0


def on_segment(p: Point, segment: Segment, eps: float = EPSILON) -> bool:
    """True when point ``p`` lies on ``segment`` (endpoints inclusive)."""
    a, b = segment.start, segment.end
    if orientation(a, b, p, eps) != 0:
        return False
    min_x, min_y, max_x, max_y = segment.bounding_box()
    return (
        min_x - eps <= p[0] <= max_x + eps
        and min_y - eps <= p[1] <= max_y + eps
    )


def segments_intersect(
    s1: Segment, s2: Segment, eps: float = EPSILON
) -> bool:
    """True when the two closed segments share at least one point."""
    o1 = orientation(s1.start, s1.end, s2.start, eps)
    o2 = orientation(s1.start, s1.end, s2.end, eps)
    o3 = orientation(s2.start, s2.end, s1.start, eps)
    o4 = orientation(s2.start, s2.end, s1.end, eps)

    if o1 != o2 and o3 != o4:
        return True
    if o1 == 0 and on_segment(s2.start, s1, eps):
        return True
    if o2 == 0 and on_segment(s2.end, s1, eps):
        return True
    if o3 == 0 and on_segment(s1.start, s2, eps):
        return True
    if o4 == 0 and on_segment(s1.end, s2, eps):
        return True
    return False


def segment_intersection(
    s1: Segment, s2: Segment, eps: float = EPSILON
) -> Optional[Point]:
    """Intersection point of two segments, or None.

    For properly crossing segments the unique intersection point is
    returned.  For collinear overlapping segments one representative
    shared point is returned (an endpoint inside the overlap).  Touching
    at an endpoint counts as an intersection.
    """
    p, r_end = s1.start, s1.end
    q, s_end = s2.start, s2.end
    r = (r_end[0] - p[0], r_end[1] - p[1])
    s = (s_end[0] - q[0], s_end[1] - q[1])
    denom = r[0] * s[1] - r[1] * s[0]
    qp = (q[0] - p[0], q[1] - p[1])

    if abs(denom) > eps:
        t = (qp[0] * s[1] - qp[1] * s[0]) / denom
        u = (qp[0] * r[1] - qp[1] * r[0]) / denom
        if -eps <= t <= 1 + eps and -eps <= u <= 1 + eps:
            t = min(max(t, 0.0), 1.0)
            return (p[0] + t * r[0], p[1] + t * r[1])
        return None

    # Parallel.  Check for collinear overlap.
    if abs(qp[0] * r[1] - qp[1] * r[0]) > eps:
        return None
    for candidate in (s2.start, s2.end):
        if on_segment(candidate, s1, eps):
            return candidate
    for candidate in (s1.start, s1.end):
        if on_segment(candidate, s2, eps):
            return candidate
    return None


def proper_intersection(
    s1: Segment, s2: Segment, eps: float = EPSILON
) -> Optional[Point]:
    """Intersection strictly interior to both segments, or None.

    Used by planarization, where shared endpoints are already graph
    nodes and must not spawn duplicate intersection vertices.
    """
    point = segment_intersection(s1, s2, eps)
    if point is None:
        return None
    for endpoint in (s1.start, s1.end, s2.start, s2.end):
        if points_equal(point, endpoint, eps * 10):
            return None
    return point


def crossing_parameter(
    path: Segment, barrier: Segment, eps: float = EPSILON
) -> Optional[Tuple[float, int]]:
    """Where and with what sign a moving object crosses a barrier edge.

    ``path`` is one step of the object's motion; ``barrier`` is a
    directed edge of the sensing graph.  Returns ``(t, sign)`` where
    ``t`` in [0, 1] parametrises the crossing along ``path`` and ``sign``
    is ``+1`` when the object crosses from the left of ``barrier`` to its
    right and ``-1`` for right-to-left.  Returns None when there is no
    proper crossing (grazing along the barrier does not count).
    """
    p, r_end = path.start, path.end
    q, s_end = barrier.start, barrier.end
    r = (r_end[0] - p[0], r_end[1] - p[1])
    s = (s_end[0] - q[0], s_end[1] - q[1])
    denom = r[0] * s[1] - r[1] * s[0]
    if abs(denom) <= eps:
        return None
    qp = (q[0] - p[0], q[1] - p[1])
    t = (qp[0] * s[1] - qp[1] * s[0]) / denom
    u = (qp[0] * r[1] - qp[1] * r[0]) / denom
    if not (-eps < t < 1 + eps and -eps < u < 1 + eps):
        return None
    # denom = r x s > 0 means the motion direction r has the barrier
    # direction s counter-clockwise from it, i.e. the object moves from
    # the barrier's left half-plane into its right half-plane.
    sign = 1 if denom > 0 else -1
    return (min(max(t, 0.0), 1.0), sign)


def angle_ccw(base: float, target: float) -> float:
    """Counter-clockwise angular distance from ``base`` to ``target``.

    Both angles are radians; result lies in ``[0, 2*pi)``.
    """
    delta = (target - base) % (2.0 * math.pi)
    return delta
