"""Sustained streaming ingestion: incremental appends vs per-window
rebuild, with tail-query latency sampled by the telemetry recorder.

The streaming claim: feeding arrival windows through the LSM-style
:class:`repro.stream.StreamingEventStore` (tail fold + periodic
compaction) sustains a steady events/sec that the batch alternative —
rebuilding the compiled form from the cumulative stream after every
window, the only way to keep queries current without an append path —
cannot match, because the rebuild cost grows with history while the
append cost does not.  Queries interleave with ingestion and run
against tail+blocks, so the measured latency includes the live
(uncompacted) tail.

Runs two ways:

- under pytest-benchmark with the other benches
  (``pytest benchmarks/bench_stream_ingest.py``);
- standalone (``python benchmarks/bench_stream_ingest.py``), printing
  a table and optionally updating the committed
  ``benchmarks/BENCH_stream.json`` (``--write``).  ``--smoke`` runs
  the small scale, asserts streamed query answers are field-identical
  to a batch-built form, and exits non-zero if streaming ingest
  throughput regressed more than 2x against the committed artifact —
  the CI gate.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

try:  # standalone invocation without PYTHONPATH=src
    import repro  # noqa: F401
except ImportError:  # pragma: no cover
    sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

import numpy as np

from repro.evaluation import DEFAULT_CONFIG, SMALL_CONFIG
from repro.evaluation.harness import PipelineConfig
from repro.geometry import BBox
from repro.mobility import MobilityDomain, organic_city
from repro.obs import (
    MetricsRegistry,
    TimeSeriesRecorder,
    get_registry,
    set_registry,
)
from repro.query import QueryEngine, RangeQuery
from repro.sampling import sampled_network
from repro.selection import QuadTreeSelector, SensorCandidates
from repro.stream import StreamingEventStore
from repro.trajectories import EventColumns, WorkloadConfig, generate_workload

BASELINE_PATH = Path(__file__).resolve().parent / "BENCH_stream.json"

#: Sampled-network size fraction (matches the ingest benchmark).
SAMPLED_FRACTION = 0.256

#: Smoke gate: fail if streaming events/sec drops below committed / 2.
REGRESSION_FACTOR = 2.0

#: Arrival-window size fed per append (and the compaction cadence).
WINDOW = 1024

#: Interleave one probe query battery every N arrival windows.
QUERY_EVERY = 4

SCALES = {"smoke": SMALL_CONFIG, "default": DEFAULT_CONFIG}


def build_scene(config: PipelineConfig):
    """Domain + time-sorted event stream + one sampled network."""
    rng = np.random.default_rng(config.road_seed)
    road = organic_city(blocks=config.blocks, rng=rng)
    domain = MobilityDomain(road)
    workload = generate_workload(
        domain,
        WorkloadConfig(
            n_trips=config.n_trips,
            horizon_days=config.horizon_days,
            mean_dwell=config.mean_dwell,
            seed=config.trip_seed,
        ),
    )
    events = sorted(workload.events(domain), key=lambda e: e.t)
    candidates = SensorCandidates.from_domain(domain)
    m = max(int(round(SAMPLED_FRACTION * domain.block_count)), 2)
    chosen = QuadTreeSelector().select(
        candidates, min(m, len(candidates)), np.random.default_rng(1)
    )
    network = sampled_network(domain, chosen, name=f"quadtree-m{m}")
    horizon = workload.horizon
    return domain, network, events, horizon


def _probe_queries(domain, horizon):
    bounds = domain.bounds
    boxes = [
        BBox.from_center(bounds.center, bounds.width * f, bounds.height * f)
        for f in (0.3, 0.6, 0.9)
    ]
    return [
        RangeQuery(box, horizon * 0.1, horizon * 0.7) for box in boxes
    ]


def measure(scale: str, repeats: int) -> dict:
    config = SCALES[scale]
    set_registry(MetricsRegistry())
    domain, network, events, horizon = build_scene(config)
    windows = [
        events[start:start + WINDOW]
        for start in range(0, len(events), WINDOW)
    ]
    queries = _probe_queries(domain, horizon)
    pc = time.perf_counter

    # Sustained run: appends timed alone; probe queries interleave and
    # land in the latency histogram, sampled by the telemetry recorder.
    best_append_s = None
    store = None
    query_samples = 0
    recorder = TimeSeriesRecorder(MetricsRegistry())
    for _ in range(max(repeats, 1)):
        set_registry(MetricsRegistry())
        store = StreamingEventStore(network, compact_every=WINDOW)
        engine = QueryEngine(network, store, planner="compiled")
        recorder = TimeSeriesRecorder(get_registry())
        append_s = 0.0
        query_samples = 0
        for i, window in enumerate(windows):
            t0 = pc()
            store.append_events(window)
            append_s += pc() - t0
            if i % QUERY_EVERY == 0:
                for query in queries:
                    engine.execute(query)
                    query_samples += 1
                recorder.sample()
        recorder.sample()
        if best_append_s is None or append_s < best_append_s:
            best_append_s = append_s

    latency = recorder.quantile_series("repro_query_latency_seconds", 0.95)
    finite = [v for v in latency.values if v is not None]
    query_p95_s = max(finite) if finite else None

    # Batch alternative for live data: rebuild the compiled form from
    # the cumulative stream after every arrival window.
    columns = EventColumns.from_events(domain, events).time_sorted()
    rebuild_s = 0.0
    for end in range(WINDOW, len(events) + WINDOW, WINDOW):
        prefix = columns.select(np.arange(min(end, len(events))))
        t0 = pc()
        network.build_form(prefix)
        rebuild_s += pc() - t0

    # Equivalence: streamed answers must be field-identical to a
    # batch-built form over the full stream (always asserted).
    batch_engine = QueryEngine(
        network, network.build_form(columns), planner="compiled"
    )
    stream_engine = QueryEngine(network, store, planner="compiled")
    for query in queries:
        streamed = stream_engine.execute(query)
        batch = batch_engine.execute(query)
        assert (streamed.value, streamed.missed) == (
            batch.value, batch.missed
        ), f"stream/batch divergence on {query}"

    observed = store.observed_total
    return {
        "scale": scale,
        "blocks": config.blocks,
        "n_trips": config.n_trips,
        "n_events": len(events),
        "n_observed": observed,
        "window": WINDOW,
        "windows": len(windows),
        "compactions": store.compactions,
        "block_merges": store.block_merges,
        "stream_ingest_s": best_append_s,
        "stream_events_per_s": len(events) / best_append_s,
        "rebuild_ingest_s": rebuild_s,
        "rebuild_events_per_s": len(events) / rebuild_s,
        "incremental_speedup": rebuild_s / best_append_s,
        "query_samples": query_samples,
        "query_p95_s": query_p95_s,
    }


def format_entry(entry: dict) -> str:
    p95 = entry["query_p95_s"]
    return "\n".join([
        f"scale={entry['scale']}  blocks={entry['blocks']}  "
        f"trips={entry['n_trips']}  events={entry['n_events']} "
        f"({entry['n_observed']} observed)",
        f"windows={entry['windows']}x{entry['window']}  "
        f"compactions={entry['compactions']}  "
        f"merges={entry['block_merges']}",
        f"stream  {entry['stream_ingest_s'] * 1e3:8.1f}ms  "
        f"{entry['stream_events_per_s']:>12,.0f} events/s",
        f"rebuild {entry['rebuild_ingest_s'] * 1e3:8.1f}ms  "
        f"{entry['rebuild_events_per_s']:>12,.0f} events/s  "
        f"(incremental speedup {entry['incremental_speedup']:.1f}x)",
        f"tail query p95: "
        + (f"{p95 * 1e3:.2f}ms" if p95 is not None else "n/a")
        + f" over {entry['query_samples']} interleaved queries",
    ])


def load_baseline() -> dict:
    if BASELINE_PATH.exists():
        return json.loads(BASELINE_PATH.read_text())
    return {"schema": 1, "entries": {}}


def check_regression(entry: dict, baseline: dict) -> int:
    """CI gate: streaming ingest throughput vs the committed run."""
    committed = baseline.get("entries", {}).get(entry["scale"])
    if committed is None:
        print(
            f"no committed baseline for scale {entry['scale']!r}; "
            "run with --write first",
            file=sys.stderr,
        )
        return 1
    reference = committed["stream_events_per_s"]
    got = entry["stream_events_per_s"]
    floor = reference / REGRESSION_FACTOR
    verdict = "ok" if got >= floor else "REGRESSION"
    print(
        f"streaming ingest {got:,.0f} events/s "
        f"(committed {reference:,.0f}, floor {floor:,.0f}) {verdict}"
    )
    return 0 if got >= floor else 1


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--scale", choices=sorted(SCALES), default="default",
        help="pipeline scale to measure (default: default)",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="measure the smoke scale, assert stream==batch equivalence "
        "and fail on a >2x ingest-throughput regression against the "
        "committed BENCH_stream.json",
    )
    parser.add_argument(
        "--write", action="store_true",
        help="update the measured scale's entry in BENCH_stream.json",
    )
    parser.add_argument("--repeats", type=int, default=3)
    args = parser.parse_args(argv)

    scale = "smoke" if args.smoke else args.scale
    entry = measure(scale, args.repeats)
    print(format_entry(entry))

    status = 0
    if args.smoke and not args.write:
        status = check_regression(entry, load_baseline())
    if args.write:
        baseline = load_baseline()
        baseline["entries"][scale] = entry
        BASELINE_PATH.write_text(json.dumps(baseline, indent=2) + "\n")
        print(f"wrote {BASELINE_PATH}")
    return status


# ----------------------------------------------------------------------
# pytest-benchmark entry point
# ----------------------------------------------------------------------
def bench_stream_ingest(benchmark):
    from _common import emit

    entry = measure("smoke", repeats=2)
    emit(
        "stream_ingest",
        "Sustained streaming ingestion: incremental vs rebuild",
        format_entry(entry),
        series={"entry": entry},
        config=SCALES["smoke"],
    )

    def run():
        set_registry(MetricsRegistry())
        _, network, events, _ = bench_stream_ingest._scene
        store = StreamingEventStore(network, compact_every=WINDOW)
        store.append_events(events)

    bench_stream_ingest._scene = build_scene(SCALES["smoke"])
    benchmark(run)


if __name__ == "__main__":
    raise SystemExit(main())
