"""Figure 13c/d: upper-bound approximation ratio vs graph size & query size.

The upper bound answers from the minimal union of sampled-graph
regions covering the query, so the estimate/actual ratio is >= 1 and
approaches 1 as either the sampled graph or the query region grows.
"""

from __future__ import annotations

from _common import N_QUERIES, emit, pipeline
from repro.evaluation import evaluate, format_table
from repro.evaluation.harness import (
    FIXED_QUERY_AREA,
    STANDARD_AREA_FRACTIONS,
    STANDARD_SIZE_FRACTIONS,
)
from repro.query import UPPER

METHODS = ("uniform", "quadtree", "submodular")
HEADERS = ("x", *(f"{m} ratio" for m in METHODS), "miss(quadtree)")


def bench_fig13cd_upper_bound(benchmark):
    p = pipeline()

    queries = [
        q.with_bound(UPPER)
        for q in p.standard_queries(FIXED_QUERY_AREA, n=N_QUERIES)
    ]
    rows_c = []
    for fraction in STANDARD_SIZE_FRACTIONS:
        m = p.budget_for_fraction(fraction)
        row = [f"size {fraction:.2%}"]
        quad_miss = 0.0
        for method in METHODS:
            report = evaluate(
                p, p.engine(p.network(method, m, seed=1)).execute, queries
            )
            row.append(report.ratio.median)
            if method == "quadtree":
                quad_miss = report.miss_rate
        row.append(quad_miss)
        rows_c.append(row)

    m = p.budget_for_fraction(0.064)
    rows_d = []
    for fraction in STANDARD_AREA_FRACTIONS:
        area_queries = [
            q.with_bound(UPPER)
            for q in p.standard_queries(fraction, n=N_QUERIES)
        ]
        row = [f"area {fraction:.2%}"]
        quad_miss = 0.0
        for method in METHODS:
            report = evaluate(
                p,
                p.engine(p.network(method, m, seed=1)).execute,
                area_queries,
            )
            row.append(report.ratio.median)
            if method == "quadtree":
                quad_miss = report.miss_rate
        row.append(quad_miss)
        rows_d.append(row)

    emit(
        "fig13cd",
        "Fig 13c: upper-bound ratio vs graph size / "
        "Fig 13d: vs query size (ratio >= 1, decreasing)",
        format_table(HEADERS, rows_c) + "\n\n" + format_table(HEADERS, rows_d),
    )

    engine = p.engine(p.network("quadtree", m, seed=1))
    benchmark.pedantic(
        lambda: [engine.execute(q) for q in queries],
        rounds=3,
        iterations=1,
    )
