"""Figure 14c/d: additional error introduced by the regression models.

The error here is measured *relative to the exact stored counts on the
same sampled graph* (not against the unsampled graph), isolating the
model-inference error exactly as the paper does.  Paper shape: simple
regressors add only a small overhead (~2.5% on average) in exchange
for constant storage and O(1) lookups.
"""

from __future__ import annotations

import numpy as np

from _common import N_QUERIES, dense_pipeline, emit
from repro.evaluation import format_table
from repro.evaluation.harness import FIXED_QUERY_AREA
from repro.models import default_model_factories, ModeledCountStore
from repro.query import QueryEngine, TRANSIENT

GRAPH_SIZE = 0.064

HEADERS = (
    "model",
    "kind",
    "extra rel.err (median)",
    "p75",
    "abs err (median)",
    "storage (bytes)",
    "vs exact (bytes)",
)


def bench_fig14cd_regression_model_error(benchmark):
    p = dense_pipeline()
    m = p.budget_for_fraction(GRAPH_SIZE)
    network = p.network("quadtree", m, seed=1)
    form = p.form(network)
    exact_engine = QueryEngine(network, form)
    exact_bytes = form.total_events * 8

    from repro.models import PiecewiseLinearModel, StepHistogramModel

    factories = dict(default_model_factories())
    factories["piecewise-16"] = lambda: PiecewiseLinearModel(16)
    factories["piecewise-48"] = lambda: PiecewiseLinearModel(48)
    factories["histogram-64"] = lambda: StepHistogramModel(64)

    rows = []
    stores = {}
    for name, factory in factories.items():
        store = ModeledCountStore.fit(form, factory)
        stores[name] = store
        model_engine = QueryEngine(network, store)
        for kind in ("static", TRANSIENT):
            queries = p.standard_queries(
                FIXED_QUERY_AREA, kind=kind, n=N_QUERIES
            )
            deltas, absolute = [], []
            for query in queries:
                exact = exact_engine.execute(query)
                approx = model_engine.execute(query)
                if exact.missed or exact.value == 0:
                    continue
                deltas.append(
                    abs(approx.value - exact.value) / abs(exact.value)
                )
                absolute.append(abs(approx.value - exact.value))
            rows.append(
                [
                    name,
                    kind,
                    float(np.median(deltas)) if deltas else float("nan"),
                    float(np.percentile(deltas, 75)) if deltas else float("nan"),
                    float(np.median(absolute)) if absolute else float("nan"),
                    store.storage_bytes,
                    exact_bytes,
                ]
            )
    emit(
        "fig14cd",
        "Fig 14c/d: regression-model error overhead vs exact counts",
        format_table(HEADERS, rows),
    )

    engine = QueryEngine(network, stores["piecewise"])
    queries = p.standard_queries(FIXED_QUERY_AREA, n=N_QUERIES)
    benchmark.pedantic(
        lambda: [engine.execute(q) for q in queries],
        rounds=3,
        iterations=1,
    )
