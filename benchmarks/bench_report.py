"""Aggregate the committed BENCH_*.json files into a trend report.

Usage (from the repo root)::

    PYTHONPATH=src python benchmarks/bench_report.py            # print report
    PYTHONPATH=src python benchmarks/bench_report.py --write    # append snapshot
    PYTHONPATH=src python benchmarks/bench_report.py --check    # CI gate

``--check`` exits non-zero when any tracked cell of the committed
BENCH files regressed beyond the tolerance relative to the last
committed ``BENCH_trend.json`` snapshot — the gate is deterministic
because both sides live in the repository.  Accepting an intentional
regression means re-running with ``--write`` and committing the
updated trend file.

Also exposed as ``repro bench-report`` (same flags).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

try:  # standalone invocation without PYTHONPATH=src
    import repro  # noqa: F401
except ImportError:  # pragma: no cover
    sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.evaluation.benchtrend import (
    DEFAULT_TOLERANCE,
    build_trend,
    render_html,
    render_markdown,
)

BENCH_DIR = Path(__file__).resolve().parent
TREND_PATH = BENCH_DIR / "BENCH_trend.json"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Benchmark trend report over the committed "
        "BENCH_*.json files"
    )
    parser.add_argument(
        "--bench-dir",
        type=Path,
        default=BENCH_DIR,
        help="directory holding the BENCH_*.json files",
    )
    parser.add_argument(
        "--trend",
        type=Path,
        default=None,
        help="trend history file (default: <bench-dir>/BENCH_trend.json)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=DEFAULT_TOLERANCE,
        help="relative worsening tolerated before a cell counts as "
        "regressed (default %(default)s)",
    )
    parser.add_argument(
        "--write",
        action="store_true",
        help="append the current cells as a new trend snapshot",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit 1 if any tracked cell regressed vs the last snapshot",
    )
    parser.add_argument(
        "--markdown",
        type=Path,
        default=None,
        help="also write the markdown report to this path",
    )
    parser.add_argument(
        "--html",
        type=Path,
        default=None,
        help="also write the HTML report to this path",
    )
    args = parser.parse_args(argv)
    trend_path = (
        args.trend
        if args.trend is not None
        else args.bench_dir / "BENCH_trend.json"
    )
    report = build_trend(
        args.bench_dir,
        trend_path,
        tolerance=args.tolerance,
        write=args.write,
    )
    if args.check and not report["cells"]:
        # A wrong --bench-dir must not read as "no regressions".
        print(
            f"FAIL: no BENCH_*.json cells found under {args.bench_dir}",
            file=sys.stderr,
        )
        return 1
    markdown = render_markdown(report)
    print(markdown)
    if args.markdown is not None:
        args.markdown.parent.mkdir(parents=True, exist_ok=True)
        args.markdown.write_text(markdown + "\n")
    if args.html is not None:
        args.html.parent.mkdir(parents=True, exist_ok=True)
        args.html.write_text(render_html(report))
    if args.write:
        print(f"\nwrote snapshot #{report['snapshot_count']} -> {trend_path}")
    if args.check and report["regressed"]:
        print(
            f"\nFAIL: {len(report['regressed'])} cell(s) regressed beyond "
            f"{args.tolerance:.0%}:",
            file=sys.stderr,
        )
        for cell_id in report["regressed"]:
            print(f"  {cell_id}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
