"""Ablation: learned count-store variants (§4.8 and its extension).

Compares, on one sampled configuration:

- the exact tracking form (reference);
- the offline ModeledCountStore (fit once over all history);
- the online BufferedEdgeStore (model covers only the previous window,
  the paper's base design — answers "at most 2n events in the past");
- the online IncrementalEdgeStore (refit folds the old model in, the
  paper's sketched storage extension).

Reported: query error vs the exact form, storage, and ingestion rate.
"""

from __future__ import annotations

import time

import numpy as np

from _common import N_QUERIES, emit, pipeline
from repro.evaluation import format_table
from repro.evaluation.harness import FIXED_QUERY_AREA
from repro.models import (
    BufferedEdgeStore,
    IncrementalEdgeStore,
    ModeledCountStore,
    PiecewiseLinearModel,
)
from repro.query import QueryEngine

GRAPH_SIZE = 0.064
HEADERS = (
    "store",
    "extra rel.err (median)",
    "abs err (median)",
    "storage (bytes)",
    "ingest (events/s)",
)


def _factory():
    return PiecewiseLinearModel(segments=16)


def bench_ablation_learned_stores(benchmark):
    p = pipeline()
    m = p.budget_for_fraction(GRAPH_SIZE)
    network = p.network("quadtree", m, seed=1)
    form = p.form(network)
    observed = network.observed_events(p.events)
    exact_engine = QueryEngine(network, form)
    queries = p.standard_queries(FIXED_QUERY_AREA, n=N_QUERIES)

    def online(store_cls):
        store = store_cls(_factory, buffer_size=128)
        start = time.perf_counter()
        for event in observed:
            store.record(event.tail, event.head, event.t)
        rate = len(observed) / (time.perf_counter() - start)
        return store, rate

    stores = {}
    start = time.perf_counter()
    stores["offline modeled"] = (
        ModeledCountStore.fit(form, _factory),
        len(observed) / (time.perf_counter() - start),
    )
    stores["online windowed"] = online(BufferedEdgeStore)
    stores["online incremental"] = online(IncrementalEdgeStore)

    rows = []
    for name, (store, rate) in stores.items():
        engine = QueryEngine(network, store)
        deltas, absolute = [], []
        for query in queries:
            exact = exact_engine.execute(query)
            approx = engine.execute(query)
            if exact.missed or exact.value == 0:
                continue
            deltas.append(abs(approx.value - exact.value) / abs(exact.value))
            absolute.append(abs(approx.value - exact.value))
        rows.append(
            [
                name,
                float(np.median(deltas)) if deltas else float("nan"),
                float(np.median(absolute)) if absolute else float("nan"),
                store.storage_bytes,
                rate,
            ]
        )
    rows.append(
        ["exact form", 0.0, 0.0, form.total_events * 8, float("nan")]
    )
    emit(
        "ablation_stores",
        "Ablation: learned store variants (piecewise-16, buffer 128)",
        format_table(HEADERS, rows),
    )

    engine = QueryEngine(network, stores["offline modeled"][0])
    benchmark.pedantic(
        lambda: [engine.execute(q) for q in queries],
        rounds=3,
        iterations=1,
    )
