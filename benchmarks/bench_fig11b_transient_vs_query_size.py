"""Figure 11b: transient-count relative error vs query-region size.

Same sweep as Fig 12b with transient queries over an extended range of
query sizes.
"""

from __future__ import annotations

from _common import ERROR_HEADERS, N_QUERIES, emit, pipeline
from bench_fig12b_static_vs_query_size import GRAPH_SIZE, _sweep
from repro.evaluation import format_table
from repro.evaluation.harness import STANDARD_AREA_FRACTIONS
from repro.query import TRANSIENT


def bench_fig11b_transient_error_vs_query_size(benchmark):
    p = pipeline()
    rows = _sweep(p, TRANSIENT)
    emit(
        "fig11b",
        f"Fig 11b: transient error vs query size "
        f"(graph size {GRAPH_SIZE:.1%})",
        format_table(ERROR_HEADERS, rows),
    )

    m = p.budget_for_fraction(GRAPH_SIZE)
    engine = p.engine(p.network("quadtree", m, seed=1))
    queries = p.standard_queries(
        STANDARD_AREA_FRACTIONS[-1], kind=TRANSIENT, n=N_QUERIES
    )
    benchmark.pedantic(
        lambda: [engine.execute(q) for q in queries],
        rounds=3,
        iterations=1,
    )
