"""§4.9 theoretical cost: perimeter node count scaling.

The paper derives |N_P| ~ alpha * (A(Q)/A(T)) * |N| for the unsampled
graph (linear in both the query area and the graph size) and
|N~_P| ~ (A(Q)/A(T)) * m * k * g(|N|) with sub-linear g for the
sampled graph.  This bench measures both scalings empirically.
"""

from __future__ import annotations

import numpy as np

from _common import N_QUERIES, emit, pipeline
from repro.evaluation import evaluate, format_table
from repro.evaluation.harness import STANDARD_AREA_FRACTIONS

HEADERS = (
    "query area",
    "flood nodes (unsampled)",
    "perimeter sensors (m=6.4%)",
    "perimeter sensors (m=25.6%)",
)


def bench_theoretical_cost_scaling(benchmark):
    p = pipeline()
    engines = {
        size: p.engine(p.network("quadtree", p.budget_for_fraction(size), seed=1))
        for size in (0.064, 0.256)
    }
    rows = []
    flood, perim_small = [], []
    for fraction in STANDARD_AREA_FRACTIONS:
        queries = p.standard_queries(fraction, n=N_QUERIES)
        exact_report = evaluate(p, p.exact_engine.execute, queries)
        sampled_reports = {
            size: evaluate(p, engine.execute, queries)
            for size, engine in engines.items()
        }
        rows.append(
            [
                f"{fraction:.2%}",
                exact_report.nodes_accessed.mean,
                sampled_reports[0.064].nodes_accessed.mean,
                sampled_reports[0.256].nodes_accessed.mean,
            ]
        )
        flood.append(exact_report.nodes_accessed.mean)
        if sampled_reports[0.064].nodes_accessed.count:
            perim_small.append(sampled_reports[0.064].nodes_accessed.mean)

    # Empirical scaling exponents (slope in log-log space).
    areas = np.array(STANDARD_AREA_FRACTIONS[: len(flood)])
    flood_slope = np.polyfit(np.log(areas), np.log(flood), 1)[0]
    summary = [["flood scaling exponent (expect ~1)", f"{flood_slope:.2f}"]]
    if len(perim_small) == len(areas):
        perim_slope = np.polyfit(np.log(areas), np.log(perim_small), 1)[0]
        summary.append(
            ["perimeter scaling exponent (expect < flood)", f"{perim_slope:.2f}"]
        )
    emit(
        "theoretical_cost",
        "§4.9: communication-cost scaling",
        format_table(HEADERS, rows)
        + "\n"
        + format_table(("quantity", "value"), summary),
    )

    queries = p.standard_queries(STANDARD_AREA_FRACTIONS[2], n=N_QUERIES)
    engine = engines[0.064]
    benchmark.pedantic(
        lambda: [engine.execute(q) for q in queries],
        rounds=3,
        iterations=1,
    )
