"""Figure 14a/b: k-NN connectivity — error vs k, and edges accessed.

Paper shape (§5.7): with QuadTree selection, increasing k lowers the
relative error for the same query region (more, smaller faces), but
the number of edges accessed grows; k = 5 undercuts triangulation on
both error and edge accesses for small queries.
"""

from __future__ import annotations

from _common import N_QUERIES, emit, pipeline
from repro.evaluation import evaluate, format_table
from repro.evaluation.harness import STANDARD_AREA_FRACTIONS

GRAPH_SIZE = 0.064
K_VALUES = (2, 3, 5, 8)

HEADERS = (
    "query area",
    "connectivity",
    "rel.err (median)",
    "miss",
    "edges accessed (mean)",
    "walls / |E(G)|",
)


def bench_fig14ab_knn_error_and_edges(benchmark):
    p = pipeline()
    m = p.budget_for_fraction(GRAPH_SIZE)
    total_edges = p.domain.sensing_edge_count

    configurations = [("triangulation", 0)] + [("knn", k) for k in K_VALUES]
    rows = []
    for fraction in STANDARD_AREA_FRACTIONS[:3]:  # small query regime
        queries = p.standard_queries(fraction, n=N_QUERIES)
        for connectivity, k in configurations:
            network = p.network(
                "quadtree", m, seed=1, connectivity=connectivity, k=k or 5
            )
            report = evaluate(p, p.engine(network).execute, queries)
            label = "triangulation" if connectivity == "triangulation" else f"knn k={k}"
            rows.append(
                [
                    f"{fraction:.2%}",
                    label,
                    report.error.median,
                    report.miss_rate,
                    report.edges_accessed.mean,
                    len(network.walls) / total_edges,
                ]
            )
    emit(
        "fig14ab",
        f"Fig 14a/b: k-NN vs triangulation (QuadTree, size {GRAPH_SIZE:.1%})",
        format_table(HEADERS, rows),
    )

    network = p.network("quadtree", m, seed=1, connectivity="knn", k=5)
    engine = p.engine(network)
    queries = p.standard_queries(STANDARD_AREA_FRACTIONS[1], n=N_QUERIES)
    benchmark.pedantic(
        lambda: [engine.execute(q) for q in queries],
        rounds=3,
        iterations=1,
    )
