"""Figure 11c: communication cost (nodes accessed) vs query size.

Paper shape: sampled graphs (shown at 6.4% and 51.2%) contact a
near-constant / logarithmic number of communication sensors regardless
of the query area, while the unsampled graph and the baseline flood
every sensor in the region — node accesses linear in the query area.

The per-configuration internals (resolved junctions |R|, boundary-chain
length |dR|) are read from measured :class:`repro.obs.QueryProvenance`
records attached by a provenance-enabled engine, not re-derived from
the region geometry.
"""

from __future__ import annotations

from _common import N_QUERIES, emit, pipeline
from repro.evaluation import evaluate, format_table
from repro.evaluation.harness import STANDARD_AREA_FRACTIONS
from repro.obs import Instrumentation, NULL_REGISTRY, NULL_TRACER
from repro.query import QueryEngine

SAMPLED_SIZES = (0.064, 0.512)

HEADERS = (
    "query area",
    "configuration",
    "nodes accessed (mean)",
    "junctions |R|",
    "boundary |dR|",
    "miss",
)

#: Provenance-only bundle: no spans, no metrics — just the measured
#: per-query internals attached to each result.
PROVENANCE_ONLY = Instrumentation(
    tracer=NULL_TRACER, metrics=NULL_REGISTRY, provenance=True
)


def _provenance_engine(
    p, network, store=None, access_mode="perimeter"
) -> QueryEngine:
    """An engine over the pipeline's cached form, with provenance on."""
    return QueryEngine(
        network,
        store if store is not None else p.form(network),
        access_mode=access_mode,
        instrumentation=PROVENANCE_ONLY,
    )


def _measured_row(label, fraction, engine, queries):
    """One table row from the engine's measured provenance records."""
    results = engine.execute_batch(queries)
    answered = [r for r in results if not r.missed]
    misses = len(results) - len(answered)
    nodes = _mean([r.nodes_accessed for r in answered])
    junctions = _mean([r.provenance.junction_count for r in answered])
    boundary = _mean([r.provenance.boundary_length for r in answered])
    return [
        f"{fraction:.2%}",
        label,
        nodes,
        junctions,
        boundary,
        misses / max(len(results), 1),
    ]


def _mean(values):
    return sum(values) / len(values) if values else float("nan")


def bench_fig11c_nodes_accessed(benchmark):
    p = pipeline()
    rows = []
    for fraction in STANDARD_AREA_FRACTIONS:
        queries = p.standard_queries(fraction, n=N_QUERIES)
        for size in SAMPLED_SIZES:
            m = p.budget_for_fraction(size)
            engine = _provenance_engine(p, p.network("quadtree", m, seed=1))
            rows.append(
                _measured_row(f"sampled {size:.1%}", fraction, engine, queries)
            )
        # Unsampled graph: flood accounting from the exact engine.
        exact = _provenance_engine(
            p, p.full, store=p.full_form, access_mode="flood"
        )
        rows.append(_measured_row("unsampled G", fraction, exact, queries))
        # The Euler-histogram baseline attaches no provenance.
        baseline = p.baseline_for_fraction(0.512, seed=1)
        report = evaluate(p, baseline.execute, queries)
        rows.append(
            [
                f"{fraction:.2%}",
                "baseline 51.2%",
                report.nodes_accessed.mean,
                float("nan"),
                float("nan"),
                report.miss_rate,
            ]
        )
    emit(
        "fig11c",
        "Fig 11c: nodes accessed vs query size",
        format_table(HEADERS, rows),
        config=p.config,
    )

    queries = p.standard_queries(STANDARD_AREA_FRACTIONS[-1], n=N_QUERIES)
    m = p.budget_for_fraction(0.064)
    engine = p.engine(p.network("quadtree", m, seed=1))
    benchmark.pedantic(
        lambda: [engine.execute(q) for q in queries],
        rounds=3,
        iterations=1,
    )
