"""Figure 11c: communication cost (nodes accessed) vs query size.

Paper shape: sampled graphs (shown at 6.4% and 51.2%) contact a
near-constant / logarithmic number of communication sensors regardless
of the query area, while the unsampled graph and the baseline flood
every sensor in the region — node accesses linear in the query area.
"""

from __future__ import annotations

from _common import N_QUERIES, emit, pipeline
from repro.evaluation import evaluate, format_table
from repro.evaluation.harness import STANDARD_AREA_FRACTIONS

SAMPLED_SIZES = (0.064, 0.512)

HEADERS = ("query area", "configuration", "nodes accessed (mean)", "miss")


def bench_fig11c_nodes_accessed(benchmark):
    p = pipeline()
    rows = []
    for fraction in STANDARD_AREA_FRACTIONS:
        queries = p.standard_queries(fraction, n=N_QUERIES)
        for size in SAMPLED_SIZES:
            m = p.budget_for_fraction(size)
            engine = p.engine(p.network("quadtree", m, seed=1))
            report = evaluate(p, engine.execute, queries)
            rows.append(
                [
                    f"{fraction:.2%}",
                    f"sampled {size:.1%}",
                    report.nodes_accessed.mean,
                    report.miss_rate,
                ]
            )
        # Unsampled graph: flood accounting from the exact engine.
        report = evaluate(p, p.exact_engine.execute, queries)
        rows.append(
            [f"{fraction:.2%}", "unsampled G", report.nodes_accessed.mean, 0.0]
        )
        baseline = p.baseline_for_fraction(0.512, seed=1)
        report = evaluate(p, baseline.execute, queries)
        rows.append(
            [
                f"{fraction:.2%}",
                "baseline 51.2%",
                report.nodes_accessed.mean,
                report.miss_rate,
            ]
        )
    emit(
        "fig11c",
        "Fig 11c: nodes accessed vs query size",
        format_table(HEADERS, rows),
    )

    queries = p.standard_queries(STANDARD_AREA_FRACTIONS[-1], n=N_QUERIES)
    m = p.budget_for_fraction(0.064)
    engine = p.engine(p.network("quadtree", m, seed=1))
    benchmark.pedantic(
        lambda: [engine.execute(q) for q in queries],
        rounds=3,
        iterations=1,
    )
