"""Figure 11a: transient-count lower-bound relative error vs graph size.

Same sweep as Fig 12a with transient (net-change) queries; the paper
shows the same ordering (submodular lowest, kd/QuadTree best samplers,
baseline needing far more samples).
"""

from __future__ import annotations

from _common import (
    ERROR_HEADERS,
    N_QUERIES,
    emit,
    emit_chart,
    pipeline,
    sweep_methods_over_sizes,
)
from repro.evaluation import format_table
from repro.evaluation.harness import FIXED_QUERY_AREA
from repro.query import TRANSIENT


def bench_fig11a_transient_error_vs_graph_size(benchmark):
    p = pipeline()
    queries = p.standard_queries(
        FIXED_QUERY_AREA, kind=TRANSIENT, n=N_QUERIES
    )
    rows, series = sweep_methods_over_sizes(p, queries)
    emit(
        "fig11a",
        f"Fig 11a: transient lower-bound error vs graph size "
        f"(query area {FIXED_QUERY_AREA:.2%})",
        format_table(ERROR_HEADERS, rows),
        series=series,
        config=p.config,
    )
    emit_chart("fig11a", "Fig 11a: transient error vs graph size", series)

    m = p.budget_for_fraction(0.256)
    engine = p.engine(p.network("quadtree", m, seed=1))
    benchmark.pedantic(
        lambda: [engine.execute(q) for q in queries],
        rounds=3,
        iterations=1,
    )
