"""Shared infrastructure for the figure benchmarks.

Every ``bench_fig*.py`` file reproduces one figure of the paper's
evaluation (§5): it sweeps that figure's x-axis over the shared cached
pipeline, prints the series the paper plots (median with 25th/75th
percentile bands, §5.1.1), persists the table under
``benchmarks/results/`` and registers one representative timing with
pytest-benchmark.

Output goes through :func:`emit`, which writes to the real stdout so
the tables appear even under pytest's capture.
"""

from __future__ import annotations

import dataclasses
import json
import math
import subprocess
import sys
from pathlib import Path
from typing import Callable, Iterable, List, Optional, Sequence

from repro.evaluation import (
    DEFAULT_CONFIG,
    EvalReport,
    Pipeline,
    PipelineConfig,
    evaluate,
    format_table,
    get_pipeline,
)
from repro.evaluation.harness import (
    FIXED_QUERY_AREA,
    STANDARD_AREA_FRACTIONS,
    STANDARD_SIZE_FRACTIONS,
)
from repro.obs import get_registry
from repro.query import RangeQuery

RESULTS_DIR = Path(__file__).resolve().parent / "results"

#: Schema version of the per-figure machine-readable records (shared
#: with ``benchmarks/BENCH_ingest.json``).
RESULT_SCHEMA = 1

#: Selectors compared in the multi-method figures.
METHODS = (
    "uniform",
    "systematic",
    "stratified",
    "kdtree",
    "quadtree",
    "submodular",
)

#: Seeds used to repeat randomised selections (the paper repeats 50x;
#: two seeds keep the offline run tractable while still averaging out
#: selection luck).
SELECTION_SEEDS = (1, 2)

#: Queries evaluated per configuration (first 20 = submodular history).
N_QUERIES = 20


def pipeline() -> Pipeline:
    """The shared default-scale pipeline (built once per session)."""
    return get_pipeline(DEFAULT_CONFIG)


#: Denser workload for the storage / learned-model benches: per-edge
#: event streams approach the paper's scale (thousands of events), so
#: constant-size models amortise the way Figs. 11e/14c/14d assume.
DENSE_CONFIG = dataclasses.replace(DEFAULT_CONFIG, n_trips=24_000)


def dense_pipeline() -> Pipeline:
    """Pipeline with the dense workload (built once per session)."""
    return get_pipeline(DENSE_CONFIG)


def emit(
    name: str,
    title: str,
    body: str,
    series: Optional[dict] = None,
    config: Optional[PipelineConfig] = None,
) -> None:
    """Print a result table to the real stdout and persist it.

    Persists two artifacts under ``benchmarks/results/``: the plain
    table (``{name}.txt``, unchanged) and one machine-readable JSON
    record (``{name}.json``) carrying the pipeline config, any chart
    series, a snapshot of the process-global metrics registry and the
    git revision — so the perf trajectory is diffable across PRs.
    """
    text = f"\n=== {title} ===\n{body}\n"
    sys.__stdout__.write(text)
    sys.__stdout__.flush()
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text)
    record = {
        "schema": RESULT_SCHEMA,
        "figure": name,
        "title": title,
        "config": dataclasses.asdict(config or DEFAULT_CONFIG),
        "series": _jsonable(series) if series else None,
        "metrics": _jsonable(get_registry().snapshot()),
        "git_rev": _git_rev(),
    }
    (RESULTS_DIR / f"{name}.json").write_text(
        json.dumps(record, indent=2) + "\n"
    )


def _git_rev() -> Optional[str]:
    try:
        return subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=Path(__file__).resolve().parent,
            capture_output=True,
            text=True,
            timeout=10,
            check=True,
        ).stdout.strip()
    except Exception:
        return None


def _jsonable(value):
    """Recursively replace non-finite floats so the JSON stays strict."""
    if isinstance(value, float):
        return value if math.isfinite(value) else None
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    return value


def sweep_methods_over_sizes(
    p: Pipeline,
    queries: Sequence[RangeQuery],
    size_fractions: Iterable[float] = STANDARD_SIZE_FRACTIONS,
    methods: Sequence[str] = METHODS,
    seeds: Sequence[int] = SELECTION_SEEDS,
    include_baseline: bool = True,
):
    """Rows of ``[size, method, err_median, err_p25, err_p75, miss]``
    plus raw per-method ``(fraction, median error)`` chart series."""
    rows: List[List[object]] = []
    series: dict = {}
    for fraction in size_fractions:
        m = p.budget_for_fraction(fraction)
        for method in methods:
            reports = [
                evaluate(
                    p,
                    p.engine(p.network(method, m, seed=seed)).execute,
                    queries,
                    label=method,
                )
                for seed in (seeds if method != "submodular" else seeds[:1])
            ]
            row = _error_row(fraction, method, reports)
            rows.append(row)
            series.setdefault(method, []).append((fraction, row[2]))
        if include_baseline:
            reports = [
                evaluate(
                    p,
                    p.baseline_for_fraction(fraction, seed=seed).execute,
                    queries,
                    label="baseline",
                )
                for seed in seeds
            ]
            row = _error_row(fraction, "baseline", reports)
            rows.append(row)
            series.setdefault("baseline", []).append((fraction, row[2]))
    return rows, series


def emit_chart(name: str, title: str, series: dict,
               x_label: str = "sampled graph size",
               y_label: str = "relative error (median)") -> None:
    """Render sweep series as an SVG line chart under results/."""
    from repro.evaluation import LineChart

    chart = LineChart(title=title, x_label=x_label, y_label=y_label,
                      x_log=True)
    for method, points in series.items():
        xs = [x for x, y in points]
        ys = [y for x, y in points]
        chart.add_series(method, xs, ys)
    RESULTS_DIR.mkdir(exist_ok=True)
    chart.render(RESULTS_DIR / f"{name}.svg")


def _error_row(
    fraction: float, method: str, reports: Sequence[EvalReport]
) -> List[object]:
    medians = [r.error.median for r in reports if r.error.count]
    p25 = [r.error.p25 for r in reports if r.error.count]
    p75 = [r.error.p75 for r in reports if r.error.count]
    miss = sum(r.miss_rate for r in reports) / len(reports)
    return [
        f"{fraction:.3%}",
        method,
        _mean(medians),
        _mean(p25),
        _mean(p75),
        miss,
    ]


def _mean(values: Sequence[float]) -> float:
    return sum(values) / len(values) if values else float("nan")


ERROR_HEADERS = (
    "size",
    "method",
    "rel.err (median)",
    "p25",
    "p75",
    "miss rate",
)
