"""Figure 13a/b: fraction of queries missed vs graph size and query size.

Paper shape: misses are concentrated at tiny sampled graphs and tiny
query regions and vanish quickly; the submodular configuration almost
never misses because its walls enclose exactly the historical query
regions.
"""

from __future__ import annotations

from _common import METHODS, N_QUERIES, emit, pipeline
from repro.evaluation import evaluate, format_table
from repro.evaluation.harness import (
    FIXED_QUERY_AREA,
    STANDARD_AREA_FRACTIONS,
    STANDARD_SIZE_FRACTIONS,
)

HEADERS_A = ("graph size", *METHODS, "baseline")
HEADERS_B = ("query area", *METHODS, "baseline")


def bench_fig13ab_query_misses(benchmark):
    p = pipeline()

    # (a) misses vs graph size at the fixed query area.
    queries = p.standard_queries(FIXED_QUERY_AREA, n=N_QUERIES)
    rows_a = []
    for fraction in STANDARD_SIZE_FRACTIONS:
        m = p.budget_for_fraction(fraction)
        row = [f"{fraction:.2%}"]
        for method in METHODS:
            report = evaluate(
                p, p.engine(p.network(method, m, seed=1)).execute, queries
            )
            row.append(report.miss_rate)
        report = evaluate(
            p, p.baseline_for_fraction(fraction, seed=1).execute, queries
        )
        row.append(report.miss_rate)
        rows_a.append(row)

    # (b) misses vs query size at the 6.4% graph size.
    m = p.budget_for_fraction(0.064)
    rows_b = []
    for fraction in STANDARD_AREA_FRACTIONS:
        area_queries = p.standard_queries(fraction, n=N_QUERIES)
        row = [f"{fraction:.2%}"]
        for method in METHODS:
            report = evaluate(
                p,
                p.engine(p.network(method, m, seed=1)).execute,
                area_queries,
            )
            row.append(report.miss_rate)
        report = evaluate(
            p, p.baseline_for_fraction(0.064, seed=1).execute, area_queries
        )
        row.append(report.miss_rate)
        rows_b.append(row)

    emit(
        "fig13ab",
        "Fig 13a: miss rate vs graph size / Fig 13b: miss rate vs query size",
        format_table(HEADERS_A, rows_a)
        + "\n\n"
        + format_table(HEADERS_B, rows_b),
    )

    engine = p.engine(p.network("quadtree", m, seed=1))
    benchmark.pedantic(
        lambda: [engine.execute(q) for q in queries],
        rounds=3,
        iterations=1,
    )
