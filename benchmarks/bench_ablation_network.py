"""Ablation: communication regimes and dispatch strategies.

Quantifies the paper's §3.1 motivation and §4.6 design choice:

1. update energy — continuous centralized sync vs in-network local
   aggregation, across sampled-graph sizes;
2. query dispatch — server fan-out vs perimeter walk (the two §4.6
   strategies), message and hop counts per query.
"""

from __future__ import annotations

import numpy as np

from _common import N_QUERIES, emit, pipeline
from repro.evaluation import format_table
from repro.evaluation.harness import FIXED_QUERY_AREA
from repro.network import EnergyModel, NetworkSimulator

SIZES = (0.064, 0.256)

ENERGY_HEADERS = (
    "graph size",
    "detected events",
    "centralized energy",
    "in-network energy",
    "saving",
)
DISPATCH_HEADERS = (
    "strategy",
    "mean sensors",
    "mean messages",
    "mean hops",
)


def bench_ablation_network_regimes(benchmark):
    p = pipeline()

    # 1. Update-energy comparison.
    energy_rows = []
    for size in SIZES:
        m = p.budget_for_fraction(size)
        network = p.network("quadtree", m, seed=1)
        observed = network.observed_events(p.events)
        model = EnergyModel(network)
        central = model.centralized_updates(observed)
        local = model.in_network_updates(observed)
        energy_rows.append(
            [
                f"{size:.1%}",
                len(observed),
                central.total,
                local.total,
                f"{1 - local.total / central.total:.1%}",
            ]
        )

    # 2. Dispatch strategies over real query perimeters.
    m = p.budget_for_fraction(0.064)
    network = p.network("quadtree", m, seed=1)
    engine = p.engine(network)
    simulator = NetworkSimulator(network)
    queries = p.standard_queries(FIXED_QUERY_AREA, n=N_QUERIES)
    stats = {"server_fanout": [], "perimeter_walk": []}
    for query in queries:
        result = engine.execute(query)
        if result.missed:
            continue
        boundary = network.region_boundary(result.regions)
        sensors = sorted(network.sensors_for_boundary(boundary))
        if not sensors:
            continue
        for strategy in stats:
            report = simulator.dispatch(sensors, strategy=strategy)
            stats[strategy].append(
                (report.sensors_contacted, report.messages, report.hops)
            )
    dispatch_rows = []
    for strategy, samples in stats.items():
        array = np.array(samples, dtype=float)
        dispatch_rows.append(
            [
                strategy,
                float(array[:, 0].mean()),
                float(array[:, 1].mean()),
                float(array[:, 2].mean()),
            ]
        )

    emit(
        "ablation_network",
        "Ablation: energy regimes (§3.1) and dispatch strategies (§4.6)",
        format_table(ENERGY_HEADERS, energy_rows)
        + "\n\n"
        + format_table(DISPATCH_HEADERS, dispatch_rows),
    )

    benchmark.pedantic(
        lambda: [engine.execute(q) for q in queries],
        rounds=3,
        iterations=1,
    )
