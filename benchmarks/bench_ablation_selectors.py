"""Ablations on design choices called out in DESIGN.md:

1. Selection-seed sensitivity: how much does selector randomness move
   the error at a fixed budget? (The paper repeats runs 50x; this
   quantifies why.)
2. Systematic pick rule: closest-to-centre vs random-in-cell.
3. Static evaluation rule: end-of-interval vs start vs min.
"""

from __future__ import annotations

import numpy as np

from _common import N_QUERIES, emit, pipeline
from repro.evaluation import evaluate, format_table
from repro.evaluation.harness import FIXED_QUERY_AREA
from repro.query import QueryEngine
from repro.selection import SensorCandidates, SystematicSelector
from repro.sampling import sampled_network

GRAPH_SIZE = 0.128


def bench_ablation_selectors(benchmark):
    p = pipeline()
    queries = p.standard_queries(FIXED_QUERY_AREA, n=N_QUERIES)
    m = p.budget_for_fraction(GRAPH_SIZE)

    # 1. Seed sensitivity.
    rows = []
    for method in ("uniform", "quadtree"):
        medians = []
        for seed in range(5):
            report = evaluate(
                p, p.engine(p.network(method, m, seed=seed)).execute, queries
            )
            if report.error.count:
                medians.append(report.error.median)
        rows.append(
            [
                method,
                float(np.mean(medians)),
                float(np.std(medians)),
                float(np.min(medians)),
                float(np.max(medians)),
            ]
        )
    seed_table = format_table(
        ("selector", "mean err", "std", "min", "max"), rows
    )

    # 2. Systematic pick rule.
    candidates = SensorCandidates.from_domain(p.domain)
    rows = []
    for pick in ("center", "random"):
        chosen = SystematicSelector(pick=pick).select(
            candidates, m, np.random.default_rng(1)
        )
        network = sampled_network(p.domain, chosen, name=f"sys-{pick}")
        p.cache_form(network, network.build_form(p.event_columns))
        report = evaluate(p, p.engine(network).execute, queries)
        rows.append([pick, report.error.median, report.miss_rate])
    pick_table = format_table(("pick rule", "rel.err", "miss"), rows)

    # 3. Static evaluation rule.
    network = p.network("quadtree", m, seed=1)
    form = p.form(network)
    rows = []
    for mode in ("end", "start", "min"):
        engine = QueryEngine(network, form, static_eval=mode)
        report = evaluate(p, engine.execute, queries)
        rows.append([mode, report.error.median])
    eval_table = format_table(("static eval", "rel.err"), rows)

    emit(
        "ablation",
        "Ablations: seed sensitivity / systematic pick rule / static eval",
        seed_table + "\n\n" + pick_table + "\n\n" + eval_table,
    )

    engine = p.engine(p.network("quadtree", m, seed=1))
    benchmark.pedantic(
        lambda: [engine.execute(q) for q in queries],
        rounds=3,
        iterations=1,
    )
