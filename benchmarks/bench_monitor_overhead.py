"""Telemetry sampling overhead: recorder ticks on the ingest+query path.

The fleet monitor samples the live metrics registry into ring buffers
(:class:`repro.obs.TimeSeriesRecorder`) while the workload runs.  The
design claim is that a tick costs one pass over the registry's
instruments — independent of how many events or queries ran between
ticks — so monitoring a pipeline must not meaningfully slow it down.

The gate is self-relative: the instrumented ingest+query run is timed
without ticks, the tick itself is timed against the registry that run
populated, and the monitor's tick schedule (one per ingest, one every
``SAMPLE_EVERY`` queries) must add at most ``OVERHEAD_BUDGET`` (5%) to
the unsampled time.  Ticks are timed separately rather than by
differencing two end-to-end runs because sampling is purely additive —
the recorder never touches the engine path — and on a shared runner
the run-to-run noise of a ~6ms pipeline (±3% observed) would swamp
the ~1.5% quantity the gate is meant to bound.

The always-on query flight recorder (:class:`repro.obs.FlightRecorder`)
adds one ring-buffer append per query on the hot path, so its per-query
record cost is timed the same way and ``N_QUERIES`` appends are folded
into the overhead sum under the same 5% budget.  The design claim is
sub-microsecond per record (``__slots__`` object plus ``deque`` append;
digests and dict shaping are deferred to dump time).

The continuous profiler (:class:`repro.obs.Profiler`) is additive the
same way — the profiled code never calls into the sampler; cost is
``hz × sample_cost`` of wall time regardless of workload.  One sample
walk (``sys._current_frames`` + stack collapse + span join) is timed
with the workload's thread structure in place and folded in as
``plain_s × DEFAULT_PROFILE_HZ × sample_s`` under the same budget, so
the gate bounds telemetry ticks + flight records + profiler-on
sampling together.

Runs standalone: ``python benchmarks/bench_monitor_overhead.py``
(``--smoke`` is the CI gate; ``--write`` records the measurement in
``benchmarks/BENCH_monitor.json`` for the paper trail).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

try:  # standalone invocation without PYTHONPATH=src
    import repro  # noqa: F401
except ImportError:  # pragma: no cover
    sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

import math
import time

import numpy as np

from repro.evaluation import SMALL_CONFIG
from repro.evaluation.workloads import QueryWorkloadConfig, generate_queries
from repro.mobility import MobilityDomain, organic_city
from repro.obs import (
    DEFAULT_PROFILE_HZ,
    FlightRecorder,
    Instrumentation,
    MetricsRegistry,
    NULL_TRACER,
    Profiler,
    TimeSeriesRecorder,
    Tracer,
    set_registry,
)
from repro.query import QueryEngine
from repro.sampling import sampled_network
from repro.selection import QuadTreeSelector, SensorCandidates
from repro.trajectories import EventColumns, WorkloadConfig, generate_workload

BASELINE_PATH = Path(__file__).resolve().parent / "BENCH_monitor.json"

#: Sampling must add at most this fraction to the unsampled run time.
OVERHEAD_BUDGET = 0.05

#: Recorder tick cadence while the query battery runs.
SAMPLE_EVERY = 10

#: Sampled-network size fraction (the standard mid-scale deployment).
SAMPLED_FRACTION = 0.256

#: Queries in the timed battery.
N_QUERIES = 60


def _best(fn, repeats: int, min_sample_s: float = 0.05) -> float:
    """Best-of-N per-call wall time, batching calls to ``min_sample_s``."""
    t0 = time.perf_counter()
    fn()
    once = time.perf_counter() - t0
    inner = max(1, math.ceil(min_sample_s / max(once, 1e-9)))
    best = math.inf
    for _ in range(repeats):
        t0 = time.perf_counter()
        for _ in range(inner):
            fn()
        best = min(best, (time.perf_counter() - t0) / inner)
    return best


def build_scene():
    """Domain, event columns, network and query battery (smoke scale)."""
    config = SMALL_CONFIG
    rng = np.random.default_rng(config.road_seed)
    road = organic_city(blocks=config.blocks, rng=rng)
    domain = MobilityDomain(road)
    workload = generate_workload(
        domain,
        WorkloadConfig(
            n_trips=config.n_trips,
            horizon_days=config.horizon_days,
            mean_dwell=config.mean_dwell,
            seed=config.trip_seed,
        ),
    )
    columns = EventColumns.from_events(domain, workload.events(domain))

    candidates = SensorCandidates.from_domain(domain)
    m = max(int(round(SAMPLED_FRACTION * domain.block_count)), 2)
    chosen = QuadTreeSelector().select(
        candidates, min(m, len(candidates)), np.random.default_rng(1)
    )
    network = sampled_network(domain, chosen, name=f"quadtree-m{m}")
    queries = generate_queries(
        domain,
        workload.horizon,
        QueryWorkloadConfig(n_queries=N_QUERIES, area_fraction=0.15, seed=11),
    )
    return domain, columns, network, queries


def measure(repeats: int) -> dict:
    """Instrumented ingest+query wall time, unsampled vs sampled."""
    domain, columns, network, queries = build_scene()
    registry = MetricsRegistry()
    set_registry(registry)
    obs = Instrumentation(
        tracer=NULL_TRACER, metrics=registry, provenance=False
    )

    def run() -> None:
        form = network.build_form(columns)
        engine = QueryEngine(network, form, instrumentation=obs)
        for query in queries:
            engine.execute(query)

    plain_s = _best(run, repeats)

    # Time the tick against the registry the run just populated — the
    # steady state a long-lived monitor samples.  The recorder lives
    # across ticks, as the monitor's does: the ring buffer wraps
    # instead of growing.
    recorder = TimeSeriesRecorder(registry)
    recorder.sample()
    tick_s = _best(recorder.sample, repeats, min_sample_s=0.02)
    set_registry(MetricsRegistry())  # detach the bench registry

    # The flight recorder appends one record per query on the hot path.
    # Time it in steady state: a ring that has already wrapped (the
    # always-on regime), recording the battery's own queries.
    flight = FlightRecorder()
    query = queries[0]
    for _ in range(flight.capacity + 1):
        flight.record(query, planner="compiled", elapsed_s=1e-3)
    record_s = _best(
        lambda: flight.record(query, planner="compiled", elapsed_s=1e-3),
        repeats, min_sample_s=0.02,
    )

    # The continuous profiler steals `hz` sample walks per second of
    # wall time, independent of the workload (the profiled code never
    # calls into it).  Time one walk — `sys._current_frames()` over
    # this process's live threads, stack collapse, span join — with the
    # sampler thread *not* running (sample_once is what each tick
    # does), and charge hz × plain_s walks per run.
    profiler = Profiler(tracer=Tracer(), hz=DEFAULT_PROFILE_HZ)
    profiler.sample_once()
    sample_s = _best(profiler.sample_once, repeats, min_sample_s=0.02)
    profile_added_s = plain_s * DEFAULT_PROFILE_HZ * sample_s

    # The monitor's tick schedule over one run: one per ingest plus one
    # every SAMPLE_EVERY queries (the final flush tick coincides); the
    # flight recorder fires on every query; the profiler samples at
    # DEFAULT_PROFILE_HZ for the run's duration.
    ticks_per_run = 1 + len(queries) // SAMPLE_EVERY
    added_s = (
        ticks_per_run * tick_s + len(queries) * record_s + profile_added_s
    )
    return {
        "blocks": SMALL_CONFIG.blocks,
        "n_queries": len(queries),
        "sample_every": SAMPLE_EVERY,
        "plain_s": plain_s,
        "tick_s": tick_s,
        "flight_record_s": record_s,
        "profile_hz": DEFAULT_PROFILE_HZ,
        "sample_s": sample_s,
        "profile_overhead": profile_added_s / plain_s,
        "ticks_per_run": ticks_per_run,
        "sampled_s": plain_s + added_s,
        "overhead": added_s / plain_s,
        "budget": OVERHEAD_BUDGET,
    }


def format_entry(entry: dict) -> str:
    return (
        f"ingest+query ({entry['n_queries']} queries, tick every "
        f"{entry['sample_every']}): plain {entry['plain_s'] * 1e3:.2f}ms, "
        f"tick {entry['tick_s'] * 1e6:.1f}us x{entry['ticks_per_run']}, "
        f"flight {entry['flight_record_s'] * 1e9:.0f}ns/query, "
        f"profile {entry['sample_s'] * 1e6:.1f}us/sample @"
        f"{entry['profile_hz']:.0f}Hz ({entry['profile_overhead']:+.1%}) "
        f"-> sampled {entry['sampled_s'] * 1e3:.2f}ms "
        f"(overhead {entry['overhead']:+.1%}, budget "
        f"{entry['budget']:.0%})"
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="fail when recorder sampling adds more than 5%% to the "
        "instrumented ingest+query time",
    )
    parser.add_argument(
        "--write", action="store_true",
        help="record the measurement in BENCH_monitor.json",
    )
    parser.add_argument("--repeats", type=int, default=7)
    args = parser.parse_args(argv)

    entry = measure(args.repeats)
    print(format_entry(entry))

    if args.write:
        BASELINE_PATH.write_text(
            json.dumps({"schema": 1, "entry": entry}, indent=2) + "\n"
        )
        print(f"wrote {BASELINE_PATH}")
    if args.smoke and entry["overhead"] > OVERHEAD_BUDGET:
        print(
            f"REGRESSION: sampling overhead {entry['overhead']:.1%} "
            f"exceeds the {OVERHEAD_BUDGET:.0%} budget",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
