"""The paper's headline numbers (abstract):

  "a relative error of at most 13.8% with 25.6% of sensors while
   achieving a speedup of 3.5x, 69.81% reduction in sensors accessed,
   and a storage reduction of 99.96% compared to finding the exact
   count."

This bench reproduces the composite: a 25.6% submodular/QuadTree
deployment with a piecewise-linear learned store against the exact
unsampled reference.
"""

from __future__ import annotations

import numpy as np

from _common import N_QUERIES, dense_pipeline, emit, pipeline
from repro.evaluation import evaluate, format_table
from repro.evaluation.harness import FIXED_QUERY_AREA
from repro.models import LinearModel, ModeledCountStore
from repro.query import QueryEngine

SIZE = 0.256

HEADERS = ("metric", "paper", "measured")


def bench_headline_numbers(benchmark):
    p = pipeline()
    queries = p.standard_queries(FIXED_QUERY_AREA, n=N_QUERIES)
    m = p.budget_for_fraction(SIZE)

    best_error = float("inf")
    best_report = None
    best_name = ""
    for method in ("submodular", "quadtree", "kdtree"):
        network = p.network(method, m, seed=1)
        report = evaluate(p, p.engine(network).execute, queries, label=method)
        if report.error.count and report.error.median < best_error:
            best_error = report.error.median
            best_report = report
            best_name = method
    assert best_report is not None

    # Storage: exact full-graph timestamps vs learned store on the
    # sampled graph, measured on the dense workload (per-edge stream
    # lengths approaching the paper's multi-year data; the reduction
    # grows with stream length since model size is constant).
    network = p.network(best_name, m, seed=1)
    dense = dense_pipeline()
    dense_network = dense.network("quadtree", m, seed=1)
    dense_form = dense.form(dense_network)
    learned = ModeledCountStore.fit(dense_form, LinearModel)
    exact_bytes = dense.full_form.total_events * 8
    storage_reduction = 1 - learned.storage_bytes / exact_bytes

    rows = [
        ["sensors used", "25.6%", f"{SIZE:.1%} ({best_name})"],
        [
            "relative error (median)",
            "<= 13.8%",
            f"{best_report.error.median:.1%}",
        ],
        ["speedup vs exact", "3.5x", f"{best_report.speedup:.1f}x"],
        [
            "sensor-access reduction",
            "69.81%",
            f"{best_report.node_access_reduction:.2%}",
        ],
        ["storage reduction", "99.96%", f"{storage_reduction:.2%}"],
        ["miss rate", "-", f"{best_report.miss_rate:.1%}"],
    ]
    emit("headline", "Headline numbers (abstract)", format_table(HEADERS, rows))

    engine = p.engine(network)
    benchmark.pedantic(
        lambda: [engine.execute(q) for q in queries],
        rounds=3,
        iterations=1,
    )
