"""Figure 12a: static-count lower-bound relative error vs sampled-graph size.

Paper shape: every method's error falls as the sampled graph grows and
plateaus; kd-tree/QuadTree are the best oblivious samplers, submodular
maximization is lowest overall, and the baseline needs far more samples
to approach the plateau.
"""

from __future__ import annotations

from _common import (
    ERROR_HEADERS,
    N_QUERIES,
    emit,
    emit_chart,
    pipeline,
    sweep_methods_over_sizes,
)
from repro.evaluation import format_table
from repro.evaluation.harness import FIXED_QUERY_AREA


def bench_fig12a_static_error_vs_graph_size(benchmark):
    p = pipeline()
    queries = p.standard_queries(FIXED_QUERY_AREA, kind="static", n=N_QUERIES)
    rows, series = sweep_methods_over_sizes(p, queries)
    emit(
        "fig12a",
        f"Fig 12a: static lower-bound error vs graph size "
        f"(query area {FIXED_QUERY_AREA:.2%})",
        format_table(ERROR_HEADERS, rows),
        series=series,
        config=p.config,
    )
    emit_chart("fig12a", "Fig 12a: static error vs graph size", series)

    # Benchmark the steady-state configuration (25.6% QuadTree).
    m = p.budget_for_fraction(0.256)
    engine = p.engine(p.network("quadtree", m, seed=1))
    benchmark.pedantic(
        lambda: [engine.execute(q) for q in queries],
        rounds=3,
        iterations=1,
    )
