"""Related-work comparison: FM-sketch distinct counting ([36]).

Tao et al.'s sketches answer a query class the paper's privacy-aware
forms deliberately do not — *distinct objects ever present in R during
[t1, t2]* — at the price of hashing persistent object identifiers.
This bench quantifies that trade on our workload:

- sketch estimate vs exact distinct-visitor ground truth (accuracy of
  the identity-based approach);
- the framework's static count at the window end (what the
  privacy-preserving system answers instead) as context;
- storage of the sketch grid.
"""

from __future__ import annotations

import numpy as np

from _common import emit, pipeline
from repro.baseline import SketchBaseline
from repro.evaluation import format_table
from repro.evaluation.harness import FIXED_QUERY_AREA
from repro.trajectories import distinct_visitors

N_TRIPS = 3000
HEADERS = (
    "query",
    "distinct truth",
    "sketch estimate",
    "sketch rel.err",
    "framework static@t2",
)


def bench_related_work_sketches(benchmark):
    p = pipeline()
    trips = p.workload.trips[:N_TRIPS]
    baseline = SketchBaseline(
        p.domain, horizon=p.horizon, time_bins=24, planes=32
    )
    baseline.ingest_trips(trips)

    # Framework reference restricted to the same trip subset.
    from repro.query import QueryEngine
    from repro.sampling import full_network
    from repro.trajectories import EventColumns, all_events

    events = all_events(p.domain, trips)
    full = full_network(p.domain)
    form = full.build_form(EventColumns.from_events(p.domain, events))
    engine = QueryEngine(full, form)

    rows = []
    errors = []
    queries = p.standard_queries(FIXED_QUERY_AREA, n=10)
    for index, query in enumerate(queries):
        region = p.domain.junctions_in_bbox(query.box)
        truth = distinct_visitors(trips, region, query.t1, query.t2)
        estimate = baseline.distinct_count(query.box, query.t1, query.t2)
        static = engine.execute(query).value
        error = abs(estimate - truth) / truth if truth else float("nan")
        if truth:
            errors.append(error)
        rows.append([f"q{index}", truth, round(estimate, 1),
                     error, static])
    summary = [
        ["median sketch rel.err", float(np.median(errors))],
        ["sketch storage (bytes)", baseline.storage_bytes],
        ["sketches held", baseline.sketch_count],
        ["note", "sketches hash object identities; forms never do"],
    ]
    emit(
        "related_sketches",
        "Related work [36]: FM-sketch distinct counts vs the framework",
        format_table(HEADERS, rows)
        + "\n"
        + format_table(("metric", "value"), summary),
    )

    query = queries[0]
    benchmark.pedantic(
        lambda: baseline.distinct_count(query.box, query.t1, query.t2),
        rounds=3,
        iterations=1,
    )
