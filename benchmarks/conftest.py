"""Benchmark-session plumbing.

pytest's default fd-level capture swallows everything a test writes,
including ``sys.__stdout__`` — so the figure tables would only live in
``benchmarks/results/``.  This hook replays every result table produced
during the session into the terminal summary, which *is* part of the
process stdout: ``pytest benchmarks/ --benchmark-only | tee out.txt``
captures the full set of figures.
"""

from __future__ import annotations

import time
from pathlib import Path

RESULTS_DIR = Path(__file__).resolve().parent / "results"

_session_start = time.time()


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not RESULTS_DIR.is_dir():
        return
    tables = sorted(
        path
        for path in RESULTS_DIR.glob("*.txt")
        if path.stat().st_mtime >= _session_start - 1.0
    )
    if not tables:
        return
    terminalreporter.section("figure tables (benchmarks/results/)")
    for path in tables:
        terminalreporter.write(path.read_text())
        terminalreporter.write("\n")
