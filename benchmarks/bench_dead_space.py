"""Dead-space experiment (§3.1.1): axis-aligned decomposition vs
sensor-placement-based planar subdivision.

The paper's core motivation: axis-aligned partitions (grids, kd-trees)
"consider the spatial distribution of the entire data rather than the
distribution of sensors", generating dead space and excess
communication.  This bench pits grid and kd decompositions against the
QuadTree-sampled planar graph at matched wall budgets and reports
error, misses and communication per query.
"""

from __future__ import annotations

from _common import N_QUERIES, emit, pipeline
from repro.evaluation import evaluate, format_table
from repro.evaluation.harness import FIXED_QUERY_AREA
from repro.sampling import (
    calibrate_grid_to_walls,
    grid_decomposition_network,
    kd_decomposition_network,
)

SIZES = (0.064, 0.256)

HEADERS = (
    "wall budget",
    "configuration",
    "walls",
    "rel.err (median)",
    "miss",
    "edges/query",
    "nodes/query",
)


def bench_dead_space_decompositions(benchmark):
    p = pipeline()
    queries = p.standard_queries(FIXED_QUERY_AREA, n=N_QUERIES)
    rows = []
    for size in SIZES:
        m = p.budget_for_fraction(size)
        planar = p.network("quadtree", m, seed=1)
        target_walls = len(planar.walls)

        rows_for_size = [("planar sampled (quadtree)", planar)]
        grid_shape = calibrate_grid_to_walls(p.domain, target_walls)
        grid_net = grid_decomposition_network(p.domain, *grid_shape)
        rows_for_size.append(
            (f"grid decomposition {grid_shape[0]}x{grid_shape[1]}", grid_net)
        )
        kd_net = kd_decomposition_network(
            p.domain, leaves=max(planar.region_count, 2)
        )
        rows_for_size.append(("kd decomposition", kd_net))

        for label, network in rows_for_size:
            form = p.form(network)
            engine = p.engine(network, store=form)
            report = evaluate(p, engine.execute, queries, label=label)
            rows.append(
                [
                    f"~{target_walls} ({size:.1%})",
                    label,
                    len(network.walls),
                    report.error.median,
                    report.miss_rate,
                    report.edges_accessed.mean,
                    report.nodes_accessed.mean,
                ]
            )
    emit(
        "dead_space",
        "Dead-space experiment (§3.1.1): axis-aligned vs planar sampled",
        format_table(HEADERS, rows),
    )

    m = p.budget_for_fraction(0.064)
    engine = p.engine(p.network("quadtree", m, seed=1))
    benchmark.pedantic(
        lambda: [engine.execute(q) for q in queries],
        rounds=3,
        iterations=1,
    )
