"""Ingestion throughput: per-event loop vs columnar vectorised build.

The tentpole claim of the columnar event store: materialising the
event stream once as :class:`repro.trajectories.EventColumns` and
building every network's form through the vectorised wall filter +
CSR compilation (``SensorNetwork.build_form``) beats the per-event
Python loop (``build_form_loop``) by a wide margin — the acceptance
bar is a >= 5x ``build_form`` speedup on the DEFAULT_CONFIG stream.

Runs two ways:

- under pytest-benchmark with the other figure benches
  (``pytest benchmarks/bench_ingest_throughput.py``);
- standalone (``python benchmarks/bench_ingest_throughput.py``),
  which measures the requested scale, prints a table and can update
  the committed ``benchmarks/BENCH_ingest.json`` artifact
  (``--write``).  ``--smoke`` runs the small scale and exits non-zero
  if columnar ingestion throughput regressed more than 2x against the
  committed artifact — the CI gate.
"""

from __future__ import annotations

import argparse
import json
import math
import sys
import time
from pathlib import Path

try:  # standalone invocation without PYTHONPATH=src
    import repro  # noqa: F401
except ImportError:  # pragma: no cover
    sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

import numpy as np

from repro.evaluation import DEFAULT_CONFIG, SMALL_CONFIG
from repro.evaluation.harness import PipelineConfig
from repro.mobility import MobilityDomain, organic_city
from repro.sampling import full_network, sampled_network
from repro.selection import QuadTreeSelector, SensorCandidates
from repro.trajectories import EventColumns, WorkloadConfig, generate_workload

BASELINE_PATH = Path(__file__).resolve().parent / "BENCH_ingest.json"

#: Sampled-network size fraction measured alongside the full network.
SAMPLED_FRACTION = 0.256

#: Smoke gate: fail if columnar events/sec drops below committed / 2.
REGRESSION_FACTOR = 2.0

#: Instrumentation-overhead gate: with the default no-op recorder the
#: ingest path must stay within 5% of the committed throughput, i.e.
#: events/sec >= committed * OVERHEAD_TOLERANCE.
OVERHEAD_TOLERANCE = 0.95

SCALES = {"smoke": SMALL_CONFIG, "default": DEFAULT_CONFIG}


def _best(fn, repeats: int, min_sample_s: float = 0.05) -> float:
    """Best-of-N per-call wall time of ``fn()`` (min is the robust stat).

    Calls are batched so each timed sample spans at least
    ``min_sample_s``: smoke-scale builds run in well under a
    millisecond, where single-call timings are dominated by scheduler
    noise no 5% regression floor could tolerate.
    """
    t0 = time.perf_counter()
    fn()
    once = time.perf_counter() - t0
    inner = max(1, math.ceil(min_sample_s / max(once, 1e-9)))
    best = once
    for _ in range(repeats):
        t0 = time.perf_counter()
        for _ in range(inner):
            fn()
        best = min(best, (time.perf_counter() - t0) / inner)
    return best


def build_scene(config: PipelineConfig):
    """Domain + event stream + the two measured networks.

    Built directly (not via :func:`get_pipeline`) so the standalone
    run pays only for what the benchmark measures — no query history,
    no exact-engine warm-up.
    """
    rng = np.random.default_rng(config.road_seed)
    road = organic_city(blocks=config.blocks, rng=rng)
    domain = MobilityDomain(road)
    workload = generate_workload(
        domain,
        WorkloadConfig(
            n_trips=config.n_trips,
            horizon_days=config.horizon_days,
            mean_dwell=config.mean_dwell,
            seed=config.trip_seed,
        ),
    )
    events = workload.events(domain)

    candidates = SensorCandidates.from_domain(domain)
    m = max(int(round(SAMPLED_FRACTION * domain.block_count)), 2)
    chosen = QuadTreeSelector().select(
        candidates, min(m, len(candidates)), np.random.default_rng(1)
    )
    networks = [
        ("full", full_network(domain)),
        ("quadtree", sampled_network(domain, chosen, name=f"quadtree-m{m}")),
    ]
    return domain, events, networks


def measure(scale: str, repeats: int) -> dict:
    """Loop vs columnar ``build_form`` timings for one scale."""
    config = SCALES[scale]
    domain, events, networks = build_scene(config)

    columnarize_s = _best(
        lambda: EventColumns.from_events(domain, events), repeats
    )
    columns = EventColumns.from_events(domain, events)

    entry = {
        "scale": scale,
        "blocks": config.blocks,
        "n_trips": config.n_trips,
        "n_events": len(events),
        "columnarize_s": columnarize_s,
        "networks": {},
    }
    for name, network in networks:
        loop_s = _best(lambda: network.build_form_loop(events), repeats)
        columnar_s = _best(lambda: network.build_form(columns), repeats)
        entry["networks"][name] = {
            "loop_s": loop_s,
            "columnar_s": columnar_s,
            "speedup": loop_s / columnar_s,
            "columnar_events_per_s": len(events) / columnar_s,
            "loop_events_per_s": len(events) / loop_s,
        }
    return entry


def format_entry(entry: dict) -> str:
    lines = [
        f"scale={entry['scale']}  blocks={entry['blocks']}  "
        f"trips={entry['n_trips']}  events={entry['n_events']}",
        f"columnarize (once, shared by all networks): "
        f"{entry['columnarize_s'] * 1e3:.1f} ms",
        f"{'network':<10} {'loop':>10} {'columnar':>10} {'speedup':>8} "
        f"{'events/s':>12}",
    ]
    for name, n in entry["networks"].items():
        lines.append(
            f"{name:<10} {n['loop_s'] * 1e3:>8.1f}ms "
            f"{n['columnar_s'] * 1e3:>8.1f}ms {n['speedup']:>7.1f}x "
            f"{n['columnar_events_per_s']:>12.0f}"
        )
    return "\n".join(lines)


def load_baseline() -> dict:
    if BASELINE_PATH.exists():
        return json.loads(BASELINE_PATH.read_text())
    return {"schema": 1, "entries": {}}


def check_regression(entry: dict, baseline: dict) -> int:
    """CI gate: columnar throughput vs the committed run.

    Two floors per network, both must hold:

    - hard regression floor: committed / ``REGRESSION_FACTOR``
      (catches order-of-magnitude breakage even on noisy runners);
    - instrumentation-overhead floor: committed *
      ``OVERHEAD_TOLERANCE`` — the default no-op recorder must not
      cost more than 5% of ingest throughput.
    """
    committed = baseline.get("entries", {}).get(entry["scale"])
    if committed is None:
        print(
            f"no committed baseline for scale {entry['scale']!r}; "
            "run with --write first",
            file=sys.stderr,
        )
        return 1
    status = 0
    for name, measured in entry["networks"].items():
        reference = committed["networks"][name]["columnar_events_per_s"]
        got = measured["columnar_events_per_s"]
        floors = {
            "hard": reference / REGRESSION_FACTOR,
            "overhead<=5%": reference * OVERHEAD_TOLERANCE,
        }
        failed = [label for label, floor in floors.items() if got < floor]
        verdict = "ok" if not failed else f"REGRESSION ({', '.join(failed)})"
        print(
            f"{name}: columnar {got:,.0f} events/s "
            f"(committed {reference:,.0f}, overhead floor "
            f"{floors['overhead<=5%']:,.0f}) {verdict}"
        )
        if failed:
            status = 1
    return status


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--scale", choices=sorted(SCALES), default="default",
        help="pipeline scale to measure (default: default)",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="measure the smoke scale and fail if throughput regressed "
        "more than 5%% (no-op instrumentation overhead bound) against "
        "the committed BENCH_ingest.json",
    )
    parser.add_argument(
        "--write", action="store_true",
        help="update the measured scale's entry in BENCH_ingest.json",
    )
    # Best-of-N minimum: smoke-scale builds are sub-millisecond, so a
    # handful of repeats is needed for the 5% overhead floor to be
    # meaningful rather than scheduler noise.
    parser.add_argument("--repeats", type=int, default=7)
    args = parser.parse_args(argv)

    scale = "smoke" if args.smoke else args.scale
    entry = measure(scale, args.repeats)
    print(format_entry(entry))

    status = 0
    if args.smoke and not args.write:
        status = check_regression(entry, load_baseline())
    if args.write:
        baseline = load_baseline()
        baseline["entries"][scale] = entry
        BASELINE_PATH.write_text(json.dumps(baseline, indent=2) + "\n")
        print(f"wrote {BASELINE_PATH}")
    return status


# ----------------------------------------------------------------------
# pytest-benchmark entry point (shares the cached default pipeline)
# ----------------------------------------------------------------------
def bench_ingest_throughput(benchmark):
    from _common import emit, pipeline

    p = pipeline()
    loop_s = _best(lambda: p.full.build_form_loop(p.events), 2)
    columnar_s = _best(lambda: p.full.build_form(p.event_columns), 3)
    emit(
        "ingest_throughput",
        "Ingestion throughput: per-event loop vs columnar build_form",
        f"events={len(p.events)}  loop={loop_s * 1e3:.1f}ms  "
        f"columnar={columnar_s * 1e3:.1f}ms  "
        f"speedup={loop_s / columnar_s:.1f}x",
    )
    benchmark.pedantic(
        lambda: p.full.build_form(p.event_columns), rounds=3, iterations=1
    )


if __name__ == "__main__":
    raise SystemExit(main())
