"""Figure 12b: static-count relative error vs query-region size.

Graph size fixed at 6.4% (the paper's median size); x-axis sweeps the
query area as a fraction of the sensing area.  Paper shape: error
falls as queries grow (bigger regions are more likely to contain
sampled faces), with submodular scaling best.
"""

from __future__ import annotations

from _common import (
    ERROR_HEADERS,
    METHODS,
    N_QUERIES,
    SELECTION_SEEDS,
    emit,
    pipeline,
)
from repro.evaluation import evaluate, format_table
from repro.evaluation.harness import STANDARD_AREA_FRACTIONS

GRAPH_SIZE = 0.064


def _sweep(p, kind: str):
    rows = []
    m = p.budget_for_fraction(GRAPH_SIZE)
    for fraction in STANDARD_AREA_FRACTIONS:
        queries = p.standard_queries(fraction, kind=kind, n=N_QUERIES)
        for method in METHODS:
            seeds = SELECTION_SEEDS if method != "submodular" else (1,)
            reports = [
                evaluate(
                    p,
                    p.engine(p.network(method, m, seed=seed)).execute,
                    queries,
                )
                for seed in seeds
            ]
            medians = [r.error.median for r in reports if r.error.count]
            miss = sum(r.miss_rate for r in reports) / len(reports)
            rows.append(
                [
                    f"{fraction:.2%}",
                    method,
                    sum(medians) / len(medians) if medians else float("nan"),
                    float("nan"),
                    float("nan"),
                    miss,
                ]
            )
        report = evaluate(
            p, p.baseline_for_fraction(GRAPH_SIZE, seed=1).execute, queries
        )
        rows.append(
            [
                f"{fraction:.2%}",
                "baseline",
                report.error.median,
                report.error.p25,
                report.error.p75,
                report.miss_rate,
            ]
        )
    return rows


def bench_fig12b_static_error_vs_query_size(benchmark):
    p = pipeline()
    rows = _sweep(p, "static")
    emit(
        "fig12b",
        f"Fig 12b: static error vs query size (graph size {GRAPH_SIZE:.1%})",
        format_table(ERROR_HEADERS, rows),
    )

    m = p.budget_for_fraction(GRAPH_SIZE)
    engine = p.engine(p.network("quadtree", m, seed=1))
    queries = p.standard_queries(STANDARD_AREA_FRACTIONS[-1], n=N_QUERIES)
    benchmark.pedantic(
        lambda: [engine.execute(q) for q in queries],
        rounds=3,
        iterations=1,
    )
