"""Figure 11e: storage cost CDF — exact timestamps vs regression models.

Paper shape: the exact method's per-edge storage follows a heavy-tailed
CDF (most edges small, a tail of busy edges with hundreds of
timestamps), while the learned store is a constant number of scalars
per edge regardless of traffic: ``n_edges x model_size x 2``.
"""

from __future__ import annotations

import numpy as np

from _common import dense_pipeline, emit
from repro.evaluation import format_table
from repro.models import ModeledCountStore, PiecewiseLinearModel

SAMPLED_SIZE = 0.064

HEADERS = (
    "per-edge scalars (<=)",
    "exact CDF",
    "learned CDF",
)


def bench_fig11e_storage_cdf(benchmark):
    p = dense_pipeline()
    m = p.budget_for_fraction(SAMPLED_SIZE)
    network = p.network("quadtree", m, seed=1)
    form = p.form(network)
    store = ModeledCountStore.fit(form, PiecewiseLinearModel)

    exact_profile = np.array(form.storage_profile())
    learned_profile = np.array(store.storage_profile())
    thresholds = [8, 16, 32, 64, 128, 256, 512, 1024, 4096]
    rows = []
    for threshold in thresholds:
        rows.append(
            [
                threshold,
                float(np.mean(exact_profile <= threshold)),
                float(np.mean(learned_profile <= threshold)),
            ]
        )
    summary = [
        ["total scalars", int(exact_profile.sum()), int(learned_profile.sum())],
        [
            "max per edge",
            int(exact_profile.max()),
            int(learned_profile.max()),
        ],
        [
            "storage reduction",
            "-",
            f"{1 - learned_profile.sum() / exact_profile.sum():.2%}",
        ],
    ]
    emit(
        "fig11e",
        f"Fig 11e: per-edge storage CDF (graph size {SAMPLED_SIZE:.1%})",
        format_table(HEADERS, rows)
        + "\n"
        + format_table(("metric", "exact", "learned"), summary),
    )

    benchmark.pedantic(
        lambda: ModeledCountStore.fit(form, PiecewiseLinearModel),
        rounds=3,
        iterations=1,
    )
