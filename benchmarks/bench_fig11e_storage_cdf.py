"""Figure 11e: storage cost CDF — exact timestamps vs regression models.

Paper shape: the exact method's per-edge storage follows a heavy-tailed
CDF (most edges small, a tail of busy edges with hundreds of
timestamps), while the learned store is a constant number of scalars
per edge regardless of traffic: ``n_edges x model_size x 2``.

The succinct-tier extension plots the storage-vs-error Pareto curve
across the whole store spectrum: plain CSR and the compressed form sit
at error 0 (the compressed exact path is field-identical), the sketch
tiers trade bytes for a measured worst-case count bound, and the
learned store anchors the small-but-unbounded end.
"""

from __future__ import annotations

import numpy as np

from _common import dense_pipeline, emit
from repro.evaluation import format_table
from repro.forms import CompiledTrackingForm, CompressedTrackingForm
from repro.forms.sketch import EdgeCountSketch
from repro.models import ModeledCountStore, PiecewiseLinearModel

SAMPLED_SIZE = 0.064

HEADERS = (
    "per-edge scalars (<=)",
    "exact CDF",
    "learned CDF",
)


def bench_fig11e_storage_cdf(benchmark):
    p = dense_pipeline()
    m = p.budget_for_fraction(SAMPLED_SIZE)
    network = p.network("quadtree", m, seed=1)
    form = p.form(network)
    store = ModeledCountStore.fit(form, PiecewiseLinearModel)

    exact_profile = np.array(form.storage_profile())
    learned_profile = np.array(store.storage_profile())
    thresholds = [8, 16, 32, 64, 128, 256, 512, 1024, 4096]
    rows = []
    for threshold in thresholds:
        rows.append(
            [
                threshold,
                float(np.mean(exact_profile <= threshold)),
                float(np.mean(learned_profile <= threshold)),
            ]
        )
    summary = [
        ["total scalars", int(exact_profile.sum()), int(learned_profile.sum())],
        [
            "max per edge",
            int(exact_profile.max()),
            int(learned_profile.max()),
        ],
        [
            "storage reduction",
            "-",
            f"{1 - learned_profile.sum() / exact_profile.sum():.2%}",
        ],
    ]
    emit(
        "fig11e",
        f"Fig 11e: per-edge storage CDF (graph size {SAMPLED_SIZE:.1%})",
        format_table(HEADERS, rows)
        + "\n"
        + format_table(("metric", "exact", "learned"), summary),
    )

    benchmark.pedantic(
        lambda: ModeledCountStore.fit(form, PiecewiseLinearModel),
        rounds=3,
        iterations=1,
    )


def bench_fig11e_storage_error_pareto(benchmark):
    """Succinct-tier extension: bytes vs worst-case count error.

    One row per store tier over the same sampled deployment; the
    sketch rows carry the *measured* mean/max error bound over the
    touched bins (the bound every served query would report through
    ``QueryDegradation``), so the table is directly the Pareto front
    EXPERIMENTS.md plots.
    """
    p = dense_pipeline()
    m = p.budget_for_fraction(SAMPLED_SIZE)
    network = p.network("quadtree", m, seed=1)
    observed = network.observed_columns(p.event_columns)
    plain = CompiledTrackingForm(
        observed.interner, observed.edge_id, observed.direction, observed.t
    )
    compressed = CompressedTrackingForm(
        observed.interner,
        observed.edge_id,
        observed.direction,
        observed.t,
        tick_bits=0,
    )
    plain_bytes = plain.storage_report()["total_bytes"]
    rows = [
        ["plain CSR", plain_bytes, "1.00x", 0.0, 0.0],
        [
            "compressed",
            compressed.storage_report()["total_bytes"],
            f"{plain_bytes / compressed.storage_report()['total_bytes']:.2f}x",
            0.0,
            0.0,
        ],
    ]
    for bins in (16, 64, 256, 1024):
        sketch = EdgeCountSketch.from_columns(observed, bins=bins)
        activity = sketch.activity
        nbytes = sketch.storage_report()["total_bytes"]
        rows.append(
            [
                f"sketch b={bins}",
                nbytes,
                f"{plain_bytes / max(nbytes, 1):.2f}x",
                float(activity.mean()) if len(activity) else 0.0,
                float(activity.max()) if len(activity) else 0.0,
            ]
        )
    emit(
        "fig11e_pareto",
        "Fig 11e extension: storage vs worst-case count error "
        f"(graph size {SAMPLED_SIZE:.1%})",
        format_table(
            ("tier", "bytes", "reduction", "mean bound", "max bound"),
            rows,
        ),
    )

    benchmark.pedantic(
        lambda: EdgeCountSketch.from_columns(observed, bins=64),
        rounds=3,
        iterations=1,
    )
