"""Query throughput: single vs batched execution, python vs compiled.

The tentpole claim of the compiled query planner: resolving queries
through the CSR network indexes (bincount region approximation,
signed-scatter boundary cancellation, id-native chain integration)
beats the reference Python path.  The acceptance bar is >= 3x batched
query throughput over the PR 3 baseline — the sequential per-query
python-planner path (``planner="python"`` + ``execute_many``), which
is how every battery ran before the planner landed — at DEFAULT scale.

Measures the full grid:

====================  ============================================
cell                  what it is
====================  ============================================
python / single       the PR 3 baseline read path
python / batch        shared-structure caches, python resolution
compiled / single     CSR planner, no cross-query sharing
compiled / batch      the full fast path (headline number)
====================  ============================================

Runs two ways:

- under pytest-benchmark with the other figure benches
  (``pytest benchmarks/bench_query_throughput.py``);
- standalone (``python benchmarks/bench_query_throughput.py``),
  which measures the requested scale, prints the grid and can update
  the committed ``benchmarks/BENCH_query.json`` artifact (``--write``).
  ``--smoke`` is the CI gate: it measures the default scale (the full
  run takes seconds — the scene build dominates, not the queries) and
  exits non-zero if the compiled batched path regressed more than 2x
  against the committed artifact or its speedup over the in-run
  python/single baseline fell below the 3x acceptance floor.

The PR 6 sharded scatter-gather engine adds a shards x workers grid
(``sharded/s{K}w{W}`` cells) over the same scene and battery.  Every
sharded cell must stay exactly result-equivalent to the python/single
reference.  The scaling gate is core-aware: the >= 1.7x (2 workers)
and >= 3x (4 workers) floors over the single-process compiled batch
path are physical multi-core claims, so they are enforced only when
the machine actually has that many usable cores — on smaller boxes
the gate prints a loud skip and still enforces the shards=1
no-regression bound (delegation must cost nothing).

The small scale is kept measurable (``--scale smoke``) because it
documents the crossover: at 80 blocks the per-query fixed costs
dominate and the compiled path only roughly ties the python one —
the vectorisation pays off with network size.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

try:  # standalone invocation without PYTHONPATH=src
    import repro  # noqa: F401
except ImportError:  # pragma: no cover
    sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

import numpy as np

from repro.evaluation import DEFAULT_CONFIG, SMALL_CONFIG
from repro.evaluation.harness import PipelineConfig
from repro.geometry import BBox
from repro.mobility import MobilityDomain, organic_city
from repro.query import (
    LOWER,
    STATIC,
    TRANSIENT,
    UPPER,
    QueryEngine,
    RangeQuery,
    ShardedQueryEngine,
)
from repro.sampling import sampled_network
from repro.selection import QuadTreeSelector, SensorCandidates
from repro.trajectories import EventColumns, WorkloadConfig, generate_workload

BASELINE_PATH = Path(__file__).resolve().parent / "BENCH_query.json"

#: Sampled-network size fraction (matches the ingest benchmark).
SAMPLED_FRACTION = 0.256

#: Distinct query rectangles; each expands to kind x bound = 4 queries.
N_BOXES = 100

#: Smoke gate: fail if compiled/batch queries/sec drops below
#: committed / 2.
REGRESSION_FACTOR = 2.0

#: Acceptance floor at the default scale: compiled/batch must stay
#: >= 3x the in-run python/single baseline (the PR 3 read path).
SPEEDUP_FLOOR = 3.0

#: The scale the CI gate measures — the acceptance bar is defined at
#: the default scale, and the whole run is seconds.
GATE_SCALE = "default"

SCALES = {"smoke": SMALL_CONFIG, "default": DEFAULT_CONFIG}

CELLS = (
    ("python", "single"),
    ("python", "batch"),
    ("compiled", "single"),
    ("compiled", "batch"),
)

#: Sharded scatter-gather grid: (districts, worker processes).  The
#: first row is the delegation path (shards=1 routes straight to the
#: single-process compiled engine) and anchors the no-regression bound.
SHARD_GRID = ((1, 1), (2, 2), (4, 4))

#: Core-aware scaling floors: worker count -> required q/s multiple
#: over the single-process compiled/batch cell.  Enforced only when
#: the machine has at least that many usable cores.
SHARDED_FLOORS = {2: 1.7, 4: 3.0}

#: shards=1 must not cost anything beyond measurement noise: its q/s
#: may not fall below compiled/batch divided by this tolerance.
DELEGATION_TOLERANCE = 1.3


def usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def build_scene(config: PipelineConfig):
    """Domain + compiled form + a mixed query battery."""
    rng = np.random.default_rng(config.road_seed)
    domain = MobilityDomain(organic_city(blocks=config.blocks, rng=rng))
    workload = generate_workload(
        domain,
        WorkloadConfig(
            n_trips=config.n_trips,
            horizon_days=config.horizon_days,
            mean_dwell=config.mean_dwell,
            seed=config.trip_seed,
        ),
    )
    columns = EventColumns.from_events(domain, workload.events(domain))
    m = max(int(round(SAMPLED_FRACTION * domain.block_count)), 2)
    chosen = QuadTreeSelector().select(
        SensorCandidates.from_domain(domain),
        min(m, domain.block_count),
        np.random.default_rng(1),
    )
    network = sampled_network(domain, chosen, name=f"quadtree-m{m}")
    form = network.build_form(columns)
    queries = make_battery(domain, workload.horizon)
    return network, form, columns, queries


def make_battery(domain, horizon, n_boxes: int = N_BOXES):
    """Random rectangles x {static, transient} x {lower, upper}."""
    rng = np.random.default_rng(99)
    bounds = domain.bounds
    queries = []
    for _ in range(n_boxes):
        w = rng.uniform(0.1, 0.6) * bounds.width
        h = rng.uniform(0.1, 0.6) * bounds.height
        box = BBox.from_center(
            (rng.uniform(bounds.min_x, bounds.max_x),
             rng.uniform(bounds.min_y, bounds.max_y)), w, h,
        )
        t1 = rng.uniform(0.0, horizon * 0.6)
        t2 = t1 + rng.uniform(0.0, horizon * 0.4)
        for kind in (STATIC, TRANSIENT):
            for bound in (LOWER, UPPER):
                queries.append(RangeQuery(box, t1, t2, kind=kind, bound=bound))
    return queries


def measure(scale: str, repeats: int) -> dict:
    """Best-of-N timings for every planner x mode cell."""
    config = SCALES[scale]
    network, form, columns, queries = build_scene(config)

    entry = {
        "scale": scale,
        "blocks": config.blocks,
        "n_trips": config.n_trips,
        "n_queries": len(queries),
        "cores": usable_cores(),
        "cells": {},
    }
    reference = None
    for planner, mode in CELLS:
        engine = QueryEngine(network, form, planner=planner)
        run = (
            engine.execute_batch if mode == "batch" else engine.execute_many
        )
        results = run(queries)  # warm: index build + chain compilation
        best = None
        for _ in range(repeats):
            t0 = time.perf_counter()
            results = run(queries)
            elapsed = time.perf_counter() - t0
            best = elapsed if best is None else min(best, elapsed)
        answered = sum(1 for r in results if not r.missed)
        if reference is None:
            reference = [
                (r.value, r.missed, r.regions) for r in results
            ]
        else:  # every cell must agree with the python/single reference
            assert [
                (r.value, r.missed, r.regions) for r in results
            ] == reference, f"{planner}/{mode} diverged from the baseline"
        entry["cells"][f"{planner}/{mode}"] = {
            "seconds": best,
            "queries_per_s": len(queries) / best,
            "answered": answered,
        }
    for shards, workers in SHARD_GRID:
        with ShardedQueryEngine(
            network, columns, shards=shards, workers=workers
        ) as engine:
            results = engine.execute_batch(queries)  # warm workers
            best = None
            for _ in range(repeats):
                t0 = time.perf_counter()
                results = engine.execute_batch(queries)
                elapsed = time.perf_counter() - t0
                best = elapsed if best is None else min(best, elapsed)
        cell = f"sharded/s{shards}w{workers}"
        assert [
            (r.value, r.missed, r.regions) for r in results
        ] == reference, f"{cell} diverged from the baseline"
        entry["cells"][cell] = {
            "seconds": best,
            "queries_per_s": len(queries) / best,
            "answered": sum(1 for r in results if not r.missed),
            "shards": shards,
            "workers": workers,
        }
    baseline = entry["cells"]["python/single"]["queries_per_s"]
    headline = entry["cells"]["compiled/batch"]["queries_per_s"]
    entry["speedup"] = headline / baseline
    entry["sharded_speedup"] = {
        str(workers): entry["cells"][f"sharded/s{shards}w{workers}"][
            "queries_per_s"
        ] / headline
        for shards, workers in SHARD_GRID
        if workers >= 2
    }
    return entry


def format_entry(entry: dict) -> str:
    lines = [
        f"scale={entry['scale']}  blocks={entry['blocks']}  "
        f"trips={entry['n_trips']}  queries={entry['n_queries']} "
        f"(answered {entry['cells']['python/single']['answered']})",
        f"{'cell':<18} {'time':>10} {'queries/s':>12}",
    ]
    for cell, c in entry["cells"].items():
        lines.append(
            f"{cell:<18} {c['seconds'] * 1e3:>8.1f}ms "
            f"{c['queries_per_s']:>12,.0f}"
        )
    lines.append(
        f"compiled/batch speedup over python/single (PR 3 baseline): "
        f"{entry['speedup']:.2f}x"
    )
    for workers, ratio in entry.get("sharded_speedup", {}).items():
        lines.append(
            f"sharded speedup at {workers} workers over compiled/batch: "
            f"{ratio:.2f}x  (measured on {entry.get('cores', '?')} "
            "usable cores)"
        )
    return "\n".join(lines)


def load_baseline() -> dict:
    if BASELINE_PATH.exists():
        return json.loads(BASELINE_PATH.read_text())
    return {"schema": 1, "entries": {}}


def check_regression(entry: dict, baseline: dict) -> int:
    """CI gate: compiled/batch throughput + the 3x acceptance floor."""
    committed = baseline.get("entries", {}).get(entry["scale"])
    if committed is None:
        print(
            f"no committed baseline for scale {entry['scale']!r}; "
            "run with --write first",
            file=sys.stderr,
        )
        return 1
    status = 0
    reference = committed["cells"]["compiled/batch"]["queries_per_s"]
    got = entry["cells"]["compiled/batch"]["queries_per_s"]
    floor = reference / REGRESSION_FACTOR
    verdict = "ok" if got >= floor else "REGRESSION"
    print(
        f"compiled/batch: {got:,.0f} queries/s "
        f"(committed {reference:,.0f}, floor {floor:,.0f}) {verdict}"
    )
    if got < floor:
        status = 1
    if entry["scale"] == GATE_SCALE:
        verdict = "ok" if entry["speedup"] >= SPEEDUP_FLOOR else "REGRESSION"
        print(
            f"speedup over python/single: {entry['speedup']:.2f}x "
            f"(floor {SPEEDUP_FLOOR:.1f}x) {verdict}"
        )
        if entry["speedup"] < SPEEDUP_FLOOR:
            status = 1
    status |= check_sharded(entry)
    return status


def check_sharded(entry: dict) -> int:
    """Core-aware sharded scaling gate.

    The shards=1 no-regression bound always applies: delegation to
    the single-process engine must not cost more than measurement
    noise.  The 2- and 4-worker scaling floors are physical claims
    about parallel hardware, so each is enforced only when the
    machine has at least that many usable cores.
    """
    status = 0
    headline = entry["cells"]["compiled/batch"]["queries_per_s"]
    delegated = entry["cells"]["sharded/s1w1"]["queries_per_s"]
    floor = headline / DELEGATION_TOLERANCE
    verdict = "ok" if delegated >= floor else "REGRESSION"
    print(
        f"sharded/s1w1 (delegation): {delegated:,.0f} queries/s "
        f"(compiled/batch {headline:,.0f}, floor {floor:,.0f}) {verdict}"
    )
    if delegated < floor:
        status = 1
    cores = entry["cores"]
    for (shards, workers) in SHARD_GRID:
        if workers < 2:
            continue
        ratio = entry["cells"][f"sharded/s{shards}w{workers}"][
            "queries_per_s"
        ] / headline
        required = SHARDED_FLOORS[workers]
        if cores < workers:
            print(
                f"sharded/s{shards}w{workers}: {ratio:.2f}x over "
                f"compiled/batch — SKIPPING the {required:.1f}x floor: "
                f"only {cores} usable core(s), the multi-core scaling "
                f"claim needs >= {workers}"
            )
            continue
        verdict = "ok" if ratio >= required else "REGRESSION"
        print(
            f"sharded/s{shards}w{workers}: {ratio:.2f}x over "
            f"compiled/batch (floor {required:.1f}x on {cores} cores) "
            f"{verdict}"
        )
        if ratio < required:
            status = 1
    return status


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--scale", choices=sorted(SCALES), default="default",
        help="pipeline scale to measure (default: default)",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="CI gate: measure the default scale and fail on a >2x "
        "compiled/batch throughput regression against the committed "
        "BENCH_query.json or a speedup below the 3x acceptance floor",
    )
    parser.add_argument(
        "--write", action="store_true",
        help="update the measured scale's entry in BENCH_query.json",
    )
    parser.add_argument("--repeats", type=int, default=5)
    args = parser.parse_args(argv)

    scale = GATE_SCALE if args.smoke else args.scale
    entry = measure(scale, args.repeats)
    print(format_entry(entry))

    status = 0
    if args.smoke and not args.write:
        status = check_regression(entry, load_baseline())
    if args.write:
        baseline = load_baseline()
        baseline["entries"][scale] = entry
        BASELINE_PATH.write_text(json.dumps(baseline, indent=2) + "\n")
        print(f"wrote {BASELINE_PATH}")
    return status


# ----------------------------------------------------------------------
# pytest-benchmark entry point (shares the cached default pipeline)
# ----------------------------------------------------------------------
def bench_query_throughput(benchmark):
    from _common import emit, pipeline

    p = pipeline()
    network = p.network(
        "quadtree", p.budget_for_fraction(SAMPLED_FRACTION), seed=1
    )
    form = p.form(network)
    queries = make_battery(p.domain, p.horizon, n_boxes=40)
    compiled = QueryEngine(network, form, planner="compiled")
    python = QueryEngine(network, form, planner="python")
    compiled.execute_batch(queries)

    t0 = time.perf_counter()
    python.execute_many(queries)
    single_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    compiled.execute_batch(queries)
    batch_s = time.perf_counter() - t0
    emit(
        "query_throughput",
        "Query throughput: python/single vs compiled/batch",
        f"queries={len(queries)}  python/single={single_s * 1e3:.1f}ms  "
        f"compiled/batch={batch_s * 1e3:.1f}ms  "
        f"speedup={single_s / batch_s:.1f}x",
    )
    benchmark.pedantic(
        lambda: compiled.execute_batch(queries), rounds=3, iterations=1
    )


if __name__ == "__main__":
    raise SystemExit(main())
