"""Fault-degradation sweep: accuracy and messages vs failure rate.

The paper's evaluation (§5) assumes a fully live network.  This bench
quantifies what each §4.6 dispatch strategy loses when sensors crash
and messages drop: for a sweep of failure rates it reports, per
strategy, how many queries degrade, the relative count error of the
partial aggregates against the fault-free answers, whether the
reported :class:`~repro.query.QueryDegradation` error bounds contain
the true error, and the message/hop inflation caused by retries,
detours and server stitching.

Runs two ways:

- under pytest-benchmark with the other figure benches
  (``pytest benchmarks/bench_fault_degradation.py``);
- standalone (``python benchmarks/bench_fault_degradation.py``).
  ``--smoke`` is the CI gate: a fixed-seed small-scale sweep that
  fails unless (a) with failure rate 0 every fault-aware result is
  identical to the fault-free engine's, and (b) at 10% sensor failure
  the degraded perimeter-walk answers stay within their reported
  error bounds for >= 95% of queries.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

try:  # standalone invocation without PYTHONPATH=src
    import repro  # noqa: F401
except ImportError:  # pragma: no cover
    sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.evaluation import SMALL_CONFIG, format_table, get_pipeline
from repro.evaluation.harness import FIXED_QUERY_AREA, Pipeline
from repro.network import FaultConfig, FaultInjector
from repro.obs import use_registry
from repro.query import QueryEngine

#: Sensor failure rates swept (message drop rate rides at rate / 2).
FAILURE_RATES = (0.0, 0.05, 0.1, 0.2, 0.3)

#: Injector seeds per rate: failure schedules are drawn per seed, so a
#: handful of seeds averages out schedule luck.
FAULT_SEEDS = (0, 1, 2, 3, 4)

STRATEGIES = ("perimeter_walk", "server_fanout")

#: CI gate: share of degraded answers whose true error must fall
#: within the reported bound at 10% sensor failure.
CONTAINMENT_FLOOR = 0.95

#: The graph-size fraction dispatched over (matches the ablation bench).
SIZE_FRACTION = 0.256

HEADERS = (
    "strategy",
    "failure rate",
    "answered",
    "degraded",
    "mean rel err",
    "bound containment",
    "msgs/query",
    "hops/query",
)


def sweep(
    p: Pipeline,
    rates=FAILURE_RATES,
    seeds=FAULT_SEEDS,
    n_queries: int = 20,
):
    """Run the sweep; returns (rows, series) for emit()."""
    network = p.network(
        "quadtree", p.budget_for_fraction(SIZE_FRACTION), seed=1
    )
    store = p.form(network)
    queries = p.standard_queries(FIXED_QUERY_AREA, n=n_queries)
    reference = {
        id(q): r
        for q, r in zip(queries, QueryEngine(network, store).execute_many(queries))
    }

    rows = []
    series: dict = {"rates": list(rates)}
    for strategy in STRATEGIES:
        err_series, msg_series, containment_series = [], [], []
        for rate in rates:
            answered = degraded = contained = 0
            rel_errors = []
            messages = hops = dispatches = 0.0
            for seed in seeds:
                with use_registry() as registry:
                    injector = FaultInjector.for_network(
                        network,
                        FaultConfig(
                            seed=seed,
                            sensor_failure_rate=rate,
                            drop_rate=rate / 2,
                        ),
                    )
                    engine = QueryEngine(
                        network,
                        store,
                        faults=injector,
                        dispatch_strategy=strategy,
                    )
                    results = engine.execute_many(queries)
                    messages += registry.value(
                        "repro_sim_messages_total", strategy=strategy
                    )
                    hops += registry.value(
                        "repro_sim_hops_total", strategy=strategy
                    )
                    dispatches += registry.value(
                        "repro_sim_dispatches_total", strategy=strategy
                    )
                for query, result in zip(queries, results):
                    base = reference[id(query)]
                    if result.missed or base.missed:
                        continue
                    answered += 1
                    error = abs(result.value - base.value)
                    rel_errors.append(error / max(abs(base.value), 1.0))
                    bound = (
                        result.degradation.error_bound
                        if result.degradation is not None
                        else 0.0
                    )
                    if result.approximate:
                        degraded += 1
                    if error <= bound or error == 0.0:
                        contained += 1
            mean_err = (
                sum(rel_errors) / len(rel_errors) if rel_errors else 0.0
            )
            containment = contained / answered if answered else 1.0
            msgs_per = messages / dispatches if dispatches else 0.0
            hops_per = hops / dispatches if dispatches else 0.0
            rows.append(
                [
                    strategy,
                    f"{rate:.0%}",
                    answered,
                    degraded,
                    f"{mean_err:.3f}",
                    f"{containment:.1%}",
                    f"{msgs_per:.1f}",
                    f"{hops_per:.1f}",
                ]
            )
            err_series.append(mean_err)
            msg_series.append(msgs_per)
            containment_series.append(containment)
        series[f"{strategy}_rel_err"] = err_series
        series[f"{strategy}_msgs_per_query"] = msg_series
        series[f"{strategy}_containment"] = containment_series
    return rows, series


# ----------------------------------------------------------------------
# CI smoke gate
# ----------------------------------------------------------------------
def smoke() -> int:
    """Fixed-seed gate: rate-0 equivalence + bound containment."""
    p = get_pipeline(SMALL_CONFIG)
    network = p.network(
        "quadtree", p.budget_for_fraction(SIZE_FRACTION), seed=1
    )
    store = p.form(network)
    queries = p.standard_queries(FIXED_QUERY_AREA, n=20)
    plain = QueryEngine(network, store).execute_many(queries)

    failures = []

    # (a) rate 0: the fault-aware path must change nothing.
    injector = FaultInjector.for_network(network, FaultConfig(seed=0))
    zero = QueryEngine(
        network, store, faults=injector
    ).execute_many(queries)
    for base, faulty in zip(plain, zero):
        same = (
            base.value == faulty.value
            and base.missed == faulty.missed
            and base.nodes_accessed == faulty.nodes_accessed
            and faulty.approximate is False
            and faulty.degradation is None
        )
        if not same:
            failures.append(
                f"rate-0 mismatch: {base.value} -> {faulty.value} "
                f"(nodes {base.nodes_accessed} -> {faulty.nodes_accessed})"
            )
            break

    # (b) 10% sensor failure: degraded answers stay inside their bound.
    answered = contained = degraded = 0
    for seed in FAULT_SEEDS:
        injector = FaultInjector.for_network(
            network,
            FaultConfig(seed=seed, sensor_failure_rate=0.1, drop_rate=0.05),
        )
        engine = QueryEngine(network, store, faults=injector)
        for base, faulty in zip(plain, engine.execute_many(queries)):
            if base.missed or faulty.missed:
                continue
            answered += 1
            error = abs(faulty.value - base.value)
            bound = (
                faulty.degradation.error_bound
                if faulty.degradation is not None
                else 0.0
            )
            if faulty.approximate:
                degraded += 1
            if error == 0.0 or error <= bound:
                contained += 1
    containment = contained / answered if answered else 1.0
    print(
        f"smoke: {answered} answered, {degraded} degraded, "
        f"containment {containment:.1%} (floor {CONTAINMENT_FLOOR:.0%})"
    )
    if answered == 0:
        failures.append("smoke sweep answered no queries")
    if containment < CONTAINMENT_FLOOR:
        failures.append(
            f"bound containment {containment:.1%} below the "
            f"{CONTAINMENT_FLOOR:.0%} floor"
        )
    for failure in failures:
        print(f"FAIL: {failure}")
    return 1 if failures else 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="fixed-seed CI gate: rate-0 equivalence and >= 95%% bound "
        "containment at 10%% sensor failure",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        return smoke()
    from _common import emit

    p = get_pipeline(SMALL_CONFIG)
    rows, series = sweep(p)
    emit(
        "fault_degradation",
        "Fault degradation: accuracy and messages vs failure rate (§4.6)",
        format_table(HEADERS, rows),
        series=series,
        config=SMALL_CONFIG,
    )
    return 0


# ----------------------------------------------------------------------
# pytest-benchmark entry point
# ----------------------------------------------------------------------
def bench_fault_degradation(benchmark):
    from _common import emit, pipeline

    p = pipeline()
    rows, series = sweep(p)
    emit(
        "fault_degradation",
        "Fault degradation: accuracy and messages vs failure rate (§4.6)",
        format_table(HEADERS, rows),
        series=series,
    )
    network = p.network(
        "quadtree", p.budget_for_fraction(SIZE_FRACTION), seed=1
    )
    store = p.form(network)
    queries = p.standard_queries(FIXED_QUERY_AREA, n=5)
    injector = FaultInjector.for_network(
        network, FaultConfig(seed=0, sensor_failure_rate=0.1, drop_rate=0.05)
    )
    engine = QueryEngine(
        network, store, faults=injector, dispatch_strategy="perimeter_walk"
    )
    benchmark.pedantic(
        lambda: engine.execute_many(queries), rounds=3, iterations=1
    )


if __name__ == "__main__":
    raise SystemExit(main())
