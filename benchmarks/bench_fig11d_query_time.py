"""Figure 11d: query execution time vs query size.

Paper shape: time grows with the query area for both configurations
(larger perimeters mean more aggregation), but the sampled graph is
consistently faster with a shallower slope than the unsampled graph.

Times are the engine's own measured per-query ``elapsed`` plus the
``integrate`` phase read from :class:`repro.obs.QueryProvenance` — not
an outer wall-clock loop that would fold Python dispatch overhead into
the series.  ``execute()`` (the unbatched path) is used so every query
pays its full resolution cost, comparable across configurations.

The sampled configuration is measured twice: with the reference
python planner (the paper-faithful per-query resolution) and with the
compiled CSR planner, so the figure also shows how much of the gap to
the unsampled graph is pure resolution overhead.
"""

from __future__ import annotations

from _common import N_QUERIES, emit, pipeline
from repro.evaluation import format_table
from repro.evaluation.harness import STANDARD_AREA_FRACTIONS
from repro.obs import Instrumentation, NULL_REGISTRY, NULL_TRACER
from repro.query import QueryEngine

SAMPLED_SIZE = 0.064

HEADERS = (
    "query area",
    "configuration",
    "mean time (ms)",
    "integrate (ms)",
    "speedup vs G",
)

#: Provenance-only bundle: no spans, no metrics — just the measured
#: per-query internals attached to each result.
PROVENANCE_ONLY = Instrumentation(
    tracer=NULL_TRACER, metrics=NULL_REGISTRY, provenance=True
)


def _measured(engine, queries, repeats: int = 5):
    """Mean measured (elapsed, integrate-phase) seconds per query."""
    elapsed = []
    integrate = []
    for _ in range(repeats):
        for query in queries:
            result = engine.execute(query)
            if result.missed:
                continue
            elapsed.append(result.elapsed)
            integrate.append(result.provenance.phase_s["integrate"])
    n = max(len(elapsed), 1)
    return sum(elapsed) / n, sum(integrate) / n


def bench_fig11d_query_time(benchmark):
    p = pipeline()
    m = p.budget_for_fraction(SAMPLED_SIZE)
    sampled_network = p.network("quadtree", m, seed=1)
    sampled_form = p.form(sampled_network)
    sampled_engine = QueryEngine(
        sampled_network,
        sampled_form,
        planner="python",
        instrumentation=PROVENANCE_ONLY,
    )
    compiled_engine = QueryEngine(
        sampled_network,
        sampled_form,
        planner="compiled",
        instrumentation=PROVENANCE_ONLY,
    )
    # The unsampled reference keeps the python planner so the python
    # rows reproduce the paper-faithful comparison; the compiled row's
    # speedup column then shows the combined sampling + planner win.
    exact_engine = QueryEngine(
        p.full,
        p.full_form,
        access_mode="flood",
        planner="python",
        instrumentation=PROVENANCE_ONLY,
    )
    rows = []
    for fraction in STANDARD_AREA_FRACTIONS:
        queries = p.standard_queries(fraction, n=N_QUERIES)
        sampled_time, sampled_integrate = _measured(sampled_engine, queries)
        compiled_time, compiled_integrate = _measured(
            compiled_engine, queries
        )
        exact_time, exact_integrate = _measured(exact_engine, queries)
        rows.append(
            [
                f"{fraction:.2%}",
                f"sampled {SAMPLED_SIZE:.1%} (python)",
                sampled_time * 1000,
                sampled_integrate * 1000,
                exact_time / sampled_time if sampled_time else float("nan"),
            ]
        )
        rows.append(
            [
                f"{fraction:.2%}",
                f"sampled {SAMPLED_SIZE:.1%} (compiled)",
                compiled_time * 1000,
                compiled_integrate * 1000,
                exact_time / compiled_time
                if compiled_time
                else float("nan"),
            ]
        )
        rows.append(
            [
                f"{fraction:.2%}",
                "unsampled G",
                exact_time * 1000,
                exact_integrate * 1000,
                1.0,
            ]
        )
    emit(
        "fig11d",
        "Fig 11d: query execution time vs query size",
        format_table(HEADERS, rows),
        config=p.config,
    )

    queries = p.standard_queries(STANDARD_AREA_FRACTIONS[2], n=N_QUERIES)
    benchmark.pedantic(
        lambda: [compiled_engine.execute(q) for q in queries],
        rounds=5,
        iterations=1,
    )
