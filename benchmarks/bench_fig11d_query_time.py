"""Figure 11d: query execution time vs query size.

Paper shape: time grows with the query area for both configurations
(larger perimeters mean more aggregation), but the sampled graph is
consistently faster with a shallower slope than the unsampled graph.
"""

from __future__ import annotations

import time

from _common import N_QUERIES, emit, pipeline
from repro.evaluation import format_table
from repro.evaluation.harness import STANDARD_AREA_FRACTIONS

SAMPLED_SIZE = 0.064

HEADERS = ("query area", "configuration", "mean time (ms)", "speedup vs G")


def _timed(execute, queries, repeats: int = 5) -> float:
    start = time.perf_counter()
    for _ in range(repeats):
        for query in queries:
            execute(query)
    return (time.perf_counter() - start) / (repeats * len(queries))


def bench_fig11d_query_time(benchmark):
    p = pipeline()
    m = p.budget_for_fraction(SAMPLED_SIZE)
    sampled_engine = p.engine(p.network("quadtree", m, seed=1))
    rows = []
    for fraction in STANDARD_AREA_FRACTIONS:
        queries = p.standard_queries(fraction, n=N_QUERIES)
        sampled_time = _timed(sampled_engine.execute, queries)
        exact_time = _timed(p.exact_engine.execute, queries)
        rows.append(
            [
                f"{fraction:.2%}",
                f"sampled {SAMPLED_SIZE:.1%}",
                sampled_time * 1000,
                exact_time / sampled_time,
            ]
        )
        rows.append(
            [f"{fraction:.2%}", "unsampled G", exact_time * 1000, 1.0]
        )
    emit(
        "fig11d",
        "Fig 11d: query execution time vs query size",
        format_table(HEADERS, rows),
    )

    queries = p.standard_queries(STANDARD_AREA_FRACTIONS[2], n=N_QUERIES)
    benchmark.pedantic(
        lambda: [sampled_engine.execute(q) for q in queries],
        rounds=5,
        iterations=1,
    )
