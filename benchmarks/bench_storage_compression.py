"""Succinct storage tier: compression ratio, exactness, query latency.

The tentpole claim of the compressed tier: delta-encoded, bit-packed
timestamp columns (:class:`repro.forms.CompressedTrackingForm`) hold
the same quantized crossing-event multisets as the plain compiled CSR
form in >= 4x less memory, while the exact query path stays
field-identical and warm query latency stays within 1.3x.

Measured cells:

====================  ============================================
cell                  what it is
====================  ============================================
plain                 CompiledTrackingForm over quantized columns
compressed            CompressedTrackingForm, same columns
sketch/b{N}           EdgeCountSketch at N time bins (Pareto sweep)
====================  ============================================

Every storage number is the store's own ``storage_report()`` total
(actual array bytes, not nominal accounting).  Latency is the warm
batched exact path — one untimed pass compiles and caches the
boundary chains, as any real battery does, then best-of-N timed
passes run the steady state the latency contract is about.  The
sketch sweep records bytes plus the measured mean/max error bound and
the hit rate at a representative tolerance, which is the
storage-vs-error Pareto curve EXPERIMENTS.md plots.

Runs two ways:

- under pytest-benchmark with the other benches
  (``pytest benchmarks/bench_storage_compression.py``);
- standalone (``python benchmarks/bench_storage_compression.py``),
  printing the table and updating ``BENCH_storage.json`` (``--write``).
  ``--smoke`` is the CI gate: it fails if the in-memory reduction
  falls below the 4x acceptance floor, if any query of the battery
  diverges between the plain and compressed exact paths, or if the
  compressed warm-path latency exceeds 1.3x the plain form's.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

try:  # standalone invocation without PYTHONPATH=src
    import repro  # noqa: F401
except ImportError:  # pragma: no cover
    sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

import numpy as np

from repro.evaluation import DEFAULT_CONFIG, SMALL_CONFIG
from repro.evaluation.harness import PipelineConfig
from repro.forms import CompiledTrackingForm, CompressedTrackingForm
from repro.forms.sketch import EdgeCountSketch
from repro.geometry import BBox
from repro.mobility import MobilityDomain, organic_city
from repro.query import (
    LOWER,
    STATIC,
    TRANSIENT,
    UPPER,
    QueryEngine,
    RangeQuery,
)
from repro.sampling import sampled_network
from repro.selection import QuadTreeSelector, SensorCandidates
from repro.trajectories import EventColumns, WorkloadConfig, generate_workload

BASELINE_PATH = Path(__file__).resolve().parent / "BENCH_storage.json"

#: Sampled-network size fraction (matches the throughput benchmark).
SAMPLED_FRACTION = 0.256

#: Timestamp resolution of the succinct tier: 2**TICK_BITS ticks per
#: second.  Whole seconds — trajectory crossing times are far noisier
#: than 1s, and both stores are built from the *same* quantized
#: columns so exactness is by construction, not despite rounding.
TICK_BITS = 0

#: Distinct query rectangles; each expands to kind x bound = 4 queries.
N_BOXES = 60

#: Acceptance floor: compressed bytes must be >= 4x smaller.
RATIO_FLOOR = 4.0

#: Warm-path latency ceiling: compressed batched exact-path seconds
#: may not exceed plain by more than this factor.
LATENCY_CEILING = 1.3

#: Sketch Pareto sweep (bins axis of the storage-vs-error curve).
SKETCH_BINS = (16, 64, 256)

#: Tolerance used for the sketch hit-rate column (absolute count).
SKETCH_TOLERANCE = 25.0

GATE_SCALE = "default"

SCALES = {"smoke": SMALL_CONFIG, "default": DEFAULT_CONFIG}


def build_scene(config: PipelineConfig):
    """Domain + quantized columns + both forms + a mixed battery."""
    rng = np.random.default_rng(config.road_seed)
    domain = MobilityDomain(organic_city(blocks=config.blocks, rng=rng))
    workload = generate_workload(
        domain,
        WorkloadConfig(
            n_trips=config.n_trips,
            horizon_days=config.horizon_days,
            mean_dwell=config.mean_dwell,
            seed=config.trip_seed,
        ),
    )
    columns = EventColumns.from_events(
        domain, workload.events(domain)
    ).quantized(TICK_BITS)
    m = max(int(round(SAMPLED_FRACTION * domain.block_count)), 2)
    chosen = QuadTreeSelector().select(
        SensorCandidates.from_domain(domain),
        min(m, domain.block_count),
        np.random.default_rng(1),
    )
    network = sampled_network(domain, chosen, name=f"quadtree-m{m}")
    observed = network.observed_columns(columns)
    plain = CompiledTrackingForm(
        columns.interner, observed.edge_id, observed.direction, observed.t
    )
    compressed = CompressedTrackingForm(
        columns.interner,
        observed.edge_id,
        observed.direction,
        observed.t,
        tick_bits=TICK_BITS,
    )
    queries = make_battery(domain, workload.horizon)
    return network, observed, plain, compressed, queries


def make_battery(domain, horizon, n_boxes: int = N_BOXES):
    rng = np.random.default_rng(99)
    bounds = domain.bounds
    queries = []
    for _ in range(n_boxes):
        w = rng.uniform(0.1, 0.6) * bounds.width
        h = rng.uniform(0.1, 0.6) * bounds.height
        box = BBox.from_center(
            (rng.uniform(bounds.min_x, bounds.max_x),
             rng.uniform(bounds.min_y, bounds.max_y)), w, h,
        )
        t1 = rng.uniform(0.0, horizon * 0.6)
        t2 = t1 + rng.uniform(0.0, horizon * 0.4)
        for kind in (STATIC, TRANSIENT):
            for bound in (LOWER, UPPER):
                queries.append(RangeQuery(box, t1, t2, kind=kind, bound=bound))
    return queries


def _timed_batteries(engines, queries, repeats: int):
    """Per engine: (results, best warm seconds), passes interleaved.

    Interleaving the timed rounds (plain, compressed, plain, ...)
    instead of timing each engine in its own block keeps the latency
    *ratio* stable under CPU frequency / cache drift across the run —
    with sub-15ms batteries a sequential best-of-N can swing the
    ratio by +-40% on a loaded machine.
    """
    results = [engine.execute_batch(queries) for engine in engines]
    best = [None] * len(engines)  # warm pass above compiled the chains
    for _ in range(repeats):
        for i, engine in enumerate(engines):
            t0 = time.perf_counter()
            results[i] = engine.execute_batch(queries)
            elapsed = time.perf_counter() - t0
            best[i] = elapsed if best[i] is None else min(best[i], elapsed)
    return list(zip(results, best))


def measure(scale: str, repeats: int) -> dict:
    config = SCALES[scale]
    network, observed, plain, compressed, queries = build_scene(config)

    plain_report = plain.storage_report()
    comp_report = compressed.storage_report()
    ratio = plain_report["total_bytes"] / max(comp_report["total_bytes"], 1)

    (plain_results, plain_s), (comp_results, comp_s) = _timed_batteries(
        [
            QueryEngine(network, plain, planner="compiled"),
            QueryEngine(network, compressed, planner="compiled"),
        ],
        queries,
        repeats,
    )
    key = lambda r: (  # noqa: E731 - one-shot comparison key
        r.value, r.missed, r.regions, r.edges_accessed, r.nodes_accessed
    )
    mismatches = sum(
        1
        for a, b in zip(plain_results, comp_results)
        if key(a) != key(b)
    )

    entry = {
        "scale": scale,
        "blocks": config.blocks,
        "n_trips": config.n_trips,
        "events": int(plain.total_events),
        "tick_bits": TICK_BITS,
        "n_queries": len(queries),
        "plain_bytes": plain_report["total_bytes"],
        "compressed_bytes": comp_report["total_bytes"],
        "compressed_components": comp_report["components"],
        "ratio": ratio,
        "mismatches": mismatches,
        "plain_batch_s": plain_s,
        "compressed_batch_s": comp_s,
        "latency_ratio": comp_s / plain_s,
        "sketch": {},
    }

    # Sketch Pareto sweep: bytes vs measured error bound vs hit rate.
    exact_by_query = {
        id(q): r for q, r in zip(queries, plain_results)
    }
    for bins in SKETCH_BINS:
        sketch = EdgeCountSketch.from_columns(observed, bins=bins)
        engine = QueryEngine(
            network, compressed, planner="auto", sketch=sketch
        )
        bounds = []
        contained = hits = answered = 0
        for query in queries:
            loose = RangeQuery(
                query.box, query.t1, query.t2, kind=query.kind,
                bound=query.bound, max_error=float("inf"),
            )
            result = engine.execute(loose)
            exact = exact_by_query[id(query)]
            if result.missed:
                continue
            answered += 1
            bound = result.degradation.error_bound
            bounds.append(bound)
            if abs(result.value - exact.value) <= bound:
                contained += 1
            if bound <= SKETCH_TOLERANCE:
                hits += 1
        entry["sketch"][str(bins)] = {
            "bytes": sketch.storage_report()["total_bytes"],
            "mean_bound": float(np.mean(bounds)) if bounds else 0.0,
            "max_bound": float(np.max(bounds)) if bounds else 0.0,
            "containment": contained / answered if answered else 1.0,
            "hit_rate_at_tolerance": hits / answered if answered else 0.0,
            "tolerance": SKETCH_TOLERANCE,
        }
    return entry


def format_entry(entry: dict) -> str:
    lines = [
        f"scale={entry['scale']}  blocks={entry['blocks']}  "
        f"trips={entry['n_trips']}  events={entry['events']}  "
        f"tick_bits={entry['tick_bits']}",
        f"plain       {entry['plain_bytes']:>12,} bytes  "
        f"battery {entry['plain_batch_s'] * 1e3:>8.2f}ms",
        f"compressed  {entry['compressed_bytes']:>12,} bytes  "
        f"battery {entry['compressed_batch_s'] * 1e3:>8.2f}ms",
        f"reduction {entry['ratio']:.2f}x   warm latency "
        f"{entry['latency_ratio']:.2f}x   mismatches "
        f"{entry['mismatches']}/{entry['n_queries']}",
        f"{'sketch bins':<12} {'bytes':>10} {'mean bound':>11} "
        f"{'max bound':>10} {'contained':>10} "
        f"{'hit@' + format(entry['sketch'][next(iter(entry['sketch']))]['tolerance'], 'g'):>8}",
    ]
    for bins, cell in entry["sketch"].items():
        lines.append(
            f"{bins:<12} {cell['bytes']:>10,} {cell['mean_bound']:>11.1f} "
            f"{cell['max_bound']:>10.1f} {cell['containment']:>10.1%} "
            f"{cell['hit_rate_at_tolerance']:>8.1%}"
        )
    return "\n".join(lines)


def load_baseline() -> dict:
    if BASELINE_PATH.exists():
        return json.loads(BASELINE_PATH.read_text())
    return {"schema": 1, "entries": {}}


def check_gate(entry: dict) -> int:
    """CI gate: reduction floor + exactness + warm latency ceiling."""
    status = 0
    verdict = "ok" if entry["ratio"] >= RATIO_FLOOR else "REGRESSION"
    print(
        f"reduction: {entry['ratio']:.2f}x "
        f"(floor {RATIO_FLOOR:.1f}x) {verdict}"
    )
    if entry["ratio"] < RATIO_FLOOR:
        status = 1
    verdict = "ok" if entry["mismatches"] == 0 else "REGRESSION"
    print(
        f"exactness: {entry['mismatches']} mismatching queries of "
        f"{entry['n_queries']} {verdict}"
    )
    if entry["mismatches"]:
        status = 1
    verdict = (
        "ok" if entry["latency_ratio"] <= LATENCY_CEILING else "REGRESSION"
    )
    print(
        f"warm latency: {entry['latency_ratio']:.2f}x plain "
        f"(ceiling {LATENCY_CEILING:.1f}x) {verdict}"
    )
    if entry["latency_ratio"] > LATENCY_CEILING:
        status = 1
    worst = min(
        cell["containment"] for cell in entry["sketch"].values()
    )
    verdict = "ok" if worst >= 0.95 else "REGRESSION"
    print(f"sketch bound containment: {worst:.1%} (floor 95%) {verdict}")
    if worst < 0.95:
        status = 1
    return status


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--scale", choices=sorted(SCALES), default="default",
        help="pipeline scale to measure (default: default)",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="CI gate: fail below the 4x reduction floor, on any "
        "plain/compressed query divergence, or above the 1.3x warm "
        "latency ceiling",
    )
    parser.add_argument(
        "--write", action="store_true",
        help="update the measured scale's entry in BENCH_storage.json",
    )
    parser.add_argument("--repeats", type=int, default=9)
    args = parser.parse_args(argv)

    scale = GATE_SCALE if args.smoke else args.scale
    entry = measure(scale, args.repeats)
    print(format_entry(entry))

    status = 0
    if args.smoke:
        status = check_gate(entry)
    if args.write:
        baseline = load_baseline()
        baseline["entries"][scale] = entry
        BASELINE_PATH.write_text(json.dumps(baseline, indent=2) + "\n")
        print(f"wrote {BASELINE_PATH}")
    return status


def test_storage_compression(benchmark):
    """pytest-benchmark entry: compressed battery at smoke scale."""
    network, observed, plain, compressed, queries = build_scene(
        SCALES["smoke"]
    )
    ratio = (
        plain.storage_report()["total_bytes"]
        / max(compressed.storage_report()["total_bytes"], 1)
    )
    assert ratio > 1.0
    engine = QueryEngine(network, compressed, planner="compiled")
    engine.execute_batch(queries)  # warm
    benchmark(engine.execute_batch, queries)


if __name__ == "__main__":
    sys.exit(main())
