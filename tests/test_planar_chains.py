"""Unit tests for chains and the boundary operator."""

import pytest

from repro.errors import PlanarityError
from repro.planar import (
    Chain,
    PlanarGraph,
    face_boundary,
    region_boundary,
    region_perimeter_nodes,
    trace_faces,
)


def grid_faces(n=4):
    graph = PlanarGraph()
    for i in range(n):
        for j in range(n):
            graph.add_node((i, j), (float(i), float(j)))
    for i in range(n):
        for j in range(n):
            if i < n - 1:
                graph.add_edge((i, j), (i + 1, j))
            if j < n - 1:
                graph.add_edge((i, j), (i, j + 1))
    return graph, trace_faces(graph)


class TestChain:
    def test_add_and_coefficient(self):
        chain = Chain()
        chain.add(("a", "b"))
        assert chain.coefficient(("a", "b")) == 1
        assert chain.coefficient(("b", "a")) == -1

    def test_opposite_edges_cancel(self):
        chain = Chain()
        chain.add(("a", "b"))
        chain.add(("b", "a"))
        assert len(chain) == 0
        assert chain.coefficient(("a", "b")) == 0

    def test_weighted_add(self):
        chain = Chain()
        chain.add(("a", "b"), 3)
        chain.add(("b", "a"), 1)
        assert chain.coefficient(("a", "b")) == 2

    def test_negative_overshoot_flips_direction(self):
        chain = Chain()
        chain.add(("a", "b"), 1)
        chain.add(("b", "a"), 2)
        assert chain.coefficient(("b", "a")) == 1
        assert chain.coefficient(("a", "b")) == -1

    def test_self_loop_rejected(self):
        with pytest.raises(PlanarityError):
            Chain().add(("a", "a"))

    def test_addition_operator(self):
        left = Chain.from_edges([("a", "b")])
        right = Chain.from_edges([("b", "c")])
        total = left + right
        assert total.coefficient(("a", "b")) == 1
        assert total.coefficient(("b", "c")) == 1

    def test_negation(self):
        chain = Chain.from_edges([("a", "b")])
        negated = -chain
        assert negated.coefficient(("b", "a")) == 1

    def test_nodes(self):
        chain = Chain.from_edges([("a", "b"), ("b", "c")])
        assert chain.nodes() == {"a", "b", "c"}

    def test_cycle_detection(self):
        cycle = Chain.from_edges([("a", "b"), ("b", "c"), ("c", "a")])
        assert cycle.is_cycle()
        path = Chain.from_edges([("a", "b"), ("b", "c")])
        assert not path.is_cycle()


class TestFaceBoundary:
    def test_single_face_boundary_is_cycle(self):
        _, faces = grid_faces()
        chain = face_boundary(faces, faces.interior_faces[0].id)
        assert chain.is_cycle()
        assert len(chain) == 4

    def test_unknown_face_raises(self):
        _, faces = grid_faces()
        with pytest.raises(PlanarityError):
            face_boundary(faces, 999)


class TestRegionBoundary:
    def test_shared_edges_cancel(self):
        _, faces = grid_faces()
        # Two horizontally adjacent unit faces: union boundary = 6 edges.
        target = None
        for a in faces.interior_faces:
            for b in faces.interior_faces:
                shared = set(map(frozenset, (
                    tuple(e) for e in a.boundary_edges()
                ))) & set(map(frozenset, (
                    tuple(e) for e in b.boundary_edges()
                )))
                if a.id < b.id and shared:
                    target = (a.id, b.id)
                    break
            if target:
                break
        assert target is not None
        chain = region_boundary(faces, target)
        assert chain.is_cycle()
        assert len(chain) == 6

    def test_all_interior_faces_boundary_is_outer_cycle(self):
        graph, faces = grid_faces()
        ids = [f.id for f in faces.interior_faces]
        chain = region_boundary(faces, ids)
        # Boundary of everything = the 12 edges of the outer square.
        assert len(chain) == 12
        assert chain.is_cycle()

    def test_perimeter_nodes(self):
        _, faces = grid_faces()
        ids = [f.id for f in faces.interior_faces]
        nodes = region_perimeter_nodes(faces, ids)
        # All 12 rim nodes of the 4x4 grid.
        assert len(nodes) == 12
